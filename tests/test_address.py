"""Unit tests for the MOP4 address mapping."""

import pytest

from repro.dram.address import (LINE_BYTES, MOP_CHUNK_LINES, PAGE_LINES,
                                MOPMapper)
from repro.dram.device import Organization


@pytest.fixture
def mapper(organization):
    return MOPMapper(organization)


class TestBasicMapping:
    def test_chunk_stays_in_one_bank(self, mapper):
        locations = [mapper.map_line(i) for i in range(MOP_CHUNK_LINES)]
        assert len({(l.subchannel, l.bank) for l in locations}) == 1
        assert [l.col for l in locations] == [0, 1, 2, 3]

    def test_next_chunk_moves_bank(self, mapper):
        first = mapper.map_line(0)
        second = mapper.map_line(MOP_CHUNK_LINES)
        assert (first.subchannel, first.bank) != \
            (second.subchannel, second.bank)

    def test_subchannels_interleave_per_chunk(self, mapper):
        a = mapper.map_line(0)
        b = mapper.map_line(MOP_CHUNK_LINES)
        assert a.subchannel != b.subchannel

    def test_same_row_across_banks(self, mapper, organization):
        # MOP keeps the RowID constant while striping across banks —
        # the property behind set-associative hot counters (Section 5.2).
        fanout = organization.subchannels * organization.banks
        rows = {mapper.map_line(i * MOP_CHUNK_LINES).row
                for i in range(fanout)}
        assert rows == {0}

    def test_row_advances_after_full_stripe(self, mapper):
        stripe = mapper.lines_per_row_stripe
        assert mapper.map_line(stripe - 1).row == 0
        assert mapper.map_line(stripe).row == 1

    def test_negative_line_rejected(self, mapper):
        with pytest.raises(ValueError):
            mapper.map_line(-1)

    def test_map_address_uses_lines(self, mapper):
        assert mapper.map_address(LINE_BYTES * 5) == mapper.map_line(5)


class TestInverse:
    def test_roundtrip_sample(self, mapper):
        for line in [0, 1, 5, 63, 64, 1000, 123_456,
                     mapper.total_lines - 1]:
            location = mapper.map_line(line)
            assert mapper.line_of(location) == line

    def test_rejects_out_of_range(self, mapper, organization):
        from repro.dram.address import PhysicalLocation
        bad = PhysicalLocation(0, organization.banks, 0, 0)
        with pytest.raises(ValueError):
            mapper.line_of(bad)


class TestPageHelpers:
    def test_page_stripes_over_sixteen_banks(self, mapper):
        # A 4 KB page = 64 lines = 16 MOP4 chunks -> 16 (sc, bank) pairs.
        assert len(mapper.banks_of_page(0)) == PAGE_LINES // MOP_CHUNK_LINES

    def test_page_maps_to_single_row(self, mapper):
        assert len(mapper.rows_of_page(0)) == 1
        assert len(mapper.rows_of_page(7)) == 1

    def test_page_first_line(self, mapper):
        assert mapper.page_first_line(3) == 3 * PAGE_LINES


class TestValidation:
    def test_rejects_bad_chunk(self, organization):
        with pytest.raises(ValueError):
            MOPMapper(organization, chunk_lines=0)

    def test_rejects_non_dividing_chunk(self):
        org = Organization(cols_per_row=66)
        with pytest.raises(ValueError):
            MOPMapper(org, chunk_lines=4)

    def test_total_lines(self, mapper, organization):
        assert mapper.total_lines == (organization.total_rows
                                      * organization.cols_per_row)
