"""Resilience-layer tests: retry policy, checkpoints, degradation.

The invariant under test throughout: faults, retries, timeouts, pool
degradation and resumption never change a single simulated number —
recovered sweeps are byte-identical to clean ones.
"""

import json

import pytest

from repro.exec import faults
from repro.exec import runtime as exec_runtime
from repro.exec.cache import RunCache
from repro.exec.executor import SweepExecutor, cell_fingerprint
from repro.exec.faults import FaultPlan
from repro.exec.resilience import (CellPolicy, FailedCell, SweepCheckpoint,
                                   SweepFailure, backoff_delay,
                                   validate_result)
from repro.experiments.common import (DesignSpec, series_rows, sweep_cells,
                                      sweep_designs)
from repro.mc.mitigation import coupled_para_factory
from repro.mc.policy import no_mitigation_factory
from repro.obs import Telemetry
from repro.obs import runtime as obs_runtime
from repro.workloads.builder import clear_cache
from repro.workloads.profiles import profiles_for

#: Fast-retry policy for fault tests (milliseconds, not the 50ms default).
FAST = dict(backoff_s=0.001, backoff_cap_s=0.01)


@pytest.fixture(autouse=True)
def _clean_slate(monkeypatch):
    clear_cache()
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    yield
    faults.install(None)
    clear_cache()


@pytest.fixture
def workloads():
    return profiles_for(names=["mcf"])


@pytest.fixture
def designs():
    return [DesignSpec("none", no_mitigation_factory()),
            DesignSpec("para", coupled_para_factory(2000))]


def _series_json(series) -> str:
    return json.dumps(series_rows(series), sort_keys=True)


def _sweep(designs, system, sim, workloads, executor=None):
    with exec_runtime.activated(executor):
        return sweep_designs(designs, system, sim, workloads=workloads)


def _fingerprints(designs, system, sim, workloads) -> dict[str, str]:
    """policy_name -> fingerprint for each unique cell of the sweep."""
    return {cell.policy_name: cell_fingerprint(cell)
            for cell in sweep_cells(designs, system, sim, workloads)}


class TestCellPolicy:
    def test_defaults_are_cheap(self):
        policy = CellPolicy()
        assert policy.timeout_s is None
        assert policy.attempts == 3

    @pytest.mark.parametrize("kwargs", [
        dict(timeout_s=0.0),
        dict(timeout_s=-1.0),
        dict(retries=-1),
        dict(backoff_s=-0.1),
        dict(backoff_s=2.0, backoff_cap_s=1.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CellPolicy(**kwargs)

    def test_backoff_deterministic_and_bounded(self):
        fp = "ab" * 32
        for attempt in (1, 2, 3, 8):
            exp = min(2.0, 0.05 * 2 ** (attempt - 1))
            delay = backoff_delay(fp, attempt)
            assert delay == backoff_delay(fp, attempt)  # deterministic
            assert exp * 0.5 <= delay < exp

    def test_backoff_decorrelated_across_cells(self):
        assert backoff_delay("aa" * 32, 1) != backoff_delay("bb" * 32, 1)


class TestValidateResult:
    def test_non_result_rejected(self):
        assert "RunResult" in validate_result({"workload": "mcf"})
        assert validate_result(None) is not None

    def test_good_result_accepted(self, small_system, small_sim,
                                  workloads):
        cells = sweep_cells([], small_system, small_sim, workloads)
        with SweepExecutor() as executor:
            results = executor.run_cells(cells)
        assert validate_result(results[0]) is None

    def test_failed_cell_describe_and_sweep_failure(self):
        failed = FailedCell(fingerprint="ab" * 32, workload="mcf",
                            policy_name="para", attempts=3, kind="crash",
                            error="boom")
        assert "mcf/para" in failed.describe()
        failure = SweepFailure([failed])
        assert failure.failures == [failed]
        assert "1 cell(s) failed terminally" in str(failure)
        assert "boom" in str(failure)


class TestCheckpoint:
    def test_fresh_truncates_and_marks(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        path.write_text('{"schema": 1, "fp": "stale"}\n')
        checkpoint = SweepCheckpoint(path)
        assert len(checkpoint) == 0
        assert not checkpoint.was_done("stale")
        checkpoint.mark("aa")
        checkpoint.mark("aa")  # idempotent
        checkpoint.mark("bb")
        checkpoint.close()
        assert len(path.read_text().splitlines()) == 2

    def test_resume_loads_previous(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        first = SweepCheckpoint(path)
        first.mark("aa")
        first.close()
        resumed = SweepCheckpoint(path, resume=True)
        assert "aa" in resumed
        assert resumed.was_done("aa")
        resumed.mark("bb")
        assert "bb" in resumed
        assert not resumed.was_done("bb")  # new this run, not previous
        resumed.close()
        third = SweepCheckpoint(path, resume=True)
        assert third.was_done("aa") and third.was_done("bb")

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        path.write_text('{"schema": 1, "fp": "aa"}\n'
                        '\n'
                        '{"schema": 1, "fp"')  # killed mid-append
        resumed = SweepCheckpoint(path, resume=True)
        assert resumed.was_done("aa")
        assert len(resumed) == 1

    def test_missing_file_resumes_empty(self, tmp_path):
        resumed = SweepCheckpoint(tmp_path / "absent.jsonl", resume=True)
        assert len(resumed) == 0

    def test_describe(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "c.jsonl", resume=True)
        assert "resume" in checkpoint.describe()


class TestRetries:
    def test_crash_and_corrupt_retried_identical_output(
            self, small_system, small_sim, designs, workloads):
        reference = _sweep(designs, small_system, small_sim, workloads)
        fps = _fingerprints(designs, small_system, small_sim, workloads)
        faults.install(FaultPlan.parse(
            f"crash:{fps['none'][:16]};corrupt:{fps['para'][:16]}"))
        with SweepExecutor(policy=CellPolicy(**FAST)) as executor:
            recovered = _sweep(designs, small_system, small_sim,
                               workloads, executor)
        assert _series_json(recovered) == _series_json(reference)
        assert executor.stats.retries == 2
        assert executor.stats.failed == 0
        assert "retries=2" in executor.describe()

    def test_hang_times_out_and_recovers(self, small_system, small_sim,
                                         designs, workloads):
        reference = _sweep(designs, small_system, small_sim, workloads)
        fps = _fingerprints(designs, small_system, small_sim, workloads)
        faults.install(FaultPlan.parse(f"hang:{fps['para'][:16]}@300"))
        policy = CellPolicy(timeout_s=0.5, **FAST)
        with SweepExecutor(policy=policy) as executor:
            recovered = _sweep(designs, small_system, small_sim,
                               workloads, executor)
        assert _series_json(recovered) == _series_json(reference)
        assert executor.stats.timeouts == 1
        assert executor.stats.retries == 1

    def test_budget_exhausted_raises_after_caching_the_rest(
            self, tmp_path, small_system, small_sim, designs, workloads):
        fps = _fingerprints(designs, small_system, small_sim, workloads)
        faults.install(FaultPlan.parse(f"crash:{fps['para'][:16]}:99"))
        cache = RunCache(tmp_path)
        checkpoint = SweepCheckpoint(cache.checkpoint_path())
        policy = CellPolicy(retries=1, **FAST)
        with SweepExecutor(cache=cache, checkpoint=checkpoint,
                           policy=policy) as executor:
            with pytest.raises(SweepFailure) as excinfo:
                _sweep(designs, small_system, small_sim, workloads,
                       executor)
        failures = excinfo.value.failures
        assert [f.policy_name for f in failures] == ["para"]
        assert failures[0].kind == "crash"
        assert failures[0].attempts == 2
        assert "InjectedCrash" in failures[0].error
        assert executor.stats.failed == 1
        # The healthy cells (baseline + the "none" design) reached the
        # cache and the journal before the failure was raised.
        assert cache.stats.stores == 2
        assert fps["none"] in checkpoint

        # A relaunch with --resume semantics redoes only the loser.
        faults.install(None)
        resumed_checkpoint = SweepCheckpoint(cache.checkpoint_path(),
                                             resume=True)
        with SweepExecutor(cache=RunCache(tmp_path),
                           checkpoint=resumed_checkpoint) as retry:
            series = _sweep(designs, small_system, small_sim, workloads,
                            retry)
        assert retry.stats.resumed == 2
        assert retry.stats.computed == 1
        reference = _sweep(designs, small_system, small_sim, workloads)
        assert _series_json(series) == _series_json(reference)


class TestResume:
    def test_interrupted_sweep_resumes_byte_identical(
            self, tmp_path, small_system, small_sim, designs, workloads):
        reference = _sweep(designs, small_system, small_sim, workloads)
        cells = sweep_cells(designs, small_system, small_sim, workloads)

        # Simulate an interruption: only the first cells complete before
        # the run dies.
        cache = RunCache(tmp_path)
        first = SweepExecutor(
            cache=cache, checkpoint=SweepCheckpoint(cache.checkpoint_path()))
        first.run_cells(cells[:2])
        first.close()
        done_before = first.stats.computed
        assert done_before >= 1

        # Relaunch with resume: journalled cells come back from the
        # cache as *resumed*, only the remainder is computed.
        warm_cache = RunCache(tmp_path)
        resumed = SweepExecutor(
            cache=warm_cache,
            checkpoint=SweepCheckpoint(warm_cache.checkpoint_path(),
                                       resume=True))
        series = _sweep(designs, small_system, small_sim, workloads,
                        resumed)
        resumed.close()
        assert resumed.stats.resumed == done_before
        assert resumed.stats.computed == 3 - done_before
        assert "resumed=" in resumed.describe()
        assert _series_json(series) == _series_json(reference)


class TestDegradation:
    def test_broken_pool_falls_back_to_serial(self, capsys, monkeypatch,
                                              small_system, small_sim,
                                              designs, workloads):
        reference = _sweep(designs, small_system, small_sim, workloads)
        # Every cell's first two attempts die with os._exit in the
        # worker; the plan rides the environment so forked workers see
        # it.  Inline (degraded) attempts soften abort into a crash.
        monkeypatch.setenv(faults.FAULTS_ENV, "abort:*:2")
        with SweepExecutor(jobs=2, policy=CellPolicy(**FAST)) as executor:
            recovered = _sweep(designs, small_system, small_sim,
                               workloads, executor)
        assert _series_json(recovered) == _series_json(reference)
        assert executor.stats.fallbacks == 1
        assert executor.stats.failed == 0
        assert "falling back to in-process serial execution" in \
            capsys.readouterr().err
        assert "fallbacks=1" in executor.describe()


class TestTelemetryIntegration:
    def test_retry_counters_visible_in_metrics(self, small_system,
                                               small_sim, designs,
                                               workloads):
        cells = sweep_cells(designs, small_system, small_sim, workloads)
        with SweepExecutor() as clean:
            reference = clean.run_cells(cells)
        fps = _fingerprints(designs, small_system, small_sim, workloads)
        faults.install(FaultPlan.parse(f"crash:{fps['para'][:16]}"))
        telemetry = Telemetry()
        with SweepExecutor(policy=CellPolicy(**FAST)) as executor:
            with obs_runtime.activated(telemetry):
                results = executor.run_cells(cells)
        assert telemetry.registry.counter("exec.retries").value == 1
        assert executor.stats.retries == 1
        assert results == reference
