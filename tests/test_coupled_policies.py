"""Unit tests for the coupled PARA/MINT baselines (Section 2.6)."""

import pytest

from repro.dram.commands import Command
from repro.dram.subchannel import SubChannel
from repro.mc.controller import SubChannelController
from repro.mc.mitigation import (CoupledMintPolicy, CoupledParaPolicy,
                                 coupled_mint_factory, coupled_para_factory)
from repro.mc.policy import NoMitigation, no_mitigation_factory


def make_controller(timing, organization, policy):
    subchannel = SubChannel(0, timing, organization.banks,
                            organization.banks_per_group,
                            record_mitigations=True)
    controller = SubChannelController(subchannel, timing, policy)
    return controller, subchannel


class TestNoMitigation:
    def test_never_mitigates(self, timing, organization, context):
        policy = no_mitigation_factory()(context)
        assert isinstance(policy, NoMitigation)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        now = 0
        for row in range(50):
            now = controller.service(0, row, now)
        assert subchannel.stats.mitigation_commands == 0
        assert policy.stats.activations_observed == 50


class TestCoupledPara:
    def test_probability_from_threshold(self, context):
        policy = CoupledParaPolicy(context, t_rh=2000)
        assert policy.probability == pytest.approx(1 / 100)

    def test_probability_override(self, context):
        policy = CoupledParaPolicy(context, t_rh=2000, probability=0.5)
        assert policy.probability == 0.5

    def test_selection_triggers_immediate_drfm(self, timing, organization,
                                               context):
        policy = CoupledParaPolicy(context, t_rh=2000, probability=1.0)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        controller.service(0, 5, 0)
        assert subchannel.stats.mitigation_commands == 1
        event = subchannel.mitigation_log[0]
        assert event.command is Command.DRFM_SB
        assert event.mitigated_rows == ((0, 5),)

    def test_coupled_rlp_is_one(self, timing, organization, context):
        # Sampling and mitigation are coupled: DRFM always fires right
        # after its own DAR write, so it can only ever mitigate one row.
        policy = CoupledParaPolicy(context, t_rh=2000, probability=0.3)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        now = 0
        for i in range(400):
            now = controller.service(i % 32, i, now)
        assert subchannel.stats.mitigation_commands > 0
        assert subchannel.average_rlp == pytest.approx(1.0)

    def test_nrr_variant_mitigates_directly(self, timing, organization,
                                            context):
        policy = CoupledParaPolicy(context, t_rh=2000,
                                   command=Command.NRR, probability=1.0)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        controller.service(2, 9, 0)
        event = subchannel.mitigation_log[0]
        assert event.command is Command.NRR
        assert event.mitigated_rows == ((2, 9),)
        # NRR needs no DAR sampling.
        assert subchannel.banks[2].stats.samples == 0

    def test_rejects_bad_threshold(self, context):
        with pytest.raises(ValueError):
            CoupledParaPolicy(context, t_rh=0)

    def test_factory(self, context):
        policy = coupled_para_factory(2000, Command.DRFM_AB)(context)
        assert policy.command is Command.DRFM_AB
        assert policy.name == "para-drfmab"


class TestCoupledMint:
    def test_window_from_threshold(self, context):
        policy = CoupledMintPolicy(context, t_rh=2000)
        assert policy.window == 100

    def test_one_mitigation_per_window(self, timing, organization,
                                       context):
        policy = CoupledMintPolicy(context, t_rh=2000, window=10)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        now = 0
        for i in range(95):
            now = controller.service(0, i, now)
        # 95 activations to one bank with W=10: windows end at the 11th,
        # 21st, ... activation -> at least 7 mitigations.
        assert 7 <= subchannel.stats.mitigation_commands <= 9

    def test_mitigation_samples_explicitly(self, timing, organization,
                                           context):
        policy = CoupledMintPolicy(context, t_rh=2000, window=5)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        now = 0
        for i in range(20):
            now = controller.service(0, i, now)
        assert subchannel.banks[0].stats.samples >= 1
        event = subchannel.mitigation_log[0]
        assert event.command is Command.DRFM_SB
        assert event.rlp == 1

    def test_per_bank_windows_independent(self, timing, organization,
                                          context):
        policy = CoupledMintPolicy(context, t_rh=2000, window=10)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        now = 0
        for i in range(8):
            now = controller.service(0, i, now)
        for i in range(8):
            now = controller.service(1, i, now)
        # Neither bank's window expired yet.
        assert subchannel.stats.mitigation_commands == 0

    def test_factory(self, context):
        policy = coupled_mint_factory(1000, Command.NRR)(context)
        assert policy.window == 50
        assert policy.name == "mint-nrr"
