"""Unit tests for the multi-program mixes (Appendix D)."""

import pytest

from repro.sim.config import SimConfig, SystemConfig
from repro.workloads.mixes import (NUM_MIXES, build_mix_traces,
                                   mix_composition, mix_name, spec_profiles)
from repro.workloads.profiles import Suite


class TestComposition:
    def test_spec_pool(self):
        pool = spec_profiles()
        assert len(pool) == 12
        assert all(p.suite is Suite.SPEC for p in pool)

    def test_eight_workloads_per_mix(self):
        assert len(mix_composition(0)) == 8

    def test_deterministic(self):
        first = [p.name for p in mix_composition(3)]
        second = [p.name for p in mix_composition(3)]
        assert first == second

    def test_mixes_differ(self):
        names = {tuple(p.name for p in mix_composition(i))
                 for i in range(NUM_MIXES)}
        assert len(names) > 1

    def test_only_spec_workloads(self):
        for i in range(NUM_MIXES):
            assert all(p.suite is Suite.SPEC for p in mix_composition(i))

    def test_index_bounds(self):
        with pytest.raises(ValueError):
            mix_composition(NUM_MIXES)
        with pytest.raises(ValueError):
            mix_composition(-1)

    def test_mix_name(self):
        assert mix_name(0) == "mix1"
        assert mix_name(9) == "mix10"


class TestTraceBuilding:
    def test_builds_per_core_traces(self):
        system = SystemConfig.baseline(refs_per_window=64, num_cores=2)
        sim = SimConfig(requests_per_core=300, seed=1)
        traces = build_mix_traces(0, system, sim)
        assert len(traces) == 2
        assert all(trace.name == "mix1" for trace in traces)
        assert all(len(trace) == 300 for trace in traces)
