"""Unit tests for the synthetic trace generators."""

import numpy as np
import pytest

from repro.sim.config import SystemConfig
from repro.workloads.profiles import profile
from repro.workloads.synthetic import (estimate_gap_ps, generate_lines,
                                       generate_trace)


@pytest.fixture
def system():
    return SystemConfig.baseline(refs_per_window=64)


class TestGenerateLines:
    def test_length(self, system):
        rng = np.random.default_rng(1)
        lines = generate_lines(profile("mcf"), system, 0, 5000, rng)
        assert len(lines) == 5000

    def test_addresses_in_range(self, system):
        rng = np.random.default_rng(1)
        lines = generate_lines(profile("add"), system, 0, 5000, rng)
        total = (system.organization.total_rows
                 * system.organization.cols_per_row)
        assert lines.min() >= 0
        assert lines.max() < total

    def test_cores_use_disjoint_regions(self, system):
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        lines_a = generate_lines(profile("blender"), system, 0, 2000, rng_a)
        lines_b = generate_lines(profile("blender"), system, 1, 2000, rng_b)
        total = (system.organization.total_rows
                 * system.organization.cols_per_row)
        region = total // system.num_cores
        assert lines_a.max() < region
        assert region <= lines_b.min()

    def test_streaming_has_sequential_runs(self, system):
        rng = np.random.default_rng(1)
        lines = generate_lines(profile("add"), system, 0, 5000, rng)
        deltas = np.diff(lines)
        # Most consecutive pairs advance by exactly one line.
        assert np.mean(deltas == 1) > 0.5

    def test_irregular_is_scattered(self, system):
        rng = np.random.default_rng(1)
        lines = generate_lines(profile("tc"), system, 0, 5000, rng)
        deltas = np.diff(lines)
        assert np.mean(deltas == 1) < 0.6

    def test_hot_set_concentration(self, system):
        # A profile with a large hot share revisits a small line set.
        rng = np.random.default_rng(1)
        lines = generate_lines(profile("parest"), system, 0, 20_000, rng)
        unique = len(np.unique(lines))
        assert unique < len(lines) * 0.8

    def test_rejects_zero_length(self, system):
        with pytest.raises(ValueError):
            generate_lines(profile("mcf"), system, 0, 0,
                           np.random.default_rng(1))


class TestGapEstimate:
    def test_light_workload_long_gap(self, system):
        light = estimate_gap_ps(profile("blender"), system)
        heavy = estimate_gap_ps(profile("add"), system)
        assert light > heavy

    def test_nonnegative(self, system):
        for name in ("blender", "add", "tc", "mcf"):
            assert estimate_gap_ps(profile(name), system) >= 0


class TestGenerateTrace:
    def test_deterministic_for_seed(self, system):
        a = generate_trace(profile("mcf"), system, 0, 1000, seed=5)
        b = generate_trace(profile("mcf"), system, 0, 1000, seed=5)
        assert (a.row == b.row).all()
        assert (a.bank == b.bank).all()

    def test_different_seeds_differ(self, system):
        a = generate_trace(profile("mcf"), system, 0, 1000, seed=5)
        b = generate_trace(profile("mcf"), system, 0, 1000, seed=6)
        assert not (a.row == b.row).all()

    def test_explicit_gap(self, system):
        trace = generate_trace(profile("mcf"), system, 0, 100, seed=5,
                               gap_ps=777)
        assert (trace.gap_ps == 777).all()

    def test_coordinates_in_range(self, system):
        trace = generate_trace(profile("cc"), system, 3, 2000, seed=5)
        org = system.organization
        assert trace.subchannel.max() < org.subchannels
        assert trace.bank.max() < org.banks
        assert trace.row.max() < org.rows_per_bank
