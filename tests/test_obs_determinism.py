"""Telemetry must observe, never perturb.

The load-bearing guarantee of the observability subsystem: a simulation
with telemetry enabled produces a **byte-identical**
:meth:`~repro.sim.results.RunResult.to_json` to the same simulation
without it.  These tests also cover the wiring end-to-end — journal
record kinds, metric totals against the result, the ambient runtime
holder — over a real (scaled-down) mitigated run.
"""

import json

import pytest

from repro.mc.mitigation import coupled_mint_factory
from repro.obs import Telemetry
from repro.obs import runtime as obs_runtime
from repro.sim.config import SimConfig, SystemConfig
from repro.sim.runner import run_simulation
from repro.workloads.builder import build_traces


@pytest.fixture(scope="module")
def system():
    return SystemConfig.baseline(refs_per_window=32, num_cores=2)


@pytest.fixture(scope="module")
def sim():
    return SimConfig(requests_per_core=6_000, seed=7)


@pytest.fixture(scope="module")
def traces(system, sim):
    return build_traces("mcf", system, sim, calibrate=False)


def _run(system, traces, sim, telemetry=None):
    return run_simulation(system, traces, sim,
                          coupled_mint_factory(500), "mint",
                          telemetry=telemetry)


class TestDeterminism:
    def test_result_byte_identical_with_telemetry_on(self, system,
                                                     traces, sim):
        plain = _run(system, traces, sim)
        telemetry = Telemetry(journal_memory=True, sample_every_refi=2)
        instrumented = _run(system, traces, sim, telemetry)
        assert plain.to_json() == instrumented.to_json()
        # The instrumented run really did record things — the equality
        # above is meaningless if telemetry silently stayed off.
        assert telemetry.timeline.samples
        assert telemetry.journal.kinds().get("mitigation", 0) > 0

    def test_ambient_activation_is_equally_inert(self, system, traces,
                                                 sim):
        plain = _run(system, traces, sim)
        with obs_runtime.activated(Telemetry(journal_memory=True)):
            ambient = _run(system, traces, sim)
        assert plain.to_json() == ambient.to_json()


class TestJournalEndToEnd:
    def test_run_emits_all_core_record_kinds(self, system, traces, sim):
        telemetry = Telemetry(journal_memory=True, sample_every_refi=2)
        _run(system, traces, sim, telemetry)
        kinds = telemetry.journal.kinds()
        assert set(kinds) >= {"run_start", "sample", "mitigation",
                              "summary"}
        assert kinds["run_start"] == 1
        assert kinds["summary"] == 1

    def test_summary_matches_result(self, system, traces, sim):
        telemetry = Telemetry(journal_memory=True)
        result = _run(system, traces, sim, telemetry)
        summary = [r for r in telemetry.journal.records
                   if r["kind"] == "summary"][0]
        assert summary["requests"] == result.requests_completed
        assert summary["mitigations"] == result.mitigation_commands
        assert summary["end_time_ps"] == result.end_time_ps

    def test_file_journal_round_trips(self, system, traces, sim,
                                      tmp_path):
        path = str(tmp_path / "run.jsonl")
        telemetry = Telemetry(journal_path=path, sample_every_refi=2)
        _run(system, traces, sim, telemetry)
        telemetry.finalize()
        from repro.obs.journal import load_journal

        records = load_journal(path)
        kinds = {r["kind"] for r in records}
        assert kinds >= {"run_start", "sample", "mitigation", "summary"}
        for record in records:
            json.dumps(record)  # every record is plain JSON data


class TestMetricsEndToEnd:
    def test_mitigation_counters_match_result(self, system, traces, sim):
        telemetry = Telemetry()
        result = _run(system, traces, sim, telemetry)
        snapshot = telemetry.registry.snapshot()
        counted = sum(snapshot[name] for name in snapshot
                      if name.endswith(".mitigations"))
        rows = sum(snapshot[name] for name in snapshot
                   if name.endswith(".rows_mitigated"))
        assert counted == result.mitigation_commands
        assert rows == result.rows_mitigated

    def test_rlp_histogram_mean_matches_result(self, system, traces,
                                               sim):
        telemetry = Telemetry()
        result = _run(system, traces, sim, telemetry)
        hists = [telemetry.registry.get(name) for name in
                 telemetry.registry.names() if name.endswith(".rlp")]
        total = sum(h.total for h in hists)
        count = sum(h.count for h in hists)
        assert count == result.mitigation_commands
        assert total / count == pytest.approx(result.average_rlp)

    def test_run_counters_and_throughput(self, system, traces, sim):
        telemetry = Telemetry()
        result = _run(system, traces, sim, telemetry)
        assert telemetry.registry.counter("sim.runs").value == 1
        assert telemetry.registry.counter("sim.requests").value == \
            result.requests_completed
        assert telemetry.profiler.throughput.events_per_sec > 0

    def test_timeline_queue_depth_hook_reset_after_run(self, system,
                                                       traces, sim):
        telemetry = Telemetry(sample_every_refi=2)
        _run(system, traces, sim, telemetry)
        assert telemetry.timeline.queue_depth is None
        assert any(s.queue_depth >= 0 for s in telemetry.timeline.samples)


class TestRuntimeHolder:
    def test_activated_restores_previous(self):
        outer = Telemetry()
        inner = Telemetry()
        assert obs_runtime.active() is None
        with obs_runtime.activated(outer):
            assert obs_runtime.active() is outer
            with obs_runtime.activated(inner):
                assert obs_runtime.active() is inner
            assert obs_runtime.active() is outer
        assert obs_runtime.active() is None

    def test_explicit_argument_beats_ambient(self, system, traces, sim):
        ambient = Telemetry()
        explicit = Telemetry()
        with obs_runtime.activated(ambient):
            _run(system, traces, sim, telemetry=explicit)
        assert explicit.registry.counter("sim.runs").value == 1
        assert "sim.runs" not in ambient.registry
