"""Concurrent scheduler tests: work-sharing across jobs, singleflight
cell dedup, stream isolation under reconnects, queue accounting, and
the ``repro top`` rate clamp.

The deterministic singleflight partition lives at the executor level
(a gated executor makes "second thread attaches while first computes"
an observable, not a race); the service-level tests assert the
invariants that hold at *any* interleaving — exactly-once compute,
``sorted(computed) == [0, cells]`` for identical concurrent jobs, and
byte-identity of every result against a local ``run_experiment``.
"""

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis.top import InstanceSample, TopDashboard
from repro.exec.executor import Cell, SweepExecutor
from repro.experiments import registry
from repro.experiments.common import ExperimentResult, RunOptions
from repro.obs.exporter import parse_exposition, sample_value
from repro.service import (JobScheduler, ServiceThread, SweepClient)
from repro.sim.config import SimConfig, SystemConfig
from repro.workloads.builder import clear_cache
from repro.workloads.profiles import profile
from tests.test_service_client import FlakyProxy

#: Small per-core budget so a job is a ~1 s ten-cell sweep.
BUDGET = 500

OPTIONS = RunOptions(seed=11, requests_per_core=BUDGET)
OPTIONS_B = RunOptions(seed=12, requests_per_core=BUDGET)


@pytest.fixture(autouse=True)
def _small_world(monkeypatch):
    monkeypatch.setattr("repro.workloads.profiles.QUICK_SUBSET",
                        ("blender", "add"))
    clear_cache()
    yield
    clear_cache()


@pytest.fixture
def gated(monkeypatch):
    """A registry experiment that blocks until the test opens the gate
    — makes 'job is running right now' a fact, not a race."""
    gate = threading.Event()

    def runner(quick=True, seed=0):
        assert gate.wait(30), "test gate never opened"
        return ExperimentResult(experiment="gated", title="gated",
                                rows=[{"seed": seed}])

    monkeypatch.setitem(registry.EXPERIMENTS, "gated", runner)
    yield gate
    gate.set()


def _wait(scheduler, job_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        record = scheduler.get(job_id)
        if record["state"] in ("done", "failed"):
            return record
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} did not finish")


class TestConcurrentJobs:
    def test_distinct_jobs_byte_identical_to_local(self):
        with JobScheduler(SweepExecutor(), concurrency=4) as scheduler:
            jobs = [
                (scheduler.submit("ablation-atm", OPTIONS)["job"],
                 "ablation-atm", OPTIONS),
                (scheduler.submit("ablation-atm", OPTIONS_B)["job"],
                 "ablation-atm", OPTIONS_B),
                (scheduler.submit("table4", RunOptions())["job"],
                 "table4", RunOptions()),
            ]
            for job_id, _, _ in jobs:
                assert _wait(scheduler, job_id)["state"] == "done"
            texts = {job_id: scheduler.result_text(job_id)
                     for job_id, _, _ in jobs}
        clear_cache()
        for job_id, experiment, options in jobs:
            local = registry.run_experiment(experiment, options)
            assert texts[job_id] == local.to_json()

    def test_identical_concurrent_jobs_race_not_order(self):
        with JobScheduler(SweepExecutor(), concurrency=2) as scheduler:
            first = scheduler.submit("ablation-atm", OPTIONS)["job"]
            second = scheduler.submit("ablation-atm", OPTIONS)["job"]
            records = [_wait(scheduler, first), _wait(scheduler, second)]
            assert [r["state"] for r in records] == ["done", "done"]
            cells = records[0]["counters"]["cells"]
            assert cells == 10  # 2 workloads x 5 designs
            # Exactly-once compute: whichever job's scan claimed the
            # fingerprints computed everything, the other nothing.
            assert sorted(r["counters"]["computed"]
                          for r in records) == [0, cells]
            loser = min(records, key=lambda r: r["counters"]["computed"])
            assert loser["counters"]["memo_hits"] == cells
            # Global view agrees: the sweep ran once, period.
            assert scheduler.executor.stats.computed == cells
            assert scheduler.result_text(first) == \
                scheduler.result_text(second)

    def test_counters_attributed_per_job_not_snapshotted(self):
        # Two *distinct* jobs overlapping on one executor: with the old
        # global-snapshot deltas each would absorb the other's cells;
        # attributed scoped stats keep them exact.
        with JobScheduler(SweepExecutor(), concurrency=2) as scheduler:
            first = scheduler.submit("ablation-atm", OPTIONS)["job"]
            second = scheduler.submit("ablation-atm", OPTIONS_B)["job"]
            for job_id in (first, second):
                counters = _wait(scheduler, job_id)["counters"]
                assert counters["cells"] == 10
                assert counters["computed"] == 10
                assert counters["memo_hits"] == 0
                assert counters["dedup_hits"] == 0

    def test_queue_positions_and_submission_order(self, gated):
        with JobScheduler(SweepExecutor(), concurrency=1) as scheduler:
            first = scheduler.submit("gated", RunOptions())["job"]
            deadline = time.monotonic() + 10
            while scheduler.get(first)["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            second = scheduler.submit("gated", RunOptions())
            third = scheduler.submit("gated", RunOptions())
            assert second["queue_position"] == 0
            assert third["queue_position"] == 1
            listing = scheduler.list()
            assert [r["job"] for r in listing] == \
                [first, second["job"], third["job"]]
            assert listing[0]["queue_position"] is None  # running
            assert [r["queue_position"] for r in listing[1:]] == [0, 1]
            stamps = [r["submitted_unix"] for r in listing]
            assert stamps == sorted(stamps)
            gated.set()
            for record in (second, third):
                assert _wait(scheduler, record["job"])["state"] == "done"
            assert all(r["queue_position"] is None
                       for r in scheduler.list())


class _GatedInlineExecutor(SweepExecutor):
    """Inline-only executor whose first compute blocks until released,
    and which reports when a follower attaches to an in-flight cell."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.compute_started = threading.Event()
        self.release = threading.Event()
        self.attached = threading.Event()
        self.calls = 0
        self._count_lock = threading.Lock()

    def _pool_usable(self):
        return False

    def _attempt_inline(self, cell, fp, attempt, capture=None):
        with self._count_lock:
            self.calls += 1
        self.compute_started.set()
        assert self.release.wait(30), "executor gate never opened"
        return super()._attempt_inline(cell, fp, attempt, capture)

    def _await_flight(self, fp, cell, capture):
        self.attached.set()
        return super()._await_flight(fp, cell, capture)


def _tiny_cell(seed=3):
    system = SystemConfig.baseline()
    return Cell(workload=profile("add"), trace_system=system,
                run_system=system,
                sim=SimConfig(requests_per_core=200, seed=seed),
                policy=None, policy_name="none")


class TestExecutorSingleflight:
    def test_second_thread_attaches_and_dedups(self):
        executor = _GatedInlineExecutor()
        out = {}

        def run(tag):
            with executor.scoped() as scope:
                out[f"{tag}_result"] = \
                    executor.run_cells([_tiny_cell()])[0]
                out[tag] = scope.stats

        owner = threading.Thread(target=run, args=("a",))
        owner.start()
        # The owner is mid-compute, holding the in-flight claim...
        assert executor.compute_started.wait(10)
        assert executor.inflight_cells() == 1
        follower = threading.Thread(target=run, args=("b",))
        follower.start()
        # ...and the follower demonstrably attached to it (no second
        # compute was started) before we let the owner finish.
        assert executor.attached.wait(10)
        executor.release.set()
        owner.join(30)
        follower.join(30)
        assert not owner.is_alive() and not follower.is_alive()

        assert executor.calls == 1  # computed exactly once
        assert executor.inflight_cells() == 0
        assert (out["a"].cells, out["a"].computed,
                out["a"].dedup_hits) == (1, 1, 0)
        assert (out["b"].cells, out["b"].computed, out["b"].memo_hits,
                out["b"].dedup_hits) == (1, 0, 1, 1)
        stats = executor.stats
        assert (stats.cells, stats.computed, stats.memo_hits,
                stats.dedup_hits) == (2, 1, 1, 1)
        assert out["a_result"].requests_completed == \
            out["b_result"].requests_completed


@pytest.fixture
def concurrent_service():
    with JobScheduler(SweepExecutor(), concurrency=2) as scheduler:
        with ServiceThread(scheduler) as thread:
            yield thread


@pytest.fixture
def proxy(concurrent_service):
    flaky = FlakyProxy(concurrent_service.port)
    yield flaky
    flaky.close()


class TestStreamsAcrossConcurrentJobs:
    def test_reconnecting_streams_stay_gapless_and_per_job(
            self, proxy, concurrent_service):
        client = SweepClient(proxy.url)
        first = client.submit("ablation-atm", OPTIONS)
        second = client.submit("ablation-atm", OPTIONS_B)
        proxy.cut_next = 4
        streams = {}

        def consume(job_id):
            streams[job_id] = list(SweepClient(proxy.url)
                                   .stream(job_id))

        threads = [threading.Thread(target=consume, args=(job_id,))
                   for job_id in (first, second)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
            assert not thread.is_alive()
        for job_id in (first, second):
            events = streams[job_id]
            # Gapless and duplicate-free despite torn connections...
            assert [event["seq"] for event in events] == \
                list(range(len(events)))
            # ...and not one event from the *other* concurrent job.
            assert all(event["job"] == job_id for event in events)
            assert events[-1]["kind"] == "state"
            assert events[-1]["state"] == "done"
        assert proxy.connections >= 4  # both initial streams were cut
        # Results fetched through the flaky path are byte-identical to
        # the direct path.
        direct = SweepClient(concurrent_service.url)
        for job_id in (first, second):
            assert client.result(job_id, wait=False) == \
                direct.result(job_id, wait=False)

    def test_wait_many_returns_terminal_records_in_order(
            self, concurrent_service):
        client = SweepClient(concurrent_service.url)
        first = client.submit("ablation-atm", OPTIONS)
        second = client.submit("table4")
        records = client.wait_many([first, second])
        assert list(records) == [first, second]
        assert all(record["state"] == "done"
                   for record in records.values())


class TestReadinessUnderConcurrentSubmission:
    def test_queue_limit_accounting(self, gated):
        with JobScheduler(SweepExecutor(), concurrency=2) as scheduler:
            with ServiceThread(scheduler, queue_limit=3) as service:
                client = SweepClient(service.url)
                running = [client.submit("gated"), client.submit("gated")]
                deadline = time.monotonic() + 10
                while not all(r["state"] == "running"
                              for r in client.jobs()):
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                # Both workers are pinned; the queue is empty, so the
                # service is ready...
                assert _status(service.url + "/v1/readyz") == 200
                # ...and a burst of concurrent submissions is admitted
                # exactly up to the limit: the event loop serializes
                # the check-then-enqueue, so no interleaving can
                # oversubscribe the queue.
                statuses = []

                def try_submit():
                    statuses.append(_status(
                        service.url + "/v1/jobs", method="POST",
                        body=b'{"experiment": "gated"}'))

                threads = [threading.Thread(target=try_submit)
                           for _ in range(8)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(30)
                assert sorted(statuses) == [200] * 3 + [503] * 5
                assert _status(service.url + "/v1/readyz") == 503
                assert scheduler.queue_depth() == 3
                gated.set()
                deadline = time.monotonic() + 30
                while not all(r["state"] == "done"
                              for r in client.jobs()):
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                assert _status(service.url + "/v1/readyz") == 200
                assert len(client.jobs()) == len(running) + 3

    def test_concurrency_metrics_exposed(self, concurrent_service):
        text = urllib.request.urlopen(
            concurrent_service.url + "/v1/metrics").read().decode()
        samples = parse_exposition(text)
        assert sample_value(samples,
                            "repro_scheduler_concurrency") == 2.0
        assert sample_value(samples,
                            "repro_scheduler_workers_alive") == 2.0
        assert sample_value(samples,
                            "repro_scheduler_inflight_cells") == 0.0
        assert sample_value(samples,
                            "repro_executor_dedup_hits_total") == 0.0


def _status(url, method="GET", body=None):
    request = urllib.request.Request(url, method=method, data=body)
    try:
        with urllib.request.urlopen(request) as response:
            return response.status
    except urllib.error.HTTPError as error:
        return error.code


class TestTopRateClamp:
    def test_restart_counter_reset_clamps_to_zero(self):
        dashboard = TopDashboard(["http://i"], stream=io.StringIO())

        def sample(total):
            return InstanceSample(url="http://i", ok=True,
                                  cells_total=total)

        assert dashboard._rate(sample(100), 10.0) is None  # first poll
        # The instance restarted: its counter reset below the previous
        # poll.  Render idle, not a negative rate...
        assert dashboard._rate(sample(40), 20.0) == 0.0
        # ...and the next poll is re-baselined against the new counter.
        assert dashboard._rate(sample(90), 30.0) == 5.0
