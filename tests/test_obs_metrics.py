"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               RLP_BUCKETS)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_reset(self):
        counter = Counter("x")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("depth")
        gauge.set(12.5)
        gauge.inc(0.5)
        assert gauge.value == 13.0

    def test_reset(self):
        gauge = Gauge("depth")
        gauge.set(7)
        gauge.reset()
        assert gauge.value == 0.0


class TestHistogram:
    def test_bucketing_inclusive_upper_bounds(self):
        hist = Histogram("rlp", buckets=(1, 2, 4, 8))
        for value in (1, 1, 2, 3, 4, 8):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"]["le_1"] == 2
        assert snap["buckets"]["le_2"] == 1
        assert snap["buckets"]["le_4"] == 2  # 3 and 4
        assert snap["buckets"]["le_8"] == 1
        assert snap["overflow"] == 0

    def test_overflow_bucket(self):
        hist = Histogram("rlp", buckets=(1, 2))
        hist.observe(99)
        assert hist.snapshot()["overflow"] == 1

    def test_mean_is_exact(self):
        hist = Histogram("rlp")
        hist.observe(1)
        hist.observe(8)
        assert hist.mean == pytest.approx(4.5)
        assert hist.count == 2

    def test_default_rlp_buckets_cover_32_banks(self):
        assert RLP_BUCKETS[-1] == 32

    def test_requires_increasing_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(4, 2))
        with pytest.raises(ValueError):
            Histogram("bad", buckets=())

    def test_reset(self):
        hist = Histogram("rlp")
        hist.observe(3)
        hist.reset()
        assert hist.count == 0
        assert hist.total == 0.0
        assert hist.snapshot()["buckets"]["le_4"] == 0


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("mc.sc0.drfm_sb_issued")
        b = registry.counter("mc.sc0.drfm_sb_issued")
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_hierarchical_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter("mc.sc0.acts")
        registry.counter("mc.sc1.acts")
        registry.gauge("sim.events_per_sec")
        assert registry.names("mc.sc0.") == ["mc.sc0.acts"]
        assert len(registry.snapshot("mc.")) == 2

    def test_snapshot_is_plain_data(self):
        import json

        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(1.5)
        registry.histogram("c").observe(3)
        encoded = json.dumps(registry.snapshot())
        assert '"a": 2' in encoded

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.inc(5)
        registry.reset()
        assert registry.counter("a") is counter
        assert counter.value == 0

    def test_contains_and_len(self):
        registry = MetricsRegistry()
        registry.counter("a")
        assert "a" in registry
        assert "b" not in registry
        assert len(registry) == 1
