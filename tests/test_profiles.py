"""Unit tests for the workload profiles (Table 3 encoding)."""

import pytest

from repro.workloads.profiles import (PROFILES, QUICK_SUBSET, AccessStyle,
                                      Suite, average_profile_value, profile,
                                      profiles_for)


class TestCatalog:
    def test_twenty_two_workloads(self):
        assert len(PROFILES) == 22

    def test_suite_counts_match_paper(self):
        suites = [p.suite for p in PROFILES]
        assert suites.count(Suite.SPEC) == 12
        assert suites.count(Suite.GAP) == 6
        assert suites.count(Suite.STREAM) == 4

    def test_unique_names(self):
        names = [p.name for p in PROFILES]
        assert len(set(names)) == len(names)

    def test_lookup(self):
        assert profile("mcf").suite is Suite.SPEC
        with pytest.raises(KeyError, match="unknown workload"):
            profile("nope")


class TestPaperValues:
    def test_average_acts_per_row(self):
        # Paper's Table 3 average row: 0.73 ACTs per row per tREFW.
        average = average_profile_value(lambda p: p.avg_acts_per_row)
        assert average == pytest.approx(0.73, abs=0.02)

    def test_average_bw_util(self):
        average = average_profile_value(lambda p: p.bw_util_pct)
        assert average == pytest.approx(66.0, abs=1.0)

    def test_average_act0(self):
        average = average_profile_value(lambda p: p.pct_rows_act0)
        assert average == pytest.approx(80.24, abs=0.5)

    def test_histogram_sums_to_100(self):
        for p in PROFILES:
            total = p.pct_rows_act0 + p.pct_rows_act1_4 + p.pct_rows_act5
            assert total == pytest.approx(100.0, abs=0.5), p.name

    def test_stream_profiles_are_streaming(self):
        for name in ("add", "copy", "scale", "triad"):
            assert profile(name).style is AccessStyle.STREAMING

    def test_gap_profiles_are_irregular(self):
        for name in ("bc", "bfs", "cc", "pr", "sssp", "tc"):
            assert profile(name).style is AccessStyle.IRREGULAR


class TestDerivedKnobs:
    def test_footprint_fraction(self):
        p = profile("add")
        assert p.footprint_fraction == pytest.approx(
            (100 - p.pct_rows_act0) / 100)

    def test_hot_fraction(self):
        p = profile("mcf")
        assert p.hot_fraction_of_rows == pytest.approx(
            p.pct_rows_act5 / 100)

    def test_bw_util_fraction(self):
        assert profile("tc").bw_util == pytest.approx(0.925)


class TestSelection:
    def test_quick_subset_is_valid(self):
        selected = profiles_for(quick=True)
        assert len(selected) == len(QUICK_SUBSET)
        assert all(p.name in QUICK_SUBSET for p in selected)

    def test_full_selection(self):
        assert len(profiles_for(quick=False)) == 22

    def test_explicit_names(self):
        selected = profiles_for(names=["mcf", "add"])
        assert [p.name for p in selected] == ["mcf", "add"]

    def test_quick_subset_spans_suites(self):
        suites = {profile(name).suite for name in QUICK_SUBSET}
        assert suites == {Suite.SPEC, Suite.GAP, Suite.STREAM}
