"""Unit tests for the Recent-Mitigated-Address-Queue."""

import pytest

from repro.core.rmaq import (ENTRY_BITS, RecentMitigationQueue,
                             capacity_for_window, storage_bits)
from repro.dram.timing import ns

TREFI = ns(3900)


class TestCapacityModel:
    def test_paper_capacities(self):
        # 150 activations per 2*tREFI: W=25 -> 6, W=50 -> 3, W=100 -> 2.
        assert capacity_for_window(25) == 6
        assert capacity_for_window(50) == 3
        assert capacity_for_window(100) == 2

    def test_storage_cost(self):
        # 5-15 bytes per bank (Section 6.1).
        assert storage_bits(2) == 2 * ENTRY_BITS
        assert 5 * 8 <= storage_bits(2) <= 15 * 8
        assert 5 * 8 <= storage_bits(6) <= 15 * 8

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            capacity_for_window(0)


class TestQueueBehaviour:
    def test_contains_after_insert(self):
        queue = RecentMitigationQueue(4, TREFI)
        queue.insert(42, now_ps=0)
        assert queue.contains(42, now_ps=100)
        assert not queue.contains(43, now_ps=100)

    def test_expiry_after_two_trefi(self):
        queue = RecentMitigationQueue(4, TREFI)
        queue.insert(42, now_ps=0)
        # Within the horizon (epochs 0..2) the entry is live.
        assert queue.contains(42, now_ps=2 * TREFI + 1)
        # At epoch 3 the entry (epoch 0) has expired.
        assert not queue.contains(42, now_ps=3 * TREFI + 1)

    def test_fifo_eviction_when_full(self):
        queue = RecentMitigationQueue(2, TREFI)
        queue.insert(1, 0)
        queue.insert(2, 0)
        queue.insert(3, 0)
        assert not queue.contains(1, 0)
        assert queue.contains(2, 0)
        assert queue.contains(3, 0)

    def test_hit_counter(self):
        queue = RecentMitigationQueue(2, TREFI)
        queue.insert(1, 0)
        queue.contains(1, 0)
        queue.contains(1, 0)
        queue.contains(9, 0)
        assert queue.hits == 2

    def test_len_tracks_live_entries(self):
        queue = RecentMitigationQueue(4, TREFI)
        queue.insert(1, 0)
        queue.insert(2, 0)
        assert len(queue) == 2

    def test_storage_bits_method(self):
        queue = RecentMitigationQueue(3, TREFI)
        assert queue.storage_bits() == 3 * ENTRY_BITS

    def test_validation(self):
        with pytest.raises(ValueError):
            RecentMitigationQueue(0, TREFI)
        with pytest.raises(ValueError):
            RecentMitigationQueue(1, 0)

    def test_rate_limit_guarantee(self):
        # Core security property: an address that was inserted cannot be
        # re-sampled (contains() is True) at any point within two tREFI.
        queue = RecentMitigationQueue(6, TREFI)
        queue.insert(7, now_ps=TREFI // 2)
        for check in range(0, 2 * TREFI, TREFI // 4):
            now = TREFI // 2 + check
            assert queue.contains(7, now)
