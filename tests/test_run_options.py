"""RunOptions record: validation, wire format, and the v2 contract
(:class:`RunOptions` is the *only* way to parameterise
``run_experiment`` — the pre-2.0 legacy-kwargs shim is gone)."""

import json

import pytest

from repro.experiments import registry
from repro.experiments.common import (DEFAULT_SEED, MODES, RunOptions)
from repro.workloads.builder import clear_cache

#: Small per-core budget for the sim-backed checks.
BUDGET = 800


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture
def tiny_quick_subset(monkeypatch):
    monkeypatch.setattr("repro.workloads.profiles.QUICK_SUBSET",
                        ("blender", "add"))


class TestRecord:
    def test_defaults(self):
        options = RunOptions()
        assert options.mode == "quick"
        assert options.quick is True
        assert options.seed == DEFAULT_SEED
        assert not options.wants_resilience()

    def test_modes(self):
        assert MODES == ("quick", "full")
        assert RunOptions(mode="full").quick is False

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RunOptions().mode = "full"

    @pytest.mark.parametrize("kwargs", [
        dict(mode="fast"),
        dict(requests_per_core=0),
        dict(retries=-1),
        dict(timeout_s=0.0),
        dict(backend="gpu"),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RunOptions(**kwargs)

    def test_resilience_knobs_detected(self):
        assert RunOptions(retries=3).wants_resilience()
        assert RunOptions(timeout_s=10.0).wants_resilience()
        assert RunOptions(resume=True).wants_resilience()

    def test_describe_names_the_knobs(self):
        text = RunOptions(mode="full", retries=3).describe()
        assert "mode=full" in text
        assert "retries=3" in text

    def test_backend_defaults_scalar_and_describes(self):
        assert RunOptions().backend == "scalar"
        assert "backend" not in RunOptions().describe()
        options = RunOptions(backend="batched")
        assert not options.wants_resilience()  # backend is not a knob
        assert "backend=batched" in options.describe()


class TestWireFormat:
    """to_dict/from_dict/to_json/from_json — the one shared pair the
    CLI, the service server, and the service client all ride."""

    def test_round_trip_defaults(self):
        assert RunOptions.from_dict(RunOptions().to_dict()) == RunOptions()
        assert RunOptions.from_json(RunOptions().to_json()) == RunOptions()

    def test_round_trip_every_field(self):
        options = RunOptions(mode="full", requests_per_core=123, seed=7,
                             retries=4, timeout_s=1.5, resume=True,
                             backend="auto")
        assert RunOptions.from_json(options.to_json()) == options

    def test_json_is_canonical(self):
        # sort_keys → stable bytes: identical options produce identical
        # submission bodies, which is what cache coalescing keys on.
        text = RunOptions(seed=7).to_json()
        assert text == json.dumps(json.loads(text), sort_keys=True)

    def test_partial_dict_fills_defaults(self):
        options = RunOptions.from_dict({"mode": "full"})
        assert options == RunOptions(mode="full")

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {"mode": "quick", "bogus": 1},
        {"mode": "fast"},
        {"requests_per_core": 0},
        {"seed": "high"},
    ])
    def test_bad_payloads_raise_value_error(self, payload):
        with pytest.raises(ValueError):
            RunOptions.from_dict(payload)

    def test_bad_json_raises_value_error(self):
        with pytest.raises(ValueError):
            RunOptions.from_json("{not json")
        with pytest.raises(ValueError):
            RunOptions.from_json("[1, 2]")


class TestRunExperimentV2:
    def test_options_record_is_the_only_entry_point(self):
        result = registry.run_experiment("table4", RunOptions())
        assert result.to_json() == registry.run_experiment(
            "table4").to_json()

    @pytest.mark.parametrize("bad", [
        {"mode": "quick"},          # dict is not an options record
        True,                       # the pre-2.0 positional quick flag
        "quick",
    ])
    def test_non_record_options_rejected(self, bad):
        with pytest.raises(TypeError, match="RunOptions"):
            registry.run_experiment("table4", bad)

    def test_legacy_kwargs_surface_removed(self):
        with pytest.raises(TypeError):
            registry.run_experiment("table4", quick=True, seed=3)
        assert not hasattr(registry, "_merge_legacy")

    @pytest.mark.parametrize("backend", ["batched", "auto"])
    def test_backend_byte_identical(self, tiny_quick_subset, backend):
        """The registry scopes a batched-backend executor around the
        run and the output is byte-identical to scalar."""
        scalar = registry.run_experiment(
            "ablation-atm", RunOptions(seed=11,
                                       requests_per_core=BUDGET))
        clear_cache()
        routed = registry.run_experiment(
            "ablation-atm", RunOptions(seed=11, requests_per_core=BUDGET,
                                       backend=backend))
        assert routed.to_json() == scalar.to_json()

    def test_wire_round_trip_runs_identically(self, tiny_quick_subset):
        """Options that crossed the wire drive the same run as the
        original record (the service's byte-identity foundation)."""
        options = RunOptions(seed=11, requests_per_core=BUDGET)
        direct = registry.run_experiment("ablation-atm", options)
        clear_cache()
        wired = registry.run_experiment(
            "ablation-atm", RunOptions.from_json(options.to_json()))
        assert wired.to_json() == direct.to_json()
