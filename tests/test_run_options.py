"""RunOptions record + the legacy-kwargs compatibility shim."""

import warnings

import pytest

from repro.experiments import registry
from repro.experiments.common import (DEFAULT_SEED, MODES, RunOptions)
from repro.workloads.builder import clear_cache

#: Small per-core budget for the one sim-backed equivalence check.
BUDGET = 800


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture
def tiny_quick_subset(monkeypatch):
    monkeypatch.setattr("repro.workloads.profiles.QUICK_SUBSET",
                        ("blender", "add"))


class TestRecord:
    def test_defaults(self):
        options = RunOptions()
        assert options.mode == "quick"
        assert options.quick is True
        assert options.seed == DEFAULT_SEED
        assert not options.wants_resilience()

    def test_modes(self):
        assert MODES == ("quick", "full")
        assert RunOptions(mode="full").quick is False

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RunOptions().mode = "full"

    @pytest.mark.parametrize("kwargs", [
        dict(mode="fast"),
        dict(requests_per_core=0),
        dict(retries=-1),
        dict(timeout_s=0.0),
        dict(backend="gpu"),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RunOptions(**kwargs)

    def test_resilience_knobs_detected(self):
        assert RunOptions(retries=3).wants_resilience()
        assert RunOptions(timeout_s=10.0).wants_resilience()
        assert RunOptions(resume=True).wants_resilience()

    def test_describe_names_the_knobs(self):
        text = RunOptions(mode="full", retries=3).describe()
        assert "mode=full" in text
        assert "retries=3" in text

    def test_backend_defaults_scalar_and_describes(self):
        assert RunOptions().backend == "scalar"
        assert "backend" not in RunOptions().describe()
        options = RunOptions(backend="batched")
        assert not options.wants_resilience()  # backend is not a knob
        assert "backend=batched" in options.describe()


class TestEquivalence:
    def test_analytic_byte_identical(self):
        modern = registry.run_experiment("table4", RunOptions())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = registry.run_experiment("table4", quick=True)
        assert legacy.to_json() == modern.to_json()

    def test_simulated_byte_identical(self, tiny_quick_subset):
        options = RunOptions(seed=11, requests_per_core=BUDGET)
        modern = registry.run_experiment("ablation-atm", options)
        clear_cache()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = registry.run_experiment(
                "ablation-atm", quick=True, seed=11,
                requests_per_core=BUDGET)
        assert legacy.to_json() == modern.to_json()

    @pytest.mark.parametrize("backend", ["batched", "auto"])
    def test_backend_byte_identical(self, tiny_quick_subset, backend):
        """The registry scopes a batched-backend executor around the
        run and the output is byte-identical to scalar."""
        scalar = registry.run_experiment(
            "ablation-atm", RunOptions(seed=11,
                                       requests_per_core=BUDGET))
        clear_cache()
        routed = registry.run_experiment(
            "ablation-atm", RunOptions(seed=11, requests_per_core=BUDGET,
                                       backend=backend))
        assert routed.to_json() == scalar.to_json()


class TestLegacyShim:
    def test_legacy_kwargs_warn_exactly_once(self):
        with pytest.warns(DeprecationWarning,
                          match="RunOptions") as record:
            registry.run_experiment("table4", quick=True, seed=3)
        assert len(record) == 1

    def test_bool_positional_is_the_old_quick_flag(self):
        with pytest.warns(DeprecationWarning):
            legacy = registry.run_experiment("table4", True)
        modern = registry.run_experiment("table4", RunOptions())
        assert legacy.to_json() == modern.to_json()

    def test_options_record_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            registry.run_experiment("table4", RunOptions())

    def test_legacy_kwargs_override_options(self):
        with pytest.warns(DeprecationWarning):
            merged = registry._merge_legacy(RunOptions(seed=1), quick=False,
                                            seed=9, requests_per_core=500)
        assert merged == RunOptions(mode="full", seed=9,
                                    requests_per_core=500)

    def test_bad_options_type_rejected(self):
        with pytest.raises(TypeError, match="RunOptions"):
            registry.run_experiment("table4", {"mode": "quick"})
