"""Unit + security tests for the in-DRAM TRR model (motivation)."""

import pytest

from repro.analysis.harness import AttackHarness
from repro.trackers.trr import TRRSampler, trr_factory
from repro.workloads.attacks import double_sided


class TestSampler:
    def test_counts_hits(self):
        sampler = TRRSampler(entries=4)
        for _ in range(3):
            sampler.observe(7)
        assert sampler.counts[7] == 3

    def test_eviction_when_full(self):
        sampler = TRRSampler(entries=2)
        sampler.observe(1)
        sampler.observe(1)
        sampler.observe(2)
        sampler.observe(3)  # evicts row 2 (coldest)
        assert set(sampler.counts) == {1, 3}

    def test_pick_target_is_hottest(self):
        sampler = TRRSampler(entries=4)
        sampler.observe(1)
        for _ in range(5):
            sampler.observe(2)
        assert sampler.pick_target() == 2

    def test_consume_removes(self):
        sampler = TRRSampler(entries=4)
        sampler.observe(1)
        assert sampler.consume_target() == 1
        assert sampler.consume_target() is None

    def test_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            TRRSampler(entries=0)


class TestTRRSecurity:
    """The TRRespass story: small patterns caught, many-sided bypass."""

    def test_double_sided_is_caught(self):
        harness = AttackHarness(trr_factory(entries=4), seed=41)
        result = harness.run(double_sided(10, 12, 30_000), bank=0)
        # Both aggressors dominate the 4-entry table: mitigated at
        # (nearly) every REF, so the streak stays around one tREFI's
        # worth of activations (~75).
        assert result.mitigations > 50
        assert result.max_unmitigated < 1000

    @staticmethod
    def _decoy_shadow_pattern(rounds=2000):
        """TRRespass-style bypass: decoys own the tracker, targets hide.

        Four decoy rows are hammered harder than the two true targets,
        so the frequency-based tracker's table (4 entries) and its REF
        mitigations are consumed entirely by decoys — the targets are
        never the hottest tracked rows and never get mitigated.
        """
        decoys, targets = [100, 200, 300, 400], [10, 12]
        pattern = []
        for _ in range(rounds):
            for decoy in decoys:
                pattern += [(0, decoy)] * 3
            for target in targets:
                pattern += [(0, target)] * 2
        return pattern, targets

    def test_decoy_shadowing_bypasses_trr(self):
        pattern, targets = self._decoy_shadow_pattern()
        harness = AttackHarness(trr_factory(entries=4), seed=41)
        result = harness.run(pattern)
        # The decoys are mitigated constantly...
        assert result.mitigations > 100
        assert result.peak_for(0, 100) < 500
        # ...while the true targets accumulate every single activation.
        for target in targets:
            assert result.peak_for(0, target) == 4000

    def test_dream_catches_the_same_pattern(self):
        # The same decoy pattern against MC-side DREAM-R stays bounded —
        # the paper's motivation for MC-side mitigation.
        from repro.core.dream_r import dream_r_mint_factory
        pattern, targets = self._decoy_shadow_pattern()
        harness = AttackHarness(dream_r_mint_factory(2000), seed=41)
        result = harness.run(pattern)
        for target in targets:
            assert result.peak_for(0, target) < 1000
