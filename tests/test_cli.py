"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _clean_environment(monkeypatch):
    for name in ("REPRO_FULL", "REPRO_JOBS", "REPRO_CACHE_DIR",
                 "REPRO_FAULTS"):
        monkeypatch.delenv(name, raising=False)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiments == ["table1"]
        assert args.mode is None
        assert args.seed == 2025

    def test_full_alias_removed(self):
        # --full finished its deprecation cycle in 2.0; only --mode
        # full remains.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--full", "fig9"])

    def test_help_epilog_documents_env_vars(self):
        text = build_parser().format_help()
        for name in ("REPRO_FULL", "REPRO_JOBS", "REPRO_CACHE_DIR",
                     "REPRO_FAULTS"):
            assert name in text, name

    def test_version_prints_and_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert __version__ in out
        assert out.startswith("dream-repro ")


class TestModeFlags:
    def _mode(self, *argv):
        from repro.cli import _resolve_mode

        return _resolve_mode(build_parser().parse_args(list(argv)))

    def test_default_is_quick(self):
        assert self._mode("run", "table1") == "quick"

    def test_mode_flag(self):
        assert self._mode("run", "--mode", "full", "table1") == "full"
        assert self._mode("run", "--mode", "quick", "table1") == "quick"

    def test_mode_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mode", "fast", "table1"])

    def test_env_default(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert self._mode("run", "table1") == "full"
        assert self._mode("run", "--mode", "quick", "table1") == "quick"

    def test_report_accepts_mode_too(self):
        args = build_parser().parse_args(
            ["report", "--mode", "full", "table1"])
        assert args.mode == "full"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "table6" in out

    def test_run_analytic(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Graphene storage" in out
        assert "finished in" in out

    def test_storage(self, capsys):
        assert main(["storage", "500"]) == 0
        out = capsys.readouterr().out
        assert "DREAM-C" in out
        assert "Graphene" in out
        assert "7.9x" in out

    def test_security(self, capsys):
        assert main(["security", "2000"]) == 0
        out = capsys.readouterr().out
        assert "1/100" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_run_json(self, capsys):
        assert main(["run", "--json", "table6"]) == 0
        out = capsys.readouterr().out
        assert '"experiment": "table6"' in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "table1", "table6",
                     "-o", str(target)]) == 0
        content = target.read_text()
        assert "# DREAM reproduction report" in content
        assert "## table1" in content
        assert "## table6" in content

    def test_report_to_stdout(self, capsys):
        assert main(["report", "table4"]) == 0
        out = capsys.readouterr().out
        assert "## table4" in out

    def test_plan_recommends_design(self, capsys):
        assert main(["plan", "2000"]) == 0
        out = capsys.readouterr().out
        assert "dream-r-mint" in out
        assert "window = 99" in out

    def test_plan_tight_budget(self, capsys):
        assert main(["plan", "250", "--budget", "2"]) == 0
        out = capsys.readouterr().out
        assert "dream-c" in out


class TestTelemetryFlags:
    def test_defaults_off(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.journal is None
        assert args.metrics_out is None
        assert not args.profile
        assert args.trace is None
        assert args.sample_every is None
        assert args.spans is None

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "fig9", "--journal", "j.jsonl", "--metrics-out",
             "m.json", "--profile", "--trace", "t.jsonl",
             "--sample-every", "4", "--spans", "s.json"])
        assert args.journal == "j.jsonl"
        assert args.metrics_out == "m.json"
        assert args.profile
        assert args.trace == "t.jsonl"
        assert args.sample_every == 4
        assert args.spans == "s.json"

    def test_report_accepts_flags_too(self):
        args = build_parser().parse_args(
            ["report", "--profile", "table1"])
        assert args.profile

    def test_metrics_out_writes_snapshot(self, tmp_path, capsys):
        import json

        target = tmp_path / "metrics.json"
        assert main(["run", "table1", "--metrics-out",
                     str(target)]) == 0
        snapshot = json.loads(target.read_text())
        assert snapshot["schema_version"] == 1
        assert "metrics" in snapshot and "profiling" in snapshot

    def test_profile_prints_phase_table(self, capsys):
        assert main(["run", "table1", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "wall-clock profile" in out


class TestExecFlags:
    def test_defaults_off(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.jobs is None
        assert args.cache_dir is None
        assert not args.no_cache
        assert args.requests is None
        assert not args.progress

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "fig9", "--jobs", "4", "--cache-dir", ".runcache",
             "--no-cache", "--requests", "500", "--progress"])
        assert args.jobs == 4
        assert args.cache_dir == ".runcache"
        assert args.no_cache
        assert args.requests == 500
        assert args.progress

    def test_backend_flag_parses(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.backend == "scalar"
        args = build_parser().parse_args(
            ["run", "fig9", "--backend", "batched"])
        assert args.backend == "batched"
        args = build_parser().parse_args(
            ["report", "--backend", "auto", "table1"])
        assert args.backend == "auto"

    def test_backend_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--backend", "gpu", "table1"])

    def test_help_epilog_documents_backends(self):
        from repro.cli import ENV_HELP
        assert "engine backends" in ENV_HELP
        assert "batched" in ENV_HELP
        assert "auto" in ENV_HELP

    def test_report_accepts_flags_too(self):
        args = build_parser().parse_args(
            ["report", "--jobs", "2", "table1"])
        assert args.jobs == 2

    def _run_json(self, capsys, *flags):
        assert main(["run", "ablation-atm", "--json",
                     "--requests", "500", *flags]) == 0
        captured = capsys.readouterr()
        return captured.out, captured.err

    def test_parallel_json_byte_identical_to_serial(self, capsys):
        serial, _ = self._run_json(capsys)
        parallel, err = self._run_json(capsys, "--jobs", "2")
        assert parallel == serial
        assert "executor[jobs=2]" in err

    def test_batched_backend_byte_identical_to_serial(self, capsys):
        serial, _ = self._run_json(capsys)
        for backend in ("batched", "auto"):
            routed, err = self._run_json(capsys, "--backend", backend)
            assert routed == serial
            assert "executor[jobs=1]" in err

    def test_batched_backend_composes_with_jobs_and_cache(self, tmp_path,
                                                          capsys):
        serial, _ = self._run_json(capsys)
        cache = str(tmp_path / "runcache")
        routed, err = self._run_json(capsys, "--backend", "batched",
                                     "--jobs", "2",
                                     "--cache-dir", cache)
        assert routed == serial
        warm, warm_err = self._run_json(capsys, "--backend", "batched",
                                        "--jobs", "2",
                                        "--cache-dir", cache)
        assert warm == serial
        assert "misses=0" in warm_err

    def test_warm_cache_run_byte_identical_and_all_hits(self, tmp_path,
                                                        capsys):
        cache = str(tmp_path / "runcache")
        cold, cold_err = self._run_json(capsys, "--cache-dir", cache)
        assert "misses=0" not in cold_err
        warm, warm_err = self._run_json(capsys, "--cache-dir", cache)
        assert warm == cold
        assert "misses=0" in warm_err
        assert "hits=10" in warm_err

    def test_no_cache_disables_cache_dir(self, tmp_path, capsys):
        cache = str(tmp_path / "runcache")
        self._run_json(capsys, "--cache-dir", cache, "--no-cache")
        assert not (tmp_path / "runcache").exists()

    def test_telemetry_composes_with_executor_flags(self, tmp_path,
                                                    capsys):
        plain, _ = self._run_json(capsys)
        cache = str(tmp_path / "runcache")
        out, err = self._run_json(capsys, "--jobs", "2",
                                  "--cache-dir", cache, "--profile")
        assert "ignoring --jobs" not in err
        assert "executor[jobs=2]" in err
        assert (tmp_path / "runcache").exists()
        # Simulated results are untouched by telemetry capture; the JSON
        # block precedes the profile table in stdout.
        assert out.startswith(plain)
        # Telemetry artifacts land next to the cached result entries.
        artifacts = list((tmp_path / "runcache").rglob("*.obs.json"))
        assert len(artifacts) == 10

    def test_env_defaults_used_when_flags_absent(self, tmp_path,
                                                 monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "2")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "runcache"))
        _, err = self._run_json(capsys)
        assert "executor[jobs=2]" in err
        assert (tmp_path / "runcache").exists()


class TestResilienceFlags:
    def test_defaults_off(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.retries is None
        assert args.timeout is None
        assert not args.resume

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "fig9", "--retries", "4", "--timeout", "2.5",
             "--resume", "--cache-dir", ".runcache"])
        assert args.retries == 4
        assert args.timeout == 2.5
        assert args.resume

    def test_resume_without_cache_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "ablation-atm", "--resume"])
        assert excinfo.value.code == 2
        assert "--resume needs a run cache" in capsys.readouterr().err

    def _run_json(self, capsys, *flags):
        code = main(["run", "ablation-atm", "--json",
                     "--requests", "500", *flags])
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_injected_faults_are_retried_identically(self, monkeypatch,
                                                     capsys):
        code, clean, _ = self._run_json(capsys)
        assert code == 0
        monkeypatch.setenv("REPRO_FAULTS", "corrupt:*:1")
        code, faulted, err = self._run_json(capsys, "--retries", "2")
        assert code == 0
        assert faulted == clean
        assert "retries=10" in err

    def test_failed_cells_exit_1_then_resume_recovers(self, tmp_path,
                                                      monkeypatch,
                                                      capsys):
        code, clean, _ = self._run_json(capsys)
        cache = str(tmp_path / "runcache")
        monkeypatch.setenv("REPRO_FAULTS", "crash:*:9")
        code, _, err = self._run_json(capsys, "--retries", "1",
                                      "--cache-dir", cache)
        assert code == 1
        assert "failed terminally" in err
        assert "rerun (with --resume)" in err
        monkeypatch.delenv("REPRO_FAULTS")
        code, recovered, err = self._run_json(capsys, "--cache-dir",
                                              cache, "--resume")
        assert code == 0
        assert recovered == clean

    def test_resume_after_clean_run_serves_checkpoint(self, tmp_path,
                                                      capsys):
        cache = str(tmp_path / "runcache")
        code, cold, _ = self._run_json(capsys, "--cache-dir", cache)
        assert code == 0
        code, warm, err = self._run_json(capsys, "--cache-dir", cache,
                                         "--resume")
        assert code == 0
        assert warm == cold
        assert "resumed=10" in err


class TestStats:
    @pytest.fixture
    def journal_path(self, tmp_path):
        from repro.obs.journal import RunJournal

        path = str(tmp_path / "run.jsonl")
        with RunJournal(path) as journal:
            journal.write("run_start", run=0, workload="mcf",
                          policy="mint", seed=7)
            for tick in range(3):
                journal.write("sample", sc=0, tick=tick, acts=100 + tick)
            journal.write("mitigation", sc=0, cmd="DRFMsb", rlp=7)
            journal.write("mitigation", sc=0, cmd="DRFMsb", rlp=8)
            journal.write("mitigation", sc=0, cmd="NRR", rlp=1)
            journal.write("summary", run=0, workload="mcf",
                          policy="mint", end_time_ps=123, requests=3000,
                          row_hit_rate=0.61, mitigations=3, rlp=5.33)
            journal.write("profile",
                          phases={"simulate": {"seconds": 1.5,
                                               "calls": 2}},
                          throughput={"events": 3000, "seconds": 0.5,
                                      "events_per_sec": 6000.0})
        return path

    def test_renders_counts_and_sections(self, journal_path, capsys):
        assert main(["stats", journal_path]) == 0
        out = capsys.readouterr().out
        assert "mitigation=3" in out and "sample=3" in out
        assert "mcf/mint" in out
        assert "DRFMsb" in out and "avg rlp=7.50" in out
        assert "activations per sample tick" in out
        assert "simulate" in out
        assert "6,000 events/s" in out

    def test_empty_journal_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["stats", str(path)]) == 1
        assert "empty journal" in capsys.readouterr().out

    def test_max_runs_caps_listing(self, tmp_path, capsys):
        from repro.obs.journal import RunJournal

        path = str(tmp_path / "many.jsonl")
        with RunJournal(path) as journal:
            for run in range(5):
                journal.write("summary", run=run, workload="w",
                              policy="p", end_time_ps=1, requests=1,
                              row_hit_rate=0.5, mitigations=0, rlp=0)
        assert main(["stats", path, "--max-runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "(+3 more runs" in out

    def test_missing_journal_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", str(tmp_path / "nope.jsonl")])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "cannot read journal" in err
        assert "Traceback" not in err

    def test_truncated_journal_exits_2(self, tmp_path, capsys):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"v": 1, "kind": "run_start"}\n{"v": 1, "ki')
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", str(path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "not a valid JSONL journal" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("command", ["stats", "trace"])
    def test_newer_schema_journal_exits_2(self, tmp_path, capsys,
                                          command):
        path = tmp_path / "future.jsonl"
        path.write_text('{"v": 99, "kind": "run_start", "run": 0}\n')
        with pytest.raises(SystemExit) as excinfo:
            main([command, str(path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "journal schema v99" in err
        assert "upgrade repro" in err
        assert "Traceback" not in err


class TestTrace:
    @pytest.fixture
    def journal_path(self, tmp_path):
        from repro.obs.journal import RunJournal

        path = str(tmp_path / "run.jsonl")
        with RunJournal(path) as journal:
            journal.write("run_start", run=0, workload="mcf",
                          policy="mint-dream-r", seed=7)
            journal.write("sample", sc=0, tick=0, acts=100,
                          rmaq_hits=4, rmaq_skips=1)
            journal.write("mitigation", sc=0, t_ps=100,
                          cmd="DRFMsb", policy="mint-dream-r", bank=0,
                          blocked=4, rlp=3, dars=2)
            journal.write("mitigation", sc=0, t_ps=200,
                          cmd="DRFMsb", policy="mint-dream-r", bank=1,
                          blocked=4, rlp=5, dars=4)
        return path

    def test_renders_summary(self, journal_path, capsys):
        assert main(["trace", journal_path]) == 0
        out = capsys.readouterr().out
        assert "== policy: mint-dream-r ==" in out
        assert "DRFMsb=2" in out
        assert "rlp: mean=4.000" in out
        assert "rlp<=4" in out and "overflow" in out
        assert "DAR occupancy" in out
        assert "RMAQ: hits=4 skips=1" in out

    def test_no_mitigations_exits_1(self, tmp_path, capsys):
        from repro.obs.journal import RunJournal

        path = str(tmp_path / "quiet.jsonl")
        with RunJournal(path) as journal:
            journal.write("run_start", run=0, workload="w",
                          policy="none", seed=1)
        assert main(["trace", path]) == 1
        assert "no mitigation events" in capsys.readouterr().out

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", str(tmp_path / "nope.jsonl")])
        assert excinfo.value.code == 2
        assert "cannot read journal" in capsys.readouterr().err

    def test_cli_trace_flag_roundtrip(self, tmp_path, capsys):
        trace = str(tmp_path / "events.jsonl")
        assert main(["run", "ablation-atm", "--json",
                     "--requests", "500", "--trace", trace]) == 0
        err = capsys.readouterr().err
        assert f"trace written to {trace}" in err
        assert main(["trace", trace]) == 0
        assert "== policy:" in capsys.readouterr().out


class TestSpansCommand:
    @pytest.fixture
    def spans_path(self, tmp_path, capsys):
        path = str(tmp_path / "spans.json")
        assert main(["run", "ablation-atm", "--json",
                     "--requests", "500", "--spans", path]) == 0
        err = capsys.readouterr().err
        assert f"spans written to {path}" in err
        return path

    def test_cli_spans_flag_roundtrip(self, spans_path, capsys):
        assert main(["spans", spans_path]) == 0
        out = capsys.readouterr().out
        assert out.startswith("spans: ")
        assert "10 cells" in out
        assert "critical path:" in out
        assert "per-worker breakdown" in out

    def test_chrome_trace_export(self, spans_path, tmp_path, capsys):
        import json

        target = tmp_path / "chrome.json"
        assert main(["spans", spans_path,
                     "--chrome-trace", str(target)]) == 0
        err = capsys.readouterr().err
        assert "chrome trace written" in err
        trace = json.loads(target.read_text())
        assert {event["ph"] for event in trace["traceEvents"]} >= \
            {"X", "M"}

    def test_missing_file_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["spans", str(tmp_path / "nope.json")])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "cannot read spans file" in err
        assert "Traceback" not in err

    def test_newer_schema_exits_2(self, tmp_path, capsys):
        import json

        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema": 99, "spans": []}))
        with pytest.raises(SystemExit) as excinfo:
            main(["spans", str(path)])
        assert excinfo.value.code == 2
        assert "upgrade repro" in capsys.readouterr().err


class TestBench:
    @pytest.fixture
    def results_dir(self, tmp_path):
        import json

        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_engine.json").write_text(json.dumps({
            "current": {"configs": {
                "mint": {"events_per_sec": 400_000,
                         "median_events_per_sec": 380_000}}}}))
        (results / "BENCH_obs.json").write_text(json.dumps({
            "configs": {
                "on": {"events_per_sec": 300_000,
                       "median_events_per_sec": 290_000}}}))
        return str(results)

    def test_record_then_check_passes(self, results_dir, capsys):
        assert main(["bench", "record", "--results-dir", results_dir,
                     "--note", "seed"]) == 0
        assert "recorded 2 metrics" in capsys.readouterr().out
        assert main(["bench", "check",
                     "--results-dir", results_dir]) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out
        assert "engine.mint" in out and "obs.on" in out

    def test_check_without_history_exits_2(self, results_dir, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "check", "--results-dir", results_dir])
        assert excinfo.value.code == 2
        assert "repro bench record" in capsys.readouterr().err

    def test_record_without_snapshots_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "record",
                  "--results-dir", str(tmp_path / "empty")])
        assert excinfo.value.code == 2
        assert "no benchmark snapshots" in capsys.readouterr().err

    def test_injected_regression_fails_and_names_metric(
            self, results_dir, capsys):
        import json
        import os

        assert main(["bench", "record",
                     "--results-dir", results_dir]) == 0
        capsys.readouterr()
        engine = os.path.join(results_dir, "BENCH_engine.json")
        doc = json.loads(open(engine).read())
        config = doc["current"]["configs"]["mint"]
        config["events_per_sec"] = 200_000       # -50% best
        config["median_events_per_sec"] = 190_000  # -50% median
        with open(engine, "w") as handle:
            json.dump(doc, handle)
        assert main(["bench", "check",
                     "--results-dir", results_dir]) == 1
        out = capsys.readouterr().out
        assert "REGRESSIONS:" in out
        assert "engine.mint" in out
        # The untouched metric stays quiet.
        assert main(["bench", "check", "--results-dir", results_dir,
                     "--threshold", "60"]) == 0

    def test_committed_repo_baselines_pass(self, capsys):
        # The in-repo gate: frozen snapshots vs the recorded history.
        assert main(["bench", "check"]) == 0
        assert "no regressions" in capsys.readouterr().out
