"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiments == ["table1"]
        assert not args.full
        assert args.seed == 2025

    def test_run_full_flag(self):
        args = build_parser().parse_args(["run", "--full", "fig9"])
        assert args.full


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "table6" in out

    def test_run_analytic(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Graphene storage" in out
        assert "finished in" in out

    def test_storage(self, capsys):
        assert main(["storage", "500"]) == 0
        out = capsys.readouterr().out
        assert "DREAM-C" in out
        assert "Graphene" in out
        assert "7.9x" in out

    def test_security(self, capsys):
        assert main(["security", "2000"]) == 0
        out = capsys.readouterr().out
        assert "1/100" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_run_json(self, capsys):
        assert main(["run", "--json", "table6"]) == 0
        out = capsys.readouterr().out
        assert '"experiment": "table6"' in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "table1", "table6",
                     "-o", str(target)]) == 0
        content = target.read_text()
        assert "# DREAM reproduction report" in content
        assert "## table1" in content
        assert "## table6" in content

    def test_report_to_stdout(self, capsys):
        assert main(["report", "table4"]) == 0
        out = capsys.readouterr().out
        assert "## table4" in out

    def test_plan_recommends_design(self, capsys):
        assert main(["plan", "2000"]) == 0
        out = capsys.readouterr().out
        assert "dream-r-mint" in out
        assert "window = 99" in out

    def test_plan_tight_budget(self, capsys):
        assert main(["plan", "250", "--budget", "2"]) == 0
        out = capsys.readouterr().out
        assert "dream-c" in out
