"""Unit tests for the terminal bar-chart helpers."""

import pytest

from repro.analysis.charts import bar_chart, chart_average_row, chart_result


class TestBarChart:
    def test_scales_to_peak(self):
        text = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_values_render_empty(self):
        text = bar_chart([("a", 0.0), ("b", 2.0)], width=10)
        assert text.splitlines()[0].count("#") == 0

    def test_labels_aligned(self):
        text = bar_chart([("long-name", 1.0), ("x", 1.0)])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_values_shown(self):
        assert "3.14%" in bar_chart([("pi", 3.14)])

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart([])
        with pytest.raises(ValueError):
            bar_chart([("a", 1.0)], width=2)


class TestChartResult:
    def test_sweep_rows_chart_average(self):
        rows = [
            {"workload": "mcf", "a": 1.0, "b": 2.0},
            {"workload": "AVERAGE", "a": 3.0, "b": 6.0},
        ]
        chart = chart_result(rows)
        assert chart is not None
        assert "a" in chart and "b" in chart
        assert "6.00" in chart

    def test_no_average_row_returns_none(self):
        rows = [{"workload": "mcf", "a": 1.0}]
        assert chart_average_row(rows, "workload") is None

    def test_generic_rows(self):
        rows = [{"design": "x", "kb": 4.0}, {"design": "y", "kb": 2.0}]
        chart = chart_result(rows)
        assert chart is not None
        assert "x" in chart and "y" in chart

    def test_unchartable_returns_none(self):
        assert chart_result([]) is None
        assert chart_result([{"a": "only", "b": "strings"}]) is None


class TestCliFlag:
    def test_run_with_chart(self, capsys):
        from repro.cli import main

        assert main(["run", "--chart", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "#" in out  # bars rendered
