"""Unit tests for the victim-disturbance / bit-flip model."""

import pytest

from repro.dram.disturbance import (DISTANCE2_WEIGHT, DisturbanceConfig,
                                    DisturbanceModel, RefreshMode)


def make_model(t_rh=100, mode=RefreshMode.BOUNDED, p2=0.0, fractal_p=0.5,
               rows=1024, seed=1):
    config = DisturbanceConfig(t_rh=t_rh, mode=mode, p2=p2,
                               fractal_p=fractal_p)
    return DisturbanceModel(config, rows_per_bank=rows, seed=seed)


class TestAccumulation:
    def test_neighbours_disturbed(self):
        model = make_model()
        model.on_activation(0, 10, 0)
        assert model.charge(0, 9) == 1.0
        assert model.charge(0, 11) == 1.0
        assert model.charge(0, 8) == DISTANCE2_WEIGHT
        assert model.charge(0, 12) == DISTANCE2_WEIGHT
        assert model.charge(0, 10) == 0.0

    def test_double_sided_accumulates_twice(self):
        model = make_model()
        model.on_activation(0, 10, 0)
        model.on_activation(0, 12, 0)
        assert model.charge(0, 11) == 2.0

    def test_edge_rows_clipped(self):
        model = make_model(rows=16)
        model.on_activation(0, 0, 0)
        model.on_activation(0, 15, 0)
        assert model.charge(0, 14) == 1.0
        assert model.max_charge() >= 1.0  # no crash at the edges

    def test_banks_independent(self):
        model = make_model()
        model.on_activation(0, 10, 0)
        assert model.charge(1, 9) == 0.0


class TestFlips:
    def test_flip_at_threshold(self):
        model = make_model(t_rh=50)
        for _ in range(49):
            model.on_activation(0, 10, 0)
        assert not model.flipped
        model.on_activation(0, 10, 123)
        assert model.flipped
        flip = model.flips[0]
        assert flip.bank == 0
        assert flip.row in (9, 11)
        assert flip.time_ps == 123

    def test_double_sided_flips_in_half_the_acts(self):
        single = make_model(t_rh=100)
        for i in range(99):
            single.on_activation(0, 10, i)
        assert not single.flipped
        double = make_model(t_rh=100)
        for i in range(50):
            double.on_activation(0, 10, i)
            double.on_activation(0, 12, i)
        assert double.flipped  # victim row 11 took 2 units per pair

    def test_counting_restarts_after_flip(self):
        model = make_model(t_rh=10)
        for i in range(25):
            model.on_activation(0, 10, i)
        # 25 acts -> two crossings of 10 on each neighbour.
        crossings = [f for f in model.flips if f.row == 9]
        assert len(crossings) == 2


class TestVictimRefresh:
    def test_mitigation_clears_neighbours(self):
        model = make_model(t_rh=100)
        for _ in range(30):
            model.on_activation(0, 10, 0)
        model.on_mitigation(0, 10, 0)
        assert model.charge(0, 9) == 0.0
        assert model.charge(0, 11) == 0.0
        assert model.victim_refreshes >= 2

    def test_transitive_disturbance_from_victim_refresh(self):
        # The mitigation itself activates the victims, disturbing the
        # distance-2 rows: the effect behind the DRFM rate limit.
        model = make_model(t_rh=100, p2=0.0)
        model.on_mitigation(0, 10, 0)
        assert model.charge(0, 8) == 1.0
        assert model.charge(0, 12) == 1.0

    def test_transitive_attack_flips_distance2(self):
        # Repeated mitigation of the same aggressor (no rate limit, no
        # distance-2 coverage) eventually flips the distance-2 row.
        model = make_model(t_rh=50, p2=0.0)
        for i in range(50):
            model.on_mitigation(0, 10, i)
        assert any(flip.row in (8, 12) for flip in model.flips)

    def test_bounded_p2_protects_distance2(self):
        # With certain distance-2 refresh, the transitive attack fails.
        model = make_model(t_rh=50, p2=1.0)
        for i in range(200):
            model.on_mitigation(0, 10, i)
        assert not any(flip.row in (8, 12) for flip in model.flips)

    def test_fractal_protects_distance2_probabilistically(self):
        model = make_model(t_rh=50, mode=RefreshMode.FRACTAL,
                           fractal_p=0.9)
        for i in range(200):
            model.on_mitigation(0, 10, i)
        # With p=0.9 per mitigation, distance-2 charge stays far below
        # the threshold with overwhelming probability.
        assert not any(flip.row in (8, 12) for flip in model.flips)

    def test_periodic_refresh_clears_slice(self):
        model = make_model()
        model.on_activation(0, 10, 0)
        model.on_periodic_refresh(0, 8, 8)
        assert model.charge(0, 9) == 0.0
        assert model.charge(0, 11) == 0.0


class TestValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            make_model(t_rh=0)

    def test_rejects_bad_p2(self):
        with pytest.raises(ValueError):
            DisturbanceModel(DisturbanceConfig(p2=1.5), 16)


class TestEndToEnd:
    """Attack harness + disturbance model: defended vs undefended."""

    def _run(self, factory, t_rh_device, acts=6_000):
        from repro.analysis.harness import AttackHarness
        from repro.workloads.attacks import double_sided

        harness = AttackHarness(factory, seed=31)
        model = DisturbanceModel(
            DisturbanceConfig(t_rh=t_rh_device), rows_per_bank=512)
        harness.attach_disturbance(model)
        harness.run(double_sided(10, 12, acts), bank=0)
        return model

    def test_undefended_memory_flips(self):
        from repro.mc.policy import no_mitigation_factory
        model = self._run(no_mitigation_factory(), t_rh_device=4000)
        assert model.flipped

    def test_mint_dream_r_prevents_flips(self):
        from repro.core.dream_r import dream_r_mint_factory
        # Defense configured for the device's double-sided threshold.
        model = self._run(dream_r_mint_factory(2000), t_rh_device=4000)
        assert not model.flipped

    def test_dream_c_prevents_flips(self):
        from repro.core.dream_c import dream_c_factory
        model = self._run(dream_c_factory(500), t_rh_device=1000)
        assert not model.flipped

    def test_underprovisioned_defense_fails(self):
        from repro.core.dream_c import dream_c_factory
        # A defense built for T_RH=1000 cannot protect a device that
        # flips at 300 (accumulated double-sided disturbance).
        model = self._run(dream_c_factory(1000), t_rh_device=300)
        assert model.flipped
