"""Unit tests for the memory controller service path."""

import pytest

from repro.dram.commands import Command
from repro.dram.subchannel import SubChannel
from repro.mc.controller import MemoryController, SubChannelController
from repro.mc.policy import MitigationPolicy


class RecordingPolicy(MitigationPolicy):
    """Test double: records hooks, optionally requests sampling."""

    name = "recording"

    def __init__(self, sample_rows=()):
        super().__init__()
        self.sample_rows = set(sample_rows)
        self.activations = []
        self.sampled = []

    def before_activate(self, bank, row, now_ps):
        self.activations.append((bank, row, now_ps))
        return row in self.sample_rows

    def on_sampled(self, bank, row, now_ps):
        self.sampled.append((bank, row, now_ps))


@pytest.fixture
def controller(timing, organization):
    subchannel = SubChannel(0, timing, organization.banks,
                            organization.banks_per_group)
    return SubChannelController(subchannel, timing, None)


class TestServicePath:
    def test_row_miss_then_hit(self, controller, timing):
        first = controller.service(0, 5, 0)
        assert first >= timing.t_rcd + timing.t_cl
        bank = controller.subchannel.banks[0]
        assert bank.open_row == 5
        second = controller.service(0, 5, first)
        assert bank.stats.row_hits == 1
        assert second > first

    def test_row_conflict_precharges(self, controller):
        controller.service(0, 5, 0)
        finish = controller.service(0, 6, 10 ** 6)
        bank = controller.subchannel.banks[0]
        assert bank.stats.row_conflicts == 1
        assert bank.open_row == 6
        assert finish > 10 ** 6

    def test_conflict_costs_more_than_hit(self, controller):
        controller.service(0, 5, 0)
        t0 = 10 ** 6
        hit = controller.service(0, 5, t0) - t0
        t1 = 2 * 10 ** 6
        conflict = controller.service(0, 6, t1) - t1
        assert conflict > hit

    def test_refresh_advances_lazily(self, controller, timing):
        controller.service(0, 5, timing.t_refi + 1)
        assert controller.subchannel.stats.refreshes == 1


class TestPolicyHooks:
    def test_hook_only_on_activation(self, timing, organization):
        policy = RecordingPolicy()
        subchannel = SubChannel(0, timing, organization.banks,
                                organization.banks_per_group)
        controller = SubChannelController(subchannel, timing, policy)
        finish = controller.service(0, 5, 0)
        controller.service(0, 5, finish)  # row hit: no hook
        assert len(policy.activations) == 1

    def test_sampling_closes_row_and_notifies(self, timing, organization):
        policy = RecordingPolicy(sample_rows={5})
        subchannel = SubChannel(0, timing, organization.banks,
                                organization.banks_per_group)
        controller = SubChannelController(subchannel, timing, policy)
        controller.service(0, 5, 0)
        bank = subchannel.banks[0]
        assert bank.open_row is None  # Pre+Sample closed it
        assert bank.dar.row == 5
        assert policy.sampled and policy.sampled[0][:2] == (0, 5)


class TestPagePolicies:
    def test_closed_page_precharges_after_access(self, timing,
                                                 organization):
        from repro.mc.page_policy import PagePolicy
        from repro.dram.subchannel import SubChannel

        subchannel = SubChannel(0, timing, organization.banks,
                                organization.banks_per_group)
        controller = SubChannelController(subchannel, timing, None,
                                          page_policy=PagePolicy.CLOSED)
        controller.service(0, 5, 0)
        bank = subchannel.banks[0]
        assert bank.open_row is None
        assert bank.stats.precharges == 1

    def test_closed_page_never_hits(self, timing, organization):
        from repro.mc.page_policy import PagePolicy
        from repro.dram.subchannel import SubChannel

        subchannel = SubChannel(0, timing, organization.banks,
                                organization.banks_per_group)
        controller = SubChannelController(subchannel, timing, None,
                                          page_policy=PagePolicy.CLOSED)
        finish = controller.service(0, 5, 0)
        controller.service(0, 5, finish + 10 ** 6)
        bank = subchannel.banks[0]
        assert bank.stats.row_hits == 0
        assert bank.stats.activations == 2

    def test_policy_descriptions(self):
        from repro.mc.page_policy import PagePolicy, describe

        assert "open" in describe(PagePolicy.OPEN)
        assert "closed" in describe(PagePolicy.CLOSED)
        assert PagePolicy.CLOSED.closes_after_access
        assert not PagePolicy.OPEN.closes_after_access


class TestMitigationPort:
    def test_explicit_sample_populates_dar(self, controller, timing):
        done = controller.explicit_sample(3, 77, 0)
        bank = controller.subchannel.banks[3]
        assert bank.dar.row == 77
        assert bank.open_row is None
        assert done >= timing.t_rc  # ACT + tRAS + PRE

    def test_explicit_sample_closes_conflicting_row(self, controller):
        controller.service(3, 5, 0)
        controller.explicit_sample(3, 77, 10 ** 6)
        assert controller.subchannel.banks[3].dar.row == 77

    def test_issue_routes_to_subchannel(self, controller):
        event = controller.issue(Command.NRR, 2, 0, row=9)
        assert event.mitigated_rows == ((2, 9),)

    def test_block_bank(self, controller):
        controller.block_bank(4, 10 ** 6)
        assert controller.subchannel.banks[4].busy_until_ps == 10 ** 6

    def test_dar_accessor(self, controller):
        assert controller.dar(0) is controller.subchannel.banks[0].dar


class TestMemoryController:
    def test_routes_by_subchannel(self, timing, organization):
        mc = MemoryController(organization, timing)
        mc.service(0, 1, 5, 0)
        mc.service(1, 2, 6, 0)
        assert mc.device.subchannel(0).banks[1].stats.activations == 1
        assert mc.device.subchannel(1).banks[2].stats.activations == 1

    def test_policy_per_subchannel(self, timing, organization):
        created = []

        def factory(context):
            policy = RecordingPolicy()
            created.append((context.subchannel, policy))
            return policy

        mc = MemoryController(organization, timing, factory, seed=1)
        assert [index for index, _ in created] == [0, 1]
        assert len(mc.policies) == 2

    def test_aggregate_stats(self, timing, organization):
        mc = MemoryController(organization, timing)
        finish = mc.service(0, 0, 5, 0)
        mc.service(0, 0, 5, finish)
        mc.service(0, 0, 6, 2 * finish + 10 ** 6)
        assert mc.total_activations() == 2
        assert mc.total_row_hits() == 1
        assert mc.total_row_conflicts() == 1
        assert mc.bus_busy_ps() == 3 * timing.t_bus
