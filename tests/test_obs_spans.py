"""Span tracer units and the cross-mode span-tree determinism contract.

The tentpole guarantee mirrors ``test_obs_parallel.py``: the
**normalized** span tree (wall-clock stripped, execution-side spans
spliced, execution-side events dropped) is byte-identical whether a
sweep ran serially, over ``--jobs N`` workers, from a warm cache, or
across an interrupt + ``--resume`` — and ``RunResult.to_json()`` never
changes with span tracing on or off.
"""

import json

import pytest

from repro.exec import runtime as exec_runtime
from repro.exec.cache import RunCache
from repro.exec.executor import SweepExecutor
from repro.exec.resilience import SweepCheckpoint
from repro.experiments.common import DesignSpec, sweep_designs
from repro.mc.mitigation import coupled_para_factory
from repro.mc.policy import no_mitigation_factory
from repro.obs import Telemetry
from repro.obs import runtime as obs_runtime
from repro.obs.spans import (KIND_CELL, KIND_SWEEP, SpanTracer,
                             normalized_tree, span_from_doc, span_to_doc)
from repro.workloads.builder import clear_cache
from repro.workloads.profiles import profiles_for


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture
def workloads():
    return profiles_for(names=["mcf"])


@pytest.fixture
def designs():
    return [DesignSpec("none", no_mitigation_factory()),
            DesignSpec("para", coupled_para_factory(2000))]


#: Cells in the sweep: shared baseline + one per design.
CELLS = 3


# ----------------------------------------------------------------------
# Tracer units
# ----------------------------------------------------------------------
class TestSpanTracer:
    def test_nesting_follows_the_open_stack(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == \
            ["inner", "sibling"]
        assert tracer.current() is None
        assert tracer.span_count() == 3

    def test_siblings_never_overlap_and_parent_covers_children(self):
        tracer = SpanTracer()
        with tracer.span("parent") as parent:
            first = tracer.begin("first")
            tracer.end(first)
            second = tracer.begin("second")
            tracer.end(second)
        assert second.t0_s >= first.t1_s
        assert parent.t1_s >= second.t1_s
        assert parent.t0_s <= first.t0_s

    def test_event_lands_on_innermost_open_span(self):
        tracer = SpanTracer()
        assert tracer.event("orphan") is None
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.event("hit", meta={"fingerprint": "abc"})
        assert outer.events == []
        assert [event["name"] for event in inner.events] == ["hit"]
        assert inner.events[0]["exec"] is True

    def test_end_tolerates_out_of_order_close(self):
        tracer = SpanTracer()
        outer = tracer.begin("outer")
        tracer.begin("inner")
        # Closing the outer span pops the dangling inner one too.
        tracer.end(outer)
        assert tracer.current() is None
        assert outer.t1_s is not None

    def test_graft_rebases_block_and_never_mutates_source(self):
        worker = SpanTracer()
        with worker.span("attempt", exec_side=True):
            with worker.span("build_traces"):
                pass
        docs = worker.to_docs()
        frozen = json.dumps(docs, sort_keys=True)

        parent = SpanTracer()
        cell = parent.begin("mcf/none", kind=KIND_CELL)
        grafted = parent.graft_docs(docs)
        parent.end(cell)
        # Source documents stay replayable (cache sidecars are shared).
        assert json.dumps(docs, sort_keys=True) == frozen
        assert [span.name for span in grafted] == ["attempt"]
        attempt = cell.children[0]
        assert attempt.t0_s >= cell.t0_s
        child = attempt.children[0]
        # Internal offsets preserved under the rebase.
        source = span_from_doc(docs[0])
        assert child.t0_s - attempt.t0_s == pytest.approx(
            source.children[0].t0_s - source.t0_s)

    def test_graft_skips_undecodable_documents(self):
        tracer = SpanTracer()
        good = span_to_doc(SpanTracer().begin("ok"))
        good["t1_s"] = good["t0_s"]
        assert tracer.graft_docs([{"bogus": 1}, good, 17]) != []
        assert [root.name for root in tracer.roots] == ["ok"]

    def test_doc_round_trip(self):
        tracer = SpanTracer()
        with tracer.span("outer", kind=KIND_SWEEP, meta={"cells": 2}):
            tracer.event("note", meta={"k": "v"}, exec_side=False)
        doc = span_to_doc(tracer.roots[0])
        rebuilt = span_from_doc(json.loads(json.dumps(doc)))
        assert span_to_doc(rebuilt) == doc

    @pytest.mark.parametrize("mutilate", [
        lambda doc: doc.pop("name"),
        lambda doc: doc.update(t0_s="soon"),
        lambda doc: doc.update(children=[{"name": 3}]),
        lambda doc: doc.update(events=[{"no_name": True}]),
    ])
    def test_from_doc_rejects_structural_damage(self, mutilate):
        doc = span_to_doc(SpanTracer().begin("x"))
        mutilate(doc)
        assert span_from_doc(doc) is None

    def test_normalized_tree_splices_exec_spans_and_events(self):
        tracer = SpanTracer()
        with tracer.span("cell", kind=KIND_CELL, meta={"index": 0}):
            tracer.event("cache_hit")  # exec event: dropped
            with tracer.span("attempt", exec_side=True,
                             meta={"pid": 1234}):
                with tracer.span("run:para"):
                    tracer.event("landmark", exec_side=False)
        normalized = normalized_tree(tracer.roots)
        assert normalized == [{
            "name": "cell", "kind": KIND_CELL, "meta": {"index": 0},
            "events": [],
            "children": [{
                "name": "run:para", "kind": "phase", "meta": {},
                "events": [{"name": "landmark", "meta": {}}],
                "children": [],
            }],
        }]


# ----------------------------------------------------------------------
# Cross-mode determinism
# ----------------------------------------------------------------------
def _traced(designs, small_system, small_sim, workloads, executor=None):
    """One instrumented sweep; returns (normalized-JSON, telemetry)."""
    telemetry = Telemetry(journal_memory=True, spans=True)
    with obs_runtime.activated(telemetry), \
            exec_runtime.activated(executor):
        sweep_designs(designs, small_system, small_sim,
                      workloads=workloads)
    tree = normalized_tree(telemetry.spans.roots)
    return json.dumps(tree, sort_keys=True), telemetry


class TestSpanTreeByteIdenticalAcrossModes:
    def test_parallel_and_cached_match_serial(self, tmp_path,
                                              small_system, small_sim,
                                              designs, workloads):
        serial, serial_telemetry = _traced(designs, small_system,
                                           small_sim, workloads)
        with SweepExecutor(jobs=2) as pooled:
            parallel, _ = _traced(designs, small_system, small_sim,
                                  workloads, pooled)
        cache_dir = tmp_path / "runcache"
        with SweepExecutor(cache=RunCache(cache_dir)) as cold_exec:
            cold, _ = _traced(designs, small_system, small_sim,
                              workloads, cold_exec)
        with SweepExecutor(cache=RunCache(cache_dir)) as warm_exec:
            warm, warm_telemetry = _traced(designs, small_system,
                                           small_sim, workloads,
                                           warm_exec)
        assert warm_exec.stats.computed == 0
        assert parallel == serial
        assert cold == serial
        assert warm == serial
        # The sweep has exactly one sweep root with one span per cell.
        roots = serial_telemetry.spans.roots
        assert [root.kind for root in roots] == [KIND_SWEEP]
        cells = [span for span in roots[0].walk()
                 if span.kind == KIND_CELL]
        assert len(cells) == CELLS
        # A warm sweep records its cache hits as span events.
        warm_events = [event["name"]
                       for root in warm_telemetry.spans.roots
                       for span in root.walk()
                       for event in span.events]
        assert warm_events.count("cache_hit") + \
            warm_events.count("memo_hit") == CELLS

    def test_resume_matches_serial(self, tmp_path, small_system,
                                   small_sim, designs, workloads):
        serial, _ = _traced(designs, small_system, small_sim, workloads)
        cache = RunCache(tmp_path / "runcache")
        checkpoint = SweepCheckpoint(cache.checkpoint_path())
        with SweepExecutor(cache=cache,
                           checkpoint=checkpoint) as cold_exec:
            _traced(designs, small_system, small_sim, workloads,
                    cold_exec)
        resume_cache = RunCache(tmp_path / "runcache")
        resume_checkpoint = SweepCheckpoint(
            resume_cache.checkpoint_path(), resume=True)
        with SweepExecutor(cache=resume_cache,
                           checkpoint=resume_checkpoint) as resumed_exec:
            resumed, _ = _traced(designs, small_system, small_sim,
                                 workloads, resumed_exec)
        assert resumed_exec.stats.resumed == CELLS
        assert resumed == serial

    def test_run_result_json_unchanged_by_spans(self, small_system,
                                                small_sim, designs,
                                                workloads):
        def results(telemetry):
            from repro.experiments.common import sweep_cells
            cells = sweep_cells(designs, small_system, small_sim,
                                workloads)
            with obs_runtime.activated(telemetry):
                with SweepExecutor(jobs=2) as executor:
                    return [result.to_json()
                            for result in executor.run_cells(cells)]

        plain = results(None)
        traced = results(Telemetry(journal_memory=True, spans=True))
        assert traced == plain

    def test_spans_off_records_nothing(self, small_system, small_sim,
                                       designs, workloads):
        telemetry = Telemetry(journal_memory=True)
        assert telemetry.spans is None
        with obs_runtime.activated(telemetry):
            sweep_designs(designs, small_system, small_sim,
                          workloads=workloads)
        doc = telemetry.spans_doc()
        assert doc["spans"] == []
