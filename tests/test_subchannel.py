"""Unit tests for the sub-channel: bus, REF, DRFM execution, RLP."""

import pytest

from repro.dram.commands import Command
from repro.dram.timing import ns


def _sample(subchannel, bank, row, now=0):
    """Helper: put ``row`` into ``bank``'s DAR via ACT + Pre+Sample."""
    target = subchannel.banks[bank]
    if target.open_row is not None:
        target.precharge(now)
    target.activate(row, now)
    return target.precharge(now, sample=True)


class TestBus:
    def test_burst_occupancy(self, subchannel, timing):
        done = subchannel.reserve_bus(0)
        assert done == timing.t_bus

    def test_bursts_serialize(self, subchannel, timing):
        subchannel.reserve_bus(0)
        done = subchannel.reserve_bus(0)
        assert done == 2 * timing.t_bus

    def test_busy_time_accounted(self, subchannel, timing):
        subchannel.reserve_bus(0)
        subchannel.reserve_bus(0)
        assert subchannel.stats.bus_busy_ps == 2 * timing.t_bus


class TestRefresh:
    def test_blocks_all_banks(self, subchannel, timing):
        until = subchannel.refresh(ns(100))
        assert until == ns(100) + timing.t_rfc
        assert all(bank.busy_until_ps >= until
                   for bank in subchannel.banks)

    def test_closes_open_rows(self, subchannel):
        subchannel.banks[3].activate(9, 0)
        subchannel.refresh(ns(100))
        assert subchannel.banks[3].open_row is None

    def test_counts_refreshes(self, subchannel):
        subchannel.refresh(0)
        subchannel.refresh(ns(3900))
        assert subchannel.stats.refreshes == 2


class TestDRFMsb:
    def test_mitigates_valid_dars_in_group(self, subchannel):
        _sample(subchannel, 1, 100)
        _sample(subchannel, 5, 200)   # same position (1 mod 4)
        _sample(subchannel, 2, 300)   # different position
        event = subchannel.issue_mitigation(Command.DRFM_SB, 1, ns(1000))
        assert event.rlp == 2
        assert (1, 100) in event.mitigated_rows
        assert (5, 200) in event.mitigated_rows
        # Bank 2 (different position) keeps its DAR.
        assert subchannel.banks[2].dar.valid

    def test_blocks_eight_banks(self, subchannel, timing):
        event = subchannel.issue_mitigation(Command.DRFM_SB, 1, ns(1000))
        assert event.blocked_banks == 8
        until = ns(1000) + timing.t_drfm_sb
        for bank in (1, 5, 9, 13, 17, 21, 25, 29):
            assert subchannel.banks[bank].busy_until_ps >= until
        assert subchannel.banks[0].busy_until_ps == 0

    def test_invalidates_dars(self, subchannel):
        _sample(subchannel, 1, 100)
        subchannel.issue_mitigation(Command.DRFM_SB, 1, ns(1000))
        assert not subchannel.banks[1].dar.valid


class TestDRFMab:
    def test_mitigates_all_valid_dars(self, subchannel):
        for bank in range(32):
            _sample(subchannel, bank, 1000 + bank)
        event = subchannel.issue_mitigation(Command.DRFM_AB, 0, ns(5000))
        assert event.rlp == 32
        assert event.blocked_banks == 32

    def test_blocks_longer_than_sb(self, subchannel, timing):
        event_sb = subchannel.issue_mitigation(Command.DRFM_SB, 0, 0)
        event_ab = subchannel.issue_mitigation(Command.DRFM_AB, 0, 0)
        assert timing.t_drfm_ab > timing.t_drfm_sb
        assert event_ab.blocked_banks > event_sb.blocked_banks


class TestNRR:
    def test_mitigates_explicit_row(self, subchannel):
        event = subchannel.issue_mitigation(Command.NRR, 3, 0, row=77)
        assert event.mitigated_rows == ((3, 77),)
        assert event.blocked_banks == 1

    def test_requires_row(self, subchannel):
        with pytest.raises(ValueError, match="explicit row"):
            subchannel.issue_mitigation(Command.NRR, 3, 0)

    def test_does_not_touch_dar(self, subchannel):
        _sample(subchannel, 3, 50)
        subchannel.issue_mitigation(Command.NRR, 3, ns(1000), row=77)
        assert subchannel.banks[3].dar.valid

    def test_blocks_single_bank_only(self, subchannel, timing):
        subchannel.issue_mitigation(Command.NRR, 3, 0, row=1)
        assert subchannel.banks[3].busy_until_ps >= timing.t_nrr
        assert subchannel.banks[4].busy_until_ps == 0


class TestRLPAccounting:
    def test_average_rlp(self, subchannel):
        _sample(subchannel, 0, 10)
        subchannel.issue_mitigation(Command.DRFM_SB, 0, ns(1000))
        _sample(subchannel, 0, 11, now=ns(2000))
        _sample(subchannel, 4, 12, now=ns(2000))
        subchannel.issue_mitigation(Command.DRFM_SB, 0, ns(3000))
        assert subchannel.rlp_commands == 2
        assert subchannel.rlp_total == 3
        assert subchannel.average_rlp == pytest.approx(1.5)

    def test_empty_average(self, subchannel):
        assert subchannel.average_rlp == 0.0

    def test_mitigation_log_recorded(self, subchannel):
        subchannel.issue_mitigation(Command.NRR, 0, 0, row=5)
        assert len(subchannel.mitigation_log) == 1

    def test_valid_dar_count(self, subchannel):
        assert subchannel.valid_dar_count() == 0
        _sample(subchannel, 0, 10)
        _sample(subchannel, 7, 11)
        assert subchannel.valid_dar_count() == 2

    def test_bankgroup_of(self, subchannel):
        assert subchannel.bankgroup_of(0) == 0
        assert subchannel.bankgroup_of(7) == 1
        assert subchannel.bankgroup_of(31) == 7


def test_invalid_bank_group_shape(timing):
    from repro.dram.subchannel import SubChannel
    with pytest.raises(ValueError, match="multiple"):
        SubChannel(0, timing, num_banks=30, banks_per_group=4)
