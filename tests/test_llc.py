"""Unit tests for the shared LLC substrate."""

import pytest

from repro.cpu.llc import SetAssociativeCache


class TestShape:
    def test_baseline_sets(self):
        cache = SetAssociativeCache()
        assert cache.capacity_bytes == 8 * 1024 * 1024
        assert cache.num_sets == 8 * 1024 * 1024 // (16 * 64)

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=1000, ways=16)


class TestHitMiss:
    def test_first_access_misses(self):
        cache = SetAssociativeCache(size_bytes=64 * 16 * 4, ways=4)
        assert cache.access(0) is False
        assert cache.access(0) is True

    def test_stats(self):
        cache = SetAssociativeCache(size_bytes=64 * 16 * 4, ways=4)
        cache.access(0)
        cache.access(0)
        cache.access(1)
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_contains_does_not_touch_lru(self):
        cache = SetAssociativeCache(size_bytes=64 * 2 * 1, ways=2)
        sets = cache.num_sets
        cache.access(0)
        cache.access(sets)       # same set, second way
        assert cache.contains(0)
        cache.access(2 * sets)   # evicts LRU = line 0
        assert not cache.contains(0)


class TestLRUEviction:
    def test_evicts_least_recent(self):
        cache = SetAssociativeCache(size_bytes=64 * 2, ways=2)
        assert cache.num_sets == 1
        cache.access(0)
        cache.access(1)
        cache.access(0)          # refresh 0; 1 is now LRU
        cache.access(2)          # evict 1
        assert cache.contains(0)
        assert not cache.contains(1)
        assert cache.stats.evictions == 1


class TestFiltering:
    def test_filter_misses(self):
        cache = SetAssociativeCache(size_bytes=64 * 16, ways=16)
        trace = [0, 1, 0, 2, 1, 3]
        assert cache.filter_misses(trace) == [0, 1, 2, 3]

    def test_mpki(self):
        cache = SetAssociativeCache(size_bytes=64 * 16, ways=16)
        cache.filter_misses([0, 1, 0, 1])
        assert cache.stats.mpki(1000) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            cache.stats.mpki(0)
