"""Stateful (rule-based) property tests for the core state machines.

Hypothesis drives random command sequences against the bank state
machine, the RMAQ and the disturbance model, checking the invariants
that every policy in the repository silently relies on.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.core.rmaq import RATE_LIMIT_TREFI, RecentMitigationQueue
from repro.dram.bank import Bank
from repro.dram.disturbance import DisturbanceConfig, DisturbanceModel
from repro.dram.timing import DDR5Timing


class BankMachine(RuleBasedStateMachine):
    """Random but legal command sequences against one bank."""

    def __init__(self):
        super().__init__()
        self.timing = DDR5Timing.scaled(64)
        self.bank = Bank(0, self.timing)
        self.now = 0
        self.acts = 0
        self.last_act_start = -1

    def _advance(self, by):
        self.now = max(self.now, self.bank.busy_until_ps) + by

    @precondition(lambda self: self.bank.open_row is None)
    @rule(row=st.integers(min_value=0, max_value=127),
          gap=st.integers(min_value=0, max_value=100_000))
    def activate(self, row, gap):
        self._advance(gap)
        ready = self.bank.activate(row, self.now)
        assert ready >= self.now
        # tRC between consecutive ACT starts.
        start = ready - self.timing.t_rcd
        if self.last_act_start >= 0:
            assert start - self.last_act_start >= self.timing.t_rc
        self.last_act_start = start
        self.acts += 1

    @precondition(lambda self: self.bank.open_row is not None)
    @rule(sample=st.booleans(),
          gap=st.integers(min_value=0, max_value=100_000))
    def precharge(self, sample, gap):
        self._advance(gap)
        row = self.bank.open_row
        done = self.bank.precharge(self.now, sample=sample)
        assert done >= self.now
        assert self.bank.open_row is None
        if sample:
            assert self.bank.dar.row == row

    @rule(duration=st.integers(min_value=0, max_value=500_000))
    def block(self, duration):
        before = self.bank.busy_until_ps
        self.bank.block_until(self.now + duration)
        assert self.bank.busy_until_ps >= before

    @rule()
    def mitigate(self):
        dar_row = self.bank.dar.row
        mitigated = self.bank.execute_mitigation(self.now + 240_000)
        assert mitigated == dar_row
        assert not self.bank.dar.valid

    @invariant()
    def busy_never_regresses(self):
        assert self.bank.busy_until_ps >= 0

    @invariant()
    def stats_consistent(self):
        assert self.bank.stats.activations == self.acts
        assert self.bank.stats.samples <= self.bank.stats.precharges


class RmaqMachine(RuleBasedStateMachine):
    """Random inserts/queries against the rate-limit queue."""

    TREFI = 3_900_000

    def __init__(self):
        super().__init__()
        self.queue = RecentMitigationQueue(4, self.TREFI)
        self.now = 0
        self.inserted_at: dict[int, int] = {}

    @rule(advance=st.integers(min_value=0, max_value=10_000_000))
    def tick(self, advance):
        self.now += advance

    @rule(address=st.integers(min_value=0, max_value=9))
    def insert(self, address):
        self.queue.insert(address, self.now)
        self.inserted_at[address] = self.now

    @rule(address=st.integers(min_value=0, max_value=9))
    def query(self, address):
        hit = self.queue.contains(address, self.now)
        if hit:
            # A hit implies the address was inserted within the horizon.
            last = self.inserted_at.get(address)
            assert last is not None
            assert (self.now // self.TREFI) - (last // self.TREFI) \
                <= RATE_LIMIT_TREFI

    @invariant()
    def capacity_respected(self):
        assert len(self.queue) <= self.queue.capacity


class DisturbanceMachine(RuleBasedStateMachine):
    """Random hammering/refreshing against the disturbance model."""

    def __init__(self):
        super().__init__()
        self.model = DisturbanceModel(DisturbanceConfig(t_rh=50),
                                      rows_per_bank=64, seed=1)
        self.time = 0

    @rule(row=st.integers(min_value=0, max_value=63))
    def hammer(self, row):
        self.time += 1
        self.model.on_activation(0, row, self.time)

    @rule(row=st.integers(min_value=0, max_value=63))
    def mitigate(self, row):
        self.time += 1
        self.model.on_mitigation(0, row, self.time)

    @rule(first=st.integers(min_value=0, max_value=56))
    def refresh_slice(self, first):
        self.model.on_periodic_refresh(0, first, 8)
        for row in range(first, min(first + 8, 64)):
            assert self.model.charge(0, row) == 0.0

    @invariant()
    def charge_below_flip_threshold(self):
        # Counting restarts at each flip, so live charge stays bounded.
        assert self.model.max_charge() < 50

    @invariant()
    def charge_never_negative(self):
        assert all(value >= 0.0
                   for value in self.model._charge.values())


TestBankMachine = BankMachine.TestCase
TestBankMachine.settings = settings(max_examples=30,
                                    stateful_step_count=40,
                                    deadline=None)

TestRmaqMachine = RmaqMachine.TestCase
TestRmaqMachine.settings = settings(max_examples=40,
                                    stateful_step_count=40,
                                    deadline=None)

TestDisturbanceMachine = DisturbanceMachine.TestCase
TestDisturbanceMachine.settings = settings(max_examples=30,
                                           stateful_step_count=50,
                                           deadline=None)
