"""Unit tests for the deployment planner/validator."""

import pytest

from repro.core.deployment import (Design, DeploymentPlan, Finding,
                                   Severity, plan_deployment,
                                   validate_deployment)


class TestDreamCValidation:
    def test_table6_point_is_clean(self):
        plan = validate_deployment(Design.DREAM_C, 500)
        assert plan.ok
        assert plan.parameters["gang_size"] == 128
        assert plan.sram_bytes_per_bank == pytest.approx(1024.0, rel=0.01)

    def test_below_base_threshold_errors(self):
        plan = validate_deployment(Design.DREAM_C, 100)
        assert not plan.ok
        assert any("Table 6" in f.message for f in plan.findings)

    def test_deep_vertical_sharing_warns(self):
        plan = validate_deployment(Design.DREAM_C, 2000)
        assert plan.ok  # warning, not error
        assert any("back-to-back" in f.message for f in plan.findings)

    def test_missing_rate_limit_warns(self):
        plan = validate_deployment(Design.DREAM_C, 500,
                                   rate_limited=False)
        assert any("RMAQ" in f.message for f in plan.findings)


class TestMintValidation:
    def test_paper_point(self):
        plan = validate_deployment(Design.DREAM_R_MINT, 2000)
        assert plan.ok
        assert plan.parameters["window"] == 99
        assert plan.parameters["rmaq_entries"] >= 2
        # ATM (~3 bytes) + RMAQ (~5 bytes).
        assert 3 <= plan.sram_bytes_per_bank <= 16

    def test_small_window_penalty_warned(self):
        plan = validate_deployment(Design.DREAM_R_MINT, 500)
        assert any("tolerated threshold" in f.message
                   for f in plan.findings)

    def test_too_low_threshold_errors(self):
        plan = validate_deployment(Design.DREAM_R_MINT, 25)
        assert not plan.ok

    def test_low_threshold_suggests_dream_c(self):
        plan = validate_deployment(Design.DREAM_R_MINT, 400)
        assert any("DREAM-C" in f.message for f in plan.findings)


class TestParaValidation:
    def test_paper_point(self):
        plan = validate_deployment(Design.DREAM_R_PARA, 2000)
        assert plan.ok
        assert plan.parameters["probability"] == pytest.approx(
            20 / 1990)

    def test_recommends_mint(self):
        plan = validate_deployment(Design.DREAM_R_PARA, 2000)
        assert any("MINT" in f.message for f in plan.findings)

    def test_impossible_threshold_errors(self):
        plan = validate_deployment(Design.DREAM_R_PARA, 12)
        assert not plan.ok


class TestPlanner:
    def test_high_threshold_gets_dream_r(self):
        plan = plan_deployment(2000, slowdown_budget_percent=5.0)
        assert plan.design is Design.DREAM_R_MINT
        assert plan.ok

    def test_tight_budget_gets_dream_c(self):
        plan = plan_deployment(500, slowdown_budget_percent=3.0)
        assert plan.design is Design.DREAM_C
        assert plan.ok

    def test_generous_budget_keeps_dream_r_at_500(self):
        plan = plan_deployment(500, slowdown_budget_percent=10.0)
        assert plan.design is Design.DREAM_R_MINT

    def test_describe_renders(self):
        text = plan_deployment(1000).describe()
        assert "design:" in text
        assert "SRAM per bank" in text


class TestPlanBasics:
    def test_negative_threshold(self):
        plan = validate_deployment(Design.DREAM_C, 0)
        assert not plan.ok

    def test_finding_severities(self):
        plan = DeploymentPlan(Design.DREAM_C, 500)
        plan.findings.append(Finding(Severity.WARNING, "w"))
        assert plan.ok
        plan.findings.append(Finding(Severity.ERROR, "e"))
        assert not plan.ok
