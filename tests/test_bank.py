"""Unit tests for the bank state machine and the DAR register."""

import pytest

from repro.dram.bank import Bank, DARRegister
from repro.dram.timing import DDR5Timing, ns


@pytest.fixture
def bank(timing):
    return Bank(0, timing)


class TestDARRegister:
    def test_starts_invalid(self):
        dar = DARRegister()
        assert not dar.valid

    def test_write_and_invalidate(self):
        dar = DARRegister()
        dar.write(42, 1000)
        assert dar.valid
        assert dar.row == 42
        assert dar.sampled_at_ps == 1000
        assert dar.invalidate() == 42
        assert not dar.valid

    def test_invalidate_empty_returns_none(self):
        assert DARRegister().invalidate() is None

    def test_overwrite(self):
        dar = DARRegister()
        dar.write(1, 10)
        dar.write(2, 20)
        assert dar.row == 2
        assert dar.sampled_at_ps == 20


class TestActivate:
    def test_activate_opens_row(self, bank):
        ready = bank.activate(7, 0)
        assert bank.open_row == 7
        assert ready == bank.timing.t_rcd
        assert bank.stats.activations == 1

    def test_activate_while_open_raises(self, bank):
        bank.activate(7, 0)
        with pytest.raises(RuntimeError, match="while row"):
            bank.activate(8, 100_000)

    def test_trc_enforced_between_activations(self, bank, timing):
        bank.activate(1, 0)
        bank.precharge(timing.t_rcd)
        ready = bank.activate(2, 0)
        # The second ACT cannot start before tRC after the first.
        assert ready >= timing.t_rc + timing.t_rcd

    def test_activate_waits_for_blocking(self, bank, timing):
        bank.block_until(ns(1000))
        ready = bank.activate(3, 0)
        assert ready == ns(1000) + timing.t_rcd


class TestPrecharge:
    def test_closes_row(self, bank):
        bank.activate(5, 0)
        bank.precharge(ns(100))
        assert bank.open_row is None
        assert bank.stats.precharges == 1

    def test_tras_enforced(self, bank, timing):
        bank.activate(5, 0)
        done = bank.precharge(0)
        # PRE cannot start before tRAS after the ACT; ends a full tRC
        # after the activation started.
        assert done >= timing.t_rc

    def test_sample_writes_dar(self, bank):
        bank.activate(5, 0)
        bank.precharge(ns(100), sample=True)
        assert bank.dar.valid
        assert bank.dar.row == 5
        assert bank.stats.samples == 1

    def test_sample_without_open_row_raises(self, bank):
        with pytest.raises(RuntimeError, match="no open row"):
            bank.precharge(0, sample=True)

    def test_plain_precharge_leaves_dar(self, bank):
        bank.activate(5, 0)
        bank.precharge(ns(100))
        assert not bank.dar.valid


class TestMitigation:
    def test_mitigates_dar_row(self, bank):
        bank.activate(9, 0)
        bank.precharge(ns(100), sample=True)
        row = bank.execute_mitigation(ns(500))
        assert row == 9
        assert not bank.dar.valid
        assert bank.stats.mitigated_rows == 1
        assert bank.busy_until_ps >= ns(500)

    def test_invalid_dar_still_blocks(self, bank):
        row = bank.execute_mitigation(ns(500))
        assert row is None
        assert bank.stats.mitigated_rows == 0
        assert bank.busy_until_ps >= ns(500)


class TestBlocking:
    def test_block_extends_only_forward(self, bank):
        bank.block_until(ns(100))
        bank.block_until(ns(50))
        assert bank.busy_until_ps == ns(100)

    def test_blocked_time_accumulates(self, bank):
        bank.block_until(ns(100))
        bank.block_until(ns(300))
        assert bank.stats.blocked_time_ps == ns(300)

    def test_ready_at(self, bank):
        bank.block_until(ns(100))
        assert bank.ready_at(0) == ns(100)
        assert bank.ready_at(ns(200)) == ns(200)


def test_describe_mentions_state(bank):
    bank.activate(4, 0)
    text = bank.describe()
    assert "row=4" in text
    assert "DAR=invalid" in text
