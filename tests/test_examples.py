"""Sanity checks over the example scripts.

The examples are exercised for real by running them (they are plain
scripts); here we keep cheap guarantees: every example compiles, has a
module docstring with a "Run:" line, defines ``main``, and the fastest
one actually executes end to end.
"""

import ast
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    names = {script.name for script in SCRIPTS}
    assert {"quickstart.py", "mitigation_comparison.py",
            "attack_analysis.py", "storage_explorer.py",
            "trace_pipeline.py", "bitflip_demo.py"} <= names


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda s: s.name)
def test_example_structure(script):
    tree = ast.parse(script.read_text())
    docstring = ast.get_docstring(tree)
    assert docstring, f"{script.name} needs a module docstring"
    assert "Run:" in docstring, f"{script.name} should say how to run it"
    functions = {node.name for node in ast.walk(tree)
                 if isinstance(node, ast.FunctionDef)}
    assert "main" in functions

    has_guard = any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body)
    assert has_guard, f"{script.name} needs an __main__ guard"


def test_storage_explorer_runs_end_to_end():
    # The fastest example (pure analytics) runs as a subprocess.
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "storage_explorer.py")],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    assert "DREAM-C configurations" in result.stdout
    assert "8.0x" in result.stdout or "7.9x" in result.stdout
