"""Property tests over the analytic security models."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.security import (gamma_tail, mint_window_dream_r,
                                 mint_window_with_atm,
                                 para_probability_dream_r,
                                 para_probability_with_atm,
                                 rmaq_threshold_penalty)
from repro.trackers.mint import window_for_threshold
from repro.trackers.para import probability_for_threshold

THRESHOLDS = st.integers(min_value=100, max_value=100_000)


class TestMonotonicity:
    @given(t_rh=THRESHOLDS)
    def test_para_probability_decreases_with_threshold(self, t_rh):
        assert probability_for_threshold(t_rh) > \
            probability_for_threshold(t_rh + 100)

    @given(t_rh=THRESHOLDS)
    def test_dream_r_always_needs_more_mitigations(self, t_rh):
        assert para_probability_dream_r(t_rh) > \
            probability_for_threshold(t_rh)

    @given(t_rh=st.integers(min_value=1000, max_value=100_000))
    def test_atm_sits_between_coupled_and_revised(self, t_rh):
        coupled = probability_for_threshold(t_rh)
        with_atm = para_probability_with_atm(t_rh)
        revised = para_probability_dream_r(t_rh)
        assert coupled <= with_atm <= revised

    @given(t_rh=st.integers(min_value=1000, max_value=100_000))
    def test_mint_windows_ordered(self, t_rh):
        assert mint_window_dream_r(t_rh) <= \
            mint_window_with_atm(t_rh) <= window_for_threshold(t_rh)


class TestGammaTail:
    @given(p=st.floats(min_value=1e-4, max_value=0.5, allow_nan=False),
           t=st.floats(min_value=1.0, max_value=10_000.0,
                       allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_gamma_tail_dominates_exponential(self, p, t):
        # The delayed-DRFM failure probability is never below the
        # coupled one: (1 + pT) e^{-pT} >= e^{-pT}.
        assert gamma_tail(p, t) >= math.exp(-p * t)

    @given(p=st.floats(min_value=1e-4, max_value=0.1, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_gamma_tail_is_probability(self, p):
        for t in (1.0, 10.0, 100.0, 10_000.0):
            value = gamma_tail(p, t)
            assert 0.0 <= value <= 1.0 + 1e-12


class TestRmaqPenalty:
    @given(window=st.integers(min_value=1, max_value=500))
    def test_penalty_nonnegative_and_bounded(self, window):
        penalty = rmaq_threshold_penalty(window)
        # The attacker's extra exposure cannot exceed 150 single-sided
        # activations (= 75 double-sided).
        assert 0 <= penalty <= 75

    @given(window=st.integers(min_value=43, max_value=1000))
    def test_penalty_vanishes_for_large_windows(self, window):
        assert rmaq_threshold_penalty(window) == 0
