"""Shared fixtures for the test suite.

Tests run against scaled-down systems (short refresh windows, small
request budgets) so the whole suite stays fast; full-size configurations
are exercised by dedicated shape/storage tests that never run the
simulator at full length.
"""

from __future__ import annotations

import pytest

from repro.dram.device import Organization
from repro.dram.subchannel import SubChannel
from repro.dram.timing import DDR5Timing
from repro.mc.policy import PolicyContext
from repro.sim.config import SimConfig, SystemConfig


@pytest.fixture
def timing() -> DDR5Timing:
    """Scaled timing: JEDEC per-command values, 64-REF window."""
    return DDR5Timing.scaled(64)


@pytest.fixture
def organization() -> Organization:
    """Organization matched to the 64-REF window (1024 rows/bank)."""
    return Organization.scaled(64)


@pytest.fixture
def subchannel(timing: DDR5Timing,
               organization: Organization) -> SubChannel:
    """A fresh 32-bank sub-channel with mitigation logging on."""
    return SubChannel(0, timing, organization.banks,
                      organization.banks_per_group,
                      record_mitigations=True)


@pytest.fixture
def context(timing: DDR5Timing,
            organization: Organization) -> PolicyContext:
    """Policy context for the scaled sub-channel."""
    return PolicyContext(
        subchannel=0,
        num_banks=organization.banks,
        banks_per_group=organization.banks_per_group,
        rows_per_bank=organization.rows_per_bank,
        timing=timing,
        seed=42,
    )


@pytest.fixture
def small_system() -> SystemConfig:
    """A 2-core system for fast integration runs."""
    base = SystemConfig.baseline(refs_per_window=64, num_cores=2)
    return base


@pytest.fixture
def small_sim() -> SimConfig:
    """A small request budget for fast integration runs."""
    return SimConfig(requests_per_core=1_500, seed=7)
