"""Cheap structural tests for the experiment design lists.

Each experiment module exposes a ``designs()`` helper; these tests pin
down the configurations without running any simulation, so a renamed
design or a dropped threshold breaks loudly and fast.
"""

import pytest

from repro.dram.commands import Command
from repro.dram.timing import ns
from repro.experiments import (fig5, fig9, fig10, fig15, fig17, fig19,
                               fig22, fig23, table5)


class TestFig5:
    def test_six_designs(self):
        specs = fig5.designs()
        assert len(specs) == 6
        names = {spec.name for spec in specs}
        assert names == {"para-nrr", "para-drfmsb", "para-drfmab",
                         "mint-nrr", "mint-drfmsb", "mint-drfmab"}

    def test_threshold(self):
        assert fig5.T_RH == 2000

    def test_factories_build(self, context):
        for spec in fig5.designs():
            policy = spec.factory(context)
            assert policy.name  # constructs cleanly


class TestFig9:
    def test_replaces_drfmab_with_dream_r(self):
        names = {spec.name for spec in fig9.designs()}
        assert "para-dream-r" in names
        assert "mint-dream-r" in names
        assert "para-drfmab" not in names

    def test_paper_averages_recorded(self):
        assert fig9.PAPER_AVERAGES["mint-dream-r"] == 2.1


class TestFig10:
    def test_two_trackers_per_threshold(self):
        specs = fig10.designs()
        assert len(specs) == 2 * len(fig10.THRESHOLDS)

    def test_thresholds(self):
        assert fig10.THRESHOLDS == (500, 1000, 2000, 4000)


class TestFig15:
    def test_one_assoc_three_rand(self):
        names = [spec.name for spec in fig15.designs()]
        assert names.count("dream-c-assoc-500") == 1
        assert sum(1 for name in names if "rand" in name) == 3


class TestFig17:
    def test_designs_and_storage(self):
        names = {spec.name for spec in fig17.designs()}
        assert names == {"abacus", "dream-c", "dream-c-2x"}
        storage = {row["design"]: row["kb_per_bank"]
                   for row in fig17.storage_rows()}
        assert storage["dream-c-2x"] == pytest.approx(
            2 * storage["dream-c"])
        assert storage["abacus"] / storage["dream-c"] == pytest.approx(
            6.33, rel=0.05)


class TestFig19:
    def test_prac_designs_get_prac_system(self):
        specs = fig19.designs((500, 1000), refs_per_window=32)
        prac = [spec for spec in specs if "prac" in spec.name]
        other = [spec for spec in specs if "prac" not in spec.name]
        assert all(spec.system is not None
                   and spec.system.timing.t_rp == ns(36)
                   for spec in prac)
        assert all(spec.system is None for spec in other)

    def test_three_designs_per_threshold(self):
        specs = fig19.designs((500, 1000, 2000, 4000), 32)
        assert len(specs) == 12


class TestFig22:
    def test_sixteen_cores(self):
        assert fig22.CORES == 16

    def test_pairs_per_threshold(self):
        specs = fig22.designs()
        assert len(specs) == 2 * len(fig22.THRESHOLDS)
        assert any("2x" in spec.name for spec in specs)


class TestFig23:
    def test_three_designs(self):
        specs = fig23.designs(refs_per_window=32)
        assert {spec.name for spec in specs} == \
            {"prac-moat", "mint-dream-r", "dream-c"}

    def test_threshold(self):
        assert fig23.T_RH == 500


class TestTable5:
    def test_four_configurations(self):
        names = {spec.name for spec in table5.designs()}
        assert names == {"para-drfmsb", "mint-drfmsb", "para-dream-r",
                         "mint-dream-r"}

    def test_paper_rlp_reference(self):
        assert table5.PAPER_RLP["mint-dream-r"] == 7.55


class TestCommandsUsed:
    def test_fig5_uses_all_three_interfaces(self, context):
        commands = set()
        for spec in fig5.designs():
            policy = spec.factory(context)
            commands.add(policy.command)
        assert commands == {Command.NRR, Command.DRFM_SB, Command.DRFM_AB}
