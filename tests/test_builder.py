"""Unit tests for trace building and bandwidth calibration."""

import pytest

from repro.sim.config import SimConfig, SystemConfig
from repro.sim.runner import run_simulation
from repro.workloads.builder import (build_traces, calibrate_gap_ps,
                                     clear_cache)
from repro.workloads.profiles import profile


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture
def system():
    return SystemConfig.baseline(refs_per_window=64, num_cores=2)


class TestBuildTraces:
    def test_one_trace_per_core(self, system):
        sim = SimConfig(requests_per_core=500, seed=1)
        traces = build_traces("blender", system, sim, calibrate=False)
        assert len(traces) == system.num_cores
        assert all(len(trace) == 500 for trace in traces)

    def test_accepts_profile_object(self, system):
        sim = SimConfig(requests_per_core=200, seed=1)
        traces = build_traces(profile("mcf"), system, sim, calibrate=False)
        assert traces[0].name == "mcf"

    def test_cache_returns_same_objects(self, system):
        sim = SimConfig(requests_per_core=200, seed=1)
        first = build_traces("mcf", system, sim, calibrate=False)
        second = build_traces("mcf", system, sim, calibrate=False)
        assert first is second

    def test_cache_distinguishes_seeds(self, system):
        first = build_traces("mcf", system,
                             SimConfig(requests_per_core=200, seed=1),
                             calibrate=False)
        second = build_traces("mcf", system,
                              SimConfig(requests_per_core=200, seed=2),
                              calibrate=False)
        assert first is not second

    def test_cache_bounded(self, system):
        from repro.workloads import builder
        sim = SimConfig(requests_per_core=100, seed=1)
        for name in ("mcf", "add", "blender", "tc", "cc"):
            build_traces(name, system, sim, calibrate=False)
        assert len(builder._cache) <= builder._CACHE_CAPACITY


class TestCalibration:
    def test_calibrated_bw_near_target(self, system):
        # Mid-intensity workload: the one-step correction should land the
        # realised utilisation within a few points of the target.
        sim = SimConfig(requests_per_core=4000, seed=3)
        traces = build_traces("roms", system, sim)
        result = run_simulation(system, traces, sim)
        target = profile("roms").bw_util
        assert result.bus_utilization == pytest.approx(target, abs=0.12)

    def test_calibration_orders_workloads(self, system):
        light = calibrate_gap_ps(profile("blender"), system, seed=3)
        heavy = calibrate_gap_ps(profile("add"), system, seed=3)
        assert light > heavy

    def test_gap_nonnegative(self, system):
        assert calibrate_gap_ps(profile("tc"), system, seed=3) >= 0
