"""Unit tests for the lazy REF scheduler."""

from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import ns


class TestAdvance:
    def test_no_ref_before_first_trefi(self, subchannel, timing):
        scheduler = RefreshScheduler(timing, subchannel)
        scheduler.advance(timing.t_refi - 1)
        assert subchannel.stats.refreshes == 0

    def test_one_ref_per_trefi(self, subchannel, timing):
        scheduler = RefreshScheduler(timing, subchannel)
        scheduler.advance(timing.t_refi * 5)
        assert subchannel.stats.refreshes == 5
        assert scheduler.ref_index == 5

    def test_catches_up_in_one_call(self, subchannel, timing):
        scheduler = RefreshScheduler(timing, subchannel)
        scheduler.advance(timing.t_refi * 3 + ns(100))
        scheduler.advance(timing.t_refi * 3 + ns(200))
        assert subchannel.stats.refreshes == 3

    def test_banks_blocked_for_trfc(self, subchannel, timing):
        scheduler = RefreshScheduler(timing, subchannel)
        scheduler.advance(timing.t_refi)
        expected = timing.t_refi + timing.t_rfc
        assert all(bank.busy_until_ps >= expected
                   for bank in subchannel.banks)


class TestCallbacks:
    def test_called_per_ref_with_index_and_time(self, subchannel, timing):
        scheduler = RefreshScheduler(timing, subchannel)
        seen = []
        scheduler.on_ref(lambda index, time: seen.append((index, time)))
        scheduler.advance(timing.t_refi * 2)
        assert seen == [(0, timing.t_refi), (1, 2 * timing.t_refi)]

    def test_multiple_callbacks(self, subchannel, timing):
        scheduler = RefreshScheduler(timing, subchannel)
        counts = [0, 0]
        scheduler.on_ref(lambda i, t: counts.__setitem__(0, counts[0] + 1))
        scheduler.on_ref(lambda i, t: counts.__setitem__(1, counts[1] + 1))
        scheduler.advance(timing.t_refi)
        assert counts == [1, 1]


class TestWindowBookkeeping:
    def test_window_position_wraps(self, subchannel, timing):
        scheduler = RefreshScheduler(timing, subchannel)
        scheduler.advance(timing.t_refw + timing.t_refi * 3)
        assert scheduler.windows_completed == 1
        assert scheduler.window_position == 3

    def test_rows_per_ref(self, subchannel, timing):
        scheduler = RefreshScheduler(timing, subchannel)
        assert scheduler.rows_per_ref(1024) == 1024 // 64
        assert scheduler.rows_per_ref(1) == 1
