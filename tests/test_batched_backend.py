"""The batched columnar engine backend (:mod:`repro.sim.batched`).

Byte-identity against :func:`~repro.sim.runner.run_simulation_reference`
is pinned by ``test_engine_identity.py``; this module covers the batch
machinery itself — multi-cell batches, per-member fault isolation
(``collect_errors``), telemetry routing, edge-shaped cells — and the
batching planner (:func:`~repro.experiments.common.plan_backends`).
"""

import pytest

from tests import golden_engine
from repro.exec.executor import Cell, cell_fingerprint
from repro.mc.mitigation import coupled_mint_factory
from repro.mc.policy import PolicyStats
from repro.obs import Telemetry
from repro.sim.batched import (BatchCellError, BatchItem, run_batch,
                               run_simulation_batched)
from repro.sim.config import SimConfig, SystemConfig
from repro.sim.runner import run_simulation_reference
from repro.workloads.builder import build_traces
from repro.workloads.profiles import profile

from repro.experiments.common import (AUTO_BATCH_MIN, MAX_BATCH_CELLS,
                                      plan_backends)


def _grid_items(system):
    """The golden 16-cell grid as (label, BatchItem) pairs."""
    items = []
    for workload in golden_engine.WORKLOADS:
        for design, factory in golden_engine.designs().items():
            for seed in golden_engine.SEEDS:
                sim = SimConfig(
                    requests_per_core=golden_engine.REQUESTS_PER_CORE,
                    seed=seed)
                traces = build_traces(workload, system, sim,
                                      calibrate=False)
                items.append((f"{workload}/{design}/seed{seed}",
                              BatchItem(traces=traces, sim=sim,
                                        policy_factory=factory,
                                        policy_name=design)))
    return items


class TestRunBatch:
    def test_grid_batch_matches_reference(self):
        """All 16 golden cells in ONE batch == 16 reference runs."""
        system = golden_engine._system()
        labelled = _grid_items(system)
        results = run_batch(system, [item for _, item in labelled])
        assert len(results) == len(labelled)
        for (label, item), result in zip(labelled, results):
            reference = run_simulation_reference(
                system, item.traces, item.sim, item.policy_factory,
                item.policy_name)
            assert result.to_json() == reference.to_json(), label

    def test_single_item_batch(self):
        system = golden_engine._system()
        sim = SimConfig(requests_per_core=400, seed=3)
        traces = build_traces("mcf", system, sim, calibrate=False)
        [result] = run_batch(system, [BatchItem(traces=traces, sim=sim)])
        reference = run_simulation_reference(system, traces, sim, None,
                                             "none")
        assert result.to_json() == reference.to_json()

    def test_empty_batch(self):
        assert run_batch(golden_engine._system(), []) == []

    def test_budget_below_mlp(self):
        """Fewer requests than MLP slots: slots beyond the budget stay
        idle and the result still matches the reference."""
        system = golden_engine._system()
        sim = SimConfig(requests_per_core=2, seed=5)
        traces = build_traces("mcf", system, sim, calibrate=False)
        [result] = run_batch(system, [BatchItem(traces=traces, sim=sim)])
        reference = run_simulation_reference(system, traces, sim, None,
                                             "none")
        assert result.to_json() == reference.to_json()

    def test_mixed_seeds_share_one_engine(self):
        """Members with different budgets/seeds coexist in one batch."""
        system = golden_engine._system()
        items = []
        for seed, budget in ((1, 300), (2, 500), (3, 700)):
            sim = SimConfig(requests_per_core=budget, seed=seed)
            traces = build_traces("lbm", system, sim, calibrate=False)
            items.append(BatchItem(traces=traces, sim=sim))
        results = run_batch(system, items)
        for item, result in zip(items, results):
            reference = run_simulation_reference(system, item.traces,
                                                 item.sim, None, "none")
            assert result.to_json() == reference.to_json()


class _ExplodingPolicy:
    """Detonates after ``fuse`` activations (escape-path crash)."""

    def __init__(self, fuse: int) -> None:
        self.fuse = fuse
        self.telemetry = None
        self.stats = PolicyStats()

    def bind(self, port) -> None:
        self.port = port

    def before_activate(self, bank, row, now_ps) -> bool:
        self.fuse -= 1
        if self.fuse <= 0:
            raise RuntimeError("policy exploded")
        return False

    def on_sampled(self, bank, row, now_ps) -> None:  # pragma: no cover
        pass

    def summary(self) -> dict:  # pragma: no cover
        return {}


class TestFaultIsolation:
    def _items(self, system):
        sim = SimConfig(requests_per_core=400, seed=9)
        items = []
        for seed in (1, 2, 3):
            cell_sim = SimConfig(requests_per_core=400, seed=seed)
            traces = build_traces("mcf", system, cell_sim,
                                  calibrate=False)
            items.append(BatchItem(traces=traces, sim=cell_sim))
        traces = build_traces("mcf", system, sim, calibrate=False)
        items.insert(1, BatchItem(
            traces=traces, sim=sim,
            policy_factory=lambda context: _ExplodingPolicy(fuse=5),
            policy_name="exploding"))
        return items

    def test_collect_errors_isolates_the_loser(self):
        system = golden_engine._system()
        items = self._items(system)
        results = run_batch(system, items, collect_errors=True)
        assert isinstance(results[1], BatchCellError)
        assert results[1].index == 1
        assert "policy exploded" in results[1].message
        for position in (0, 2, 3):
            reference = run_simulation_reference(
                system, items[position].traces, items[position].sim,
                None, "none")
            assert results[position].to_json() == reference.to_json()

    def test_default_reraises_original_exception(self):
        system = golden_engine._system()
        with pytest.raises(RuntimeError, match="policy exploded"):
            run_batch(system, self._items(system))

    def test_batch_cell_error_pickles_without_cause(self):
        import pickle
        error = BatchCellError(3, "RuntimeError: boom")
        error.cause = RuntimeError("boom")
        clone = pickle.loads(pickle.dumps(error))
        assert (clone.index, clone.message) == (3, "RuntimeError: boom")
        assert clone.cause is None


class TestTelemetryRouting:
    def test_instrumented_member_matches_scalar(self):
        """A telemetry-carrying member routes through the scalar engine
        and produces the scalar journal/metrics byte-for-byte."""
        import json
        system = golden_engine._system()
        workload, design, seed = golden_engine.JOURNAL_CELL
        sim = SimConfig(requests_per_core=golden_engine.REQUESTS_PER_CORE,
                        seed=seed)
        traces = build_traces(workload, system, sim, calibrate=False)
        factory = golden_engine.designs()[design]
        outputs = []
        for _ in range(2):
            telemetry = Telemetry(journal_memory=True,
                                  sample_every_refi=4)
            result = run_simulation_batched(system, traces, sim, factory,
                                            design, telemetry=telemetry)
            lines = [json.dumps(record, sort_keys=True)
                     for record in telemetry.journal.records]
            outputs.append((result.to_json(), lines,
                            telemetry.snapshot()["metrics"]))
        assert outputs[0] == outputs[1]
        _, golden_lines, golden_metrics = golden_engine.load_goldens()
        assert outputs[0][1] == golden_lines
        assert outputs[0][2] == golden_metrics

    def test_mixed_batch_instrumented_and_plain(self):
        system = golden_engine._system()
        sim = SimConfig(requests_per_core=400, seed=4)
        traces = build_traces("mcf", system, sim, calibrate=False)
        telemetry = Telemetry(journal_memory=True)
        results = run_batch(system, [
            BatchItem(traces=traces, sim=sim, telemetry=telemetry),
            BatchItem(traces=traces, sim=sim),
        ])
        reference = run_simulation_reference(system, traces, sim, None,
                                             "none")
        assert results[0].to_json() == reference.to_json()
        assert results[1].to_json() == reference.to_json()
        assert telemetry.journal.records  # only member 0 recorded


class TestMultiChannelRejected:
    def test_channels_must_be_one(self):
        from dataclasses import replace
        system = golden_engine._system()
        multi = replace(system, organization=replace(
            system.organization, channels=2))
        sim = SimConfig(requests_per_core=100, seed=1)
        traces = build_traces("mcf", system, sim, calibrate=False)
        with pytest.raises(NotImplementedError, match="one channel"):
            run_batch(multi, [BatchItem(traces=traces, sim=sim)])


def _planner_cells(count, policy=None, policy_name="none", system=None):
    system = system or golden_engine._system()
    cells = []
    for seed in range(count):
        sim = SimConfig(requests_per_core=100, seed=seed)
        cells.append(Cell(workload=profile("mcf"), trace_system=system,
                          run_system=system, sim=sim, policy=policy,
                          policy_name=policy_name))
    return cells


class TestPlanner:
    def test_scalar_plans_nothing(self):
        plan = plan_backends(_planner_cells(8), "scalar")
        assert plan.groups == ()
        assert set(plan.backends) == {"scalar"}
        assert plan.batched_cells == 0

    def test_batched_groups_compatible_cells(self):
        cells = _planner_cells(6)
        plan = plan_backends(cells, "batched")
        assert plan.batched_cells == 6
        assert set(plan.backends) == {"batched"}
        assert sorted(i for g in plan.groups for i in g) == list(range(6))

    def test_batched_includes_policy_cells(self):
        cells = _planner_cells(3, policy=coupled_mint_factory(500),
                               policy_name="mint")
        plan = plan_backends(cells, "batched")
        assert plan.batched_cells == 3

    def test_auto_excludes_policy_cells(self):
        cells = _planner_cells(6) + _planner_cells(
            6, policy=coupled_mint_factory(500), policy_name="mint")
        plan = plan_backends(cells, "auto")
        assert plan.batched_cells == 6
        assert all(plan.backends[i] == "scalar" for i in range(6, 12))

    def test_auto_needs_minimum_group(self):
        plan = plan_backends(_planner_cells(AUTO_BATCH_MIN - 1), "auto")
        assert plan.batched_cells == 0
        plan = plan_backends(_planner_cells(AUTO_BATCH_MIN), "auto")
        assert plan.batched_cells == AUTO_BATCH_MIN

    def test_groups_split_by_run_system(self):
        base = golden_engine._system()
        other = SystemConfig.baseline(refs_per_window=32, num_cores=4)
        cells = _planner_cells(4, system=base) + \
            _planner_cells(4, system=other)
        plan = plan_backends(cells, "batched")
        assert len(plan.groups) == 2
        assert plan.batched_cells == 8

    def test_groups_capped_at_max_batch(self):
        cells = _planner_cells(5)
        plan = plan_backends(cells, "batched", max_batch=2)
        assert [len(group) for group in plan.groups] == [2, 2, 1]
        assert MAX_BATCH_CELLS >= 2  # the default cap is sane

    def test_unfingerprintable_cells_stay_scalar(self):
        cells = _planner_cells(4, policy=lambda context: None,
                               policy_name="closure")
        plan = plan_backends(cells, "batched")
        assert plan.batched_cells == 0

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            plan_backends(_planner_cells(2), "gpu")


class TestBackendFingerprint:
    def test_batched_fingerprint_differs_from_scalar(self):
        [cell] = _planner_cells(1)
        scalar = cell_fingerprint(cell)
        batched = cell_fingerprint(cell, backend="batched")
        assert scalar is not None and batched is not None
        assert scalar != batched

    def test_scalar_fingerprint_is_historical(self):
        """``backend="scalar"`` must not perturb existing cache keys."""
        [cell] = _planner_cells(1)
        assert cell_fingerprint(cell) == \
            cell_fingerprint(cell, backend="scalar")
