"""Unit tests for the PARA tracker components."""

import math

import numpy as np
import pytest

from repro.trackers.para import (MTTF_EXPONENT, ParaSampler,
                                 epoch_failure_probability,
                                 probability_for_threshold,
                                 threshold_for_probability)


class TestParameterDerivation:
    def test_paper_operating_point(self):
        # T_RH = 2000 -> p = 1/100 (Appendix A).
        assert probability_for_threshold(2000) == pytest.approx(1 / 100)

    def test_scaling(self):
        assert probability_for_threshold(1000) == pytest.approx(1 / 50)
        assert probability_for_threshold(4000) == pytest.approx(1 / 200)

    def test_inverse(self):
        p = probability_for_threshold(2000)
        assert threshold_for_probability(p) == pytest.approx(2000)

    def test_rejects_tiny_threshold(self):
        with pytest.raises(ValueError):
            probability_for_threshold(10)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            threshold_for_probability(0.0)

    def test_failure_probability_at_design_point(self):
        p = probability_for_threshold(2000)
        assert epoch_failure_probability(2000, p) == pytest.approx(
            math.exp(-MTTF_EXPONENT))


class TestSampler:
    def test_selection_rate(self):
        sampler = ParaSampler(0.1, np.random.default_rng(1))
        selections = sum(sampler.select() for _ in range(20_000))
        assert selections == pytest.approx(2000, rel=0.1)
        assert sampler.trials == 20_000
        assert sampler.selections == selections

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            ParaSampler(0.0, np.random.default_rng(1))
        with pytest.raises(ValueError):
            ParaSampler(1.5, np.random.default_rng(1))

    def test_deterministic_for_seed(self):
        a = ParaSampler(0.05, np.random.default_rng(9))
        b = ParaSampler(0.05, np.random.default_rng(9))
        assert [a.select() for _ in range(100)] == \
            [b.select() for _ in range(100)]


class TestInterSelectionDistances:
    def test_exponential_shape(self):
        # For IID selection, std ~ mean (geometric distribution).
        sampler = ParaSampler(1 / 100, np.random.default_rng(2))
        distances = sampler.inter_selection_distances(500_000)
        assert np.mean(distances) == pytest.approx(100, rel=0.1)
        assert np.std(distances) == pytest.approx(np.mean(distances),
                                                  rel=0.15)

    def test_many_short_gaps(self):
        # ~39% of exponential gaps fall below half the mean.
        sampler = ParaSampler(1 / 100, np.random.default_rng(2))
        distances = sampler.inter_selection_distances(500_000)
        short = np.mean(distances < 50)
        assert 0.3 < short < 0.5

    def test_too_few_selections(self):
        sampler = ParaSampler(1 / 100, np.random.default_rng(2))
        assert len(sampler.inter_selection_distances(10)) == 0
