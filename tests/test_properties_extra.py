"""Additional property-based tests: scheduler, traces, charts, storage."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.charts import bar_chart
from repro.core.storage import dream_c_config
from repro.dram.address import MOPMapper
from repro.dram.device import Organization
from repro.dram.subchannel import SubChannel
from repro.dram.timing import DDR5Timing
from repro.mc.controller import SubChannelController
from repro.mc.scheduler import (QueuedRequest, QueuedScheduler,
                                SchedulingPolicy)
from repro.trackers.graphene import storage_kb_per_bank
from repro.workloads.trace import MemoryTrace

_TIMING = DDR5Timing.scaled(64)
_ORG = Organization.scaled(64)


def _scheduler(policy):
    subchannel = SubChannel(0, _TIMING, _ORG.banks, _ORG.banks_per_group)
    controller = SubChannelController(subchannel, _TIMING, None)
    return QueuedScheduler(controller, policy)


class TestSchedulerProperties:
    @given(requests=st.lists(
        st.tuples(st.integers(min_value=0, max_value=10 ** 6),
                  st.integers(min_value=0, max_value=7),
                  st.integers(min_value=0, max_value=63)),
        min_size=1, max_size=60),
        policy=st.sampled_from(list(SchedulingPolicy)))
    @settings(max_examples=40, deadline=None)
    def test_work_conservation(self, requests, policy):
        # Every enqueued request is issued exactly once, with a finish
        # time no earlier than its arrival.
        scheduler = _scheduler(policy)
        for arrival, bank, row in requests:
            scheduler.enqueue(QueuedRequest(arrival_ps=arrival, bank=bank,
                                            row=row))
        finished = scheduler.run()
        assert len(finished) == len(requests)
        assert not scheduler.queue
        for request in finished:
            assert request.finish_ps >= request.arrival_ps
            assert request.issued_ps >= request.arrival_ps

    @given(requests=st.lists(
        st.tuples(st.integers(min_value=0, max_value=10 ** 5),
                  st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=15)),
        min_size=2, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_frfcfs_never_slower_on_average_latency_total(self, requests):
        # FR-FCFS reorders only to hit open rows; aggregate service work
        # can only shrink (fewer ACT/PRE), so total latency never
        # explodes versus FCFS beyond the reorder-window effect.
        totals = {}
        for policy in SchedulingPolicy:
            scheduler = _scheduler(policy)
            for arrival, bank, row in requests:
                scheduler.enqueue(QueuedRequest(arrival_ps=arrival,
                                                bank=bank, row=row))
            scheduler.run()
            totals[policy] = scheduler.stats.total_latency_ps
        assert totals[SchedulingPolicy.FR_FCFS] <= \
            totals[SchedulingPolicy.FCFS] * 1.6 + 10 ** 6


class TestTraceProperties:
    @given(lines=st.lists(st.integers(min_value=0, max_value=10 ** 7),
                          min_size=1, max_size=200),
           gap=st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_from_lines_always_in_range(self, lines, gap):
        mapper = MOPMapper(_ORG)
        array = np.asarray(lines, dtype=np.int64) % mapper.total_lines
        trace = MemoryTrace.from_lines(
            "p", array, np.full(len(lines), gap, dtype=np.int64), mapper)
        assert trace.subchannel.max() < _ORG.subchannels
        assert trace.bank.max() < _ORG.banks
        assert trace.row.max() < _ORG.rows_per_bank
        assert (trace.gap_ps == gap).all()


class TestChartProperties:
    @given(values=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_bars_bounded_by_width(self, values):
        items = [(f"v{i}", value) for i, value in enumerate(values)]
        text = bar_chart(items, width=30)
        for line in text.splitlines():
            assert line.count("#") <= 30
        assert len(text.splitlines()) == len(items)


class TestStorageProperties:
    @given(t_rh=st.sampled_from([125, 250, 500, 1000, 2000, 4000]))
    def test_dream_c_storage_monotone_in_threshold(self, t_rh):
        config = dream_c_config(t_rh)
        if t_rh > 125:
            smaller = dream_c_config(t_rh // 2)
            assert config.sram_kb_per_bank() <= \
                smaller.sram_kb_per_bank()
        assert config.gang_size == 32 * config.drfms_per_mitigation

    @given(t_rh=st.sampled_from([125, 250, 500, 1000, 2000]))
    def test_graphene_storage_monotone(self, t_rh):
        assert storage_kb_per_bank(t_rh) >= storage_kb_per_bank(2 * t_rh)
