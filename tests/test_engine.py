"""Unit tests for the discrete-event queue."""

import pytest

from repro.sim.engine import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(30, "c")
        queue.push(10, "a")
        queue.push(20, "b")
        assert [queue.pop() for _ in range(3)] == [
            (10, "a"), (20, "b"), (30, "c")]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        queue.push(10, "first")
        queue.push(10, "second")
        queue.push(10, "third")
        assert [payload for _, payload in queue.drain()] == [
            "first", "second", "third"]

    def test_now_tracks_pops(self):
        queue = EventQueue()
        queue.push(100, None)
        queue.pop()
        assert queue.now_ps == 100


class TestSafety:
    def test_rejects_scheduling_in_past(self):
        queue = EventQueue()
        queue.push(100, None)
        queue.pop()
        with pytest.raises(ValueError, match="cannot schedule"):
            queue.push(50, None)

    def test_allows_scheduling_at_now(self):
        queue = EventQueue()
        queue.push(100, "a")
        queue.pop()
        queue.push(100, "b")
        assert queue.pop() == (100, "b")

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()


class TestIntrospection:
    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        queue.push(1, None)
        assert queue
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(42, None)
        assert queue.peek_time() == 42

    def test_drain_consumes_everything(self):
        queue = EventQueue()
        for t in (3, 1, 2):
            queue.push(t, t)
        assert [t for t, _ in queue.drain()] == [1, 2, 3]
        assert not queue
