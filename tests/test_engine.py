"""Unit tests for the discrete-event queue.

Beyond the basic API, these pin the ordering contract the optimized
``run_simulation`` loop inlines (bare-list heap + module-level heapq +
monotone sequence tie-break): the golden-ordering fixtures replay
recorded event sequences and assert the exact service order, and the
protocol-equivalence test drives the inlined idiom side by side with
``EventQueue`` itself.
"""

from heapq import heappop, heappush

import pytest

from repro.sim.engine import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(30, "c")
        queue.push(10, "a")
        queue.push(20, "b")
        assert [queue.pop() for _ in range(3)] == [
            (10, "a"), (20, "b"), (30, "c")]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        queue.push(10, "first")
        queue.push(10, "second")
        queue.push(10, "third")
        assert [payload for _, payload in queue.drain()] == [
            "first", "second", "third"]

    def test_now_tracks_pops(self):
        queue = EventQueue()
        queue.push(100, None)
        queue.pop()
        assert queue.now_ps == 100


class TestSafety:
    def test_rejects_scheduling_in_past(self):
        queue = EventQueue()
        queue.push(100, None)
        queue.pop()
        with pytest.raises(ValueError, match="cannot schedule"):
            queue.push(50, None)

    def test_allows_scheduling_at_now(self):
        queue = EventQueue()
        queue.push(100, "a")
        queue.pop()
        queue.push(100, "b")
        assert queue.pop() == (100, "b")

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()


class TestIntrospection:
    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        queue.push(1, None)
        assert queue
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(42, None)
        assert queue.peek_time() == 42

    def test_drain_consumes_everything(self):
        queue = EventQueue()
        for t in (3, 1, 2):
            queue.push(t, t)
        assert [t for t, _ in queue.drain()] == [1, 2, 3]
        assert not queue


#: A recorded closed-loop schedule: ("push", time, payload) entries
#: interleaved with ("pop",) service points, exactly the shape the
#: engine loop produces (pops re-arm pushes at later times).  Ties at
#: t=40 and t=55 pin the FIFO tie-break.
GOLDEN_SCHEDULE = [
    ("push", 10, "c0s0"), ("push", 10, "c0s1"), ("push", 25, "c1s0"),
    ("pop",), ("push", 40, "c0s0'"),
    ("pop",), ("push", 40, "c0s1'"),
    ("push", 40, "c1s1"),
    ("pop",), ("push", 55, "c1s0'"),
    ("pop",), ("push", 55, "c0s0''"),
    ("pop",), ("push", 55, "c0s1''"),
    ("pop",), ("pop",), ("pop",), ("pop",),
]

#: The service order the schedule must produce, forever.
GOLDEN_ORDER = [
    (10, "c0s0"), (10, "c0s1"), (25, "c1s0"),
    (40, "c0s0'"), (40, "c0s1'"), (40, "c1s1"),
    (55, "c1s0'"), (55, "c0s0''"), (55, "c0s1''"),
]


class TestGoldenOrdering:
    def test_recorded_sequence_replays_identically(self):
        queue = EventQueue()
        popped = []
        for step in GOLDEN_SCHEDULE:
            if step[0] == "push":
                queue.push(step[1], step[2])
            else:
                popped.append(queue.pop())
        assert popped == GOLDEN_ORDER
        assert not queue

    def test_inlined_bare_heap_matches_event_queue(self):
        """The run_simulation idiom — heappush/heappop on ``.heap``
        with a manual sequence counter — must order identically to the
        push/pop API for the same schedule."""
        queue = EventQueue()
        heap = queue.heap
        sequence = 0
        popped = []
        for step in GOLDEN_SCHEDULE:
            if step[0] == "push":
                heappush(heap, (step[1], sequence, step[2]))
                sequence += 1
            else:
                time_ps, _, payload = heappop(heap)
                popped.append((time_ps, payload))
        assert popped == GOLDEN_ORDER

    def test_interleaved_pushes_preserve_global_fifo(self):
        """Payloads pushed at one timestamp across separate bursts pop
        in overall push order, not per-burst order."""
        queue = EventQueue()
        queue.push(7, "a")
        queue.push(9, "x")
        queue.push(7, "b")
        assert queue.pop() == (7, "a")
        queue.push(9, "y")
        queue.push(7, "c")
        assert [payload for _, payload in queue.drain()] == [
            "b", "c", "x", "y"]
