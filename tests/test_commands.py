"""Unit tests for the DRAM command vocabulary and blocking footprints."""

import pytest

from repro.dram.commands import (MITIGATING, ROW_CLOSING, Command,
                                 IssuedCommand, blocking_banks)


class TestCommandSets:
    def test_row_closing(self):
        assert Command.PRE in ROW_CLOSING
        assert Command.PRE_SAMPLE in ROW_CLOSING
        assert Command.ACT not in ROW_CLOSING

    def test_mitigating(self):
        assert MITIGATING == {Command.DRFM_SB, Command.DRFM_AB, Command.NRR}

    def test_str_rendering(self):
        assert str(Command.PRE_SAMPLE) == "PRE+S"
        assert str(Command.DRFM_SB) == "DRFMsb"


class TestBlockingFootprints:
    def test_nrr_blocks_one_bank(self):
        assert blocking_banks(Command.NRR, 5) == (5,)

    def test_drfmsb_blocks_same_position_in_every_group(self):
        banks = blocking_banks(Command.DRFM_SB, 5, num_banks=32,
                               banks_per_group=4)
        assert len(banks) == 8
        assert all(bank % 4 == 1 for bank in banks)
        assert 5 in banks

    def test_drfmsb_position_zero(self):
        banks = blocking_banks(Command.DRFM_SB, 0)
        assert banks == (0, 4, 8, 12, 16, 20, 24, 28)

    def test_drfmab_blocks_all(self):
        assert blocking_banks(Command.DRFM_AB, 3) == tuple(range(32))

    def test_ref_blocks_all(self):
        assert blocking_banks(Command.REF, 0) == tuple(range(32))

    def test_non_blocking_command_raises(self):
        with pytest.raises(ValueError):
            blocking_banks(Command.ACT, 0)

    def test_footprint_sizes_match_paper(self):
        # NRR stalls 1 bank; DRFMsb 8; DRFMab 32 (Figure 1).
        assert len(blocking_banks(Command.NRR, 0)) == 1
        assert len(blocking_banks(Command.DRFM_SB, 0)) == 8
        assert len(blocking_banks(Command.DRFM_AB, 0)) == 32


class TestIssuedCommand:
    def test_describe_bank_scoped(self):
        issued = IssuedCommand(1000, Command.ACT, subchannel=1, bank=3,
                               row=17)
        assert issued.describe() == "1000ps ACT sc1.b3.r17"

    def test_describe_channel_scoped(self):
        issued = IssuedCommand(50, Command.REF, subchannel=0)
        assert issued.describe() == "50ps REF sc0"
