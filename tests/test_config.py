"""Unit tests for system/simulation configuration."""

import pytest

from repro.dram.timing import ns
from repro.sim.config import SimConfig, SystemConfig


class TestSystemConfig:
    def test_baseline_shape(self):
        system = SystemConfig.baseline()
        assert system.num_cores == 8
        assert system.organization.banks == 32
        assert system.timing.refs_per_window == 256
        assert system.organization.rows_per_bank == 4096

    def test_full_size(self):
        system = SystemConfig.full_size()
        assert system.timing.refs_per_window == 8192
        assert system.organization.rows_per_bank == 128 * 1024

    def test_prac_variant(self):
        system = SystemConfig.prac(64)
        assert system.timing.t_rp == ns(36)
        assert system.organization.rows_per_bank == 1024

    def test_with_cores(self):
        system = SystemConfig.baseline().with_cores(16)
        assert system.num_cores == 16
        assert system.organization.banks == 32

    def test_total_mlp(self):
        system = SystemConfig.baseline()
        assert system.total_mlp == system.num_cores * system.mlp_per_core

    def test_peak_rate(self):
        system = SystemConfig.baseline()
        expected = 2 / system.timing.t_bus
        assert system.peak_lines_per_ps == pytest.approx(expected)


class TestSimConfig:
    def test_defaults(self):
        sim = SimConfig()
        assert sim.requests_per_core > 0
        assert sim.seed == 12345

    def test_scaled(self):
        sim = SimConfig(requests_per_core=1000).scaled(0.5)
        assert sim.requests_per_core == 500

    def test_scaled_floors_at_one(self):
        sim = SimConfig(requests_per_core=10).scaled(0.001)
        assert sim.requests_per_core == 1
