"""Unit tests for trace persistence and external-trace import."""

import numpy as np
import pytest

from repro.dram.address import MOPMapper
from repro.sim.config import SimConfig, SystemConfig
from repro.workloads.io import (DEFAULT_TEXT_GAP_NS, load_npz, load_text,
                                save_npz, save_text)
from repro.workloads.synthetic import generate_trace
from repro.workloads.profiles import profile


@pytest.fixture
def trace():
    system = SystemConfig.baseline(refs_per_window=64)
    return generate_trace(profile("mcf"), system, 0, 500, seed=9)


@pytest.fixture
def mapper(organization):
    return MOPMapper(organization)


class TestNpzRoundTrip:
    def test_exact_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_npz(trace, path)
        loaded = load_npz(path)
        assert loaded.name == trace.name
        assert (loaded.subchannel == trace.subchannel).all()
        assert (loaded.bank == trace.bank).all()
        assert (loaded.row == trace.row).all()
        assert (loaded.gap_ps == trace.gap_ps).all()

    def test_loaded_trace_runs(self, trace, tmp_path, small_system):
        from repro.sim.runner import run_simulation

        path = tmp_path / "trace.npz"
        save_npz(trace, path)
        loaded = load_npz(path)
        sim = SimConfig(requests_per_core=200, seed=1)
        result = run_simulation(small_system, [loaded, loaded], sim)
        assert result.requests_completed == 400


class TestTextFormat:
    def test_parse_basic(self, tmp_path, mapper):
        path = tmp_path / "trace.txt"
        path.write_text("# comment\n64 10\n0x80\n\n192 5\n")
        trace = load_text(path, mapper)
        assert len(trace) == 3
        assert trace.gap_ps[0] == 10_000
        assert trace.gap_ps[1] == DEFAULT_TEXT_GAP_NS * 1000
        assert trace.name == "trace"

    def test_addresses_decoded_via_mop(self, tmp_path, mapper):
        path = tmp_path / "trace.txt"
        path.write_text("0\n4\n")
        trace = load_text(path, mapper)
        a = mapper.map_line(0)
        b = mapper.map_line(4)
        assert (trace.bank[0], trace.row[0]) == (a.bank, a.row)
        assert (trace.bank[1], trace.row[1]) == (b.bank, b.row)

    def test_wraps_large_addresses(self, tmp_path, mapper):
        path = tmp_path / "trace.txt"
        path.write_text(f"{mapper.total_lines + 5}\n")
        trace = load_text(path, mapper)
        expected = mapper.map_line(5)
        assert trace.row[0] == expected.row

    def test_custom_name(self, tmp_path, mapper):
        path = tmp_path / "trace.txt"
        path.write_text("0\n")
        assert load_text(path, mapper, name="custom").name == "custom"

    def test_rejects_garbage(self, tmp_path, mapper):
        path = tmp_path / "trace.txt"
        path.write_text("not-an-address\n")
        with pytest.raises(ValueError, match="bad address"):
            load_text(path, mapper)

    def test_rejects_negative(self, tmp_path, mapper):
        path = tmp_path / "trace.txt"
        path.write_text("-5\n")
        with pytest.raises(ValueError, match="non-negative"):
            load_text(path, mapper)

    def test_rejects_extra_fields(self, tmp_path, mapper):
        path = tmp_path / "trace.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError, match="expected"):
            load_text(path, mapper)

    def test_rejects_bad_gap(self, tmp_path, mapper):
        path = tmp_path / "trace.txt"
        path.write_text("1 xx\n")
        with pytest.raises(ValueError, match="bad gap"):
            load_text(path, mapper)

    def test_rejects_empty_file(self, tmp_path, mapper):
        path = tmp_path / "trace.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no requests"):
            load_text(path, mapper)


class TestTextRoundTrip:
    def test_coordinates_preserved(self, tmp_path, mapper, organization):
        system = SystemConfig.baseline(refs_per_window=64)
        original = generate_trace(profile("cc"), system, 0, 300, seed=4)
        path = tmp_path / "trace.txt"
        save_text(original, path, mapper)
        loaded = load_text(path, mapper)
        assert (loaded.subchannel == original.subchannel).all()
        assert (loaded.bank == original.bank).all()
        assert (loaded.row == original.row).all()
        # The text format is nanosecond-granular: gaps round down.
        assert (np.abs(loaded.gap_ps - original.gap_ps) < 1000).all()
