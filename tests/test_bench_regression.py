"""The benchmark-history ledger and the noise-aware regression gate."""

import json

import pytest

from repro.analysis.regression import (DEFAULT_THRESHOLD_PCT,
                                       HISTORY_SCHEMA_VERSION,
                                       append_history,
                                       baseline_from_history,
                                       check_metrics, collect_metrics,
                                       load_history, run_check)


def _figures(best, median):
    return {"best": float(best), "median": float(median)}


@pytest.fixture
def results_dir(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "BENCH_engine.json").write_text(json.dumps({
        "baseline": {"configs": {
            "mint": {"events_per_sec": 100}}},  # historical, ignored
        "current": {"configs": {
            "mint": {"events_per_sec": 400_000,
                     "median_events_per_sec": 380_000},
            "none": {"events_per_sec": 700_000,
                     "median_events_per_sec": 650_000}}}}))
    (results / "BENCH_obs.json").write_text(json.dumps({
        "configs": {
            "off": {"events_per_sec": 500_000,
                    "median_events_per_sec": 480_000},
            "on+spans": {"events_per_sec": 450_000,
                         "median_events_per_sec": 430_000}}}))
    return str(results)


class TestCollect:
    def test_flattens_both_snapshots(self, results_dir):
        metrics = collect_metrics(results_dir)
        assert set(metrics) == {"engine.mint", "engine.none",
                                "obs.off", "obs.on+spans"}
        assert metrics["engine.mint"] == _figures(400_000, 380_000)
        assert metrics["obs.on+spans"] == _figures(450_000, 430_000)

    def test_missing_directory_collects_nothing(self, tmp_path):
        assert collect_metrics(str(tmp_path / "nowhere")) == {}

    def test_median_falls_back_to_best(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_obs.json").write_text(json.dumps({
            "configs": {"on": {"events_per_sec": 1000}}}))
        metrics = collect_metrics(str(results))
        assert metrics["obs.on"] == _figures(1000, 1000)


class TestHistory:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        entry = append_history(path, {"m": _figures(10, 9)},
                               timestamp=1000.0, note="first")
        assert entry["schema"] == HISTORY_SCHEMA_VERSION
        append_history(path, {"m": _figures(12, 11)}, timestamp=2000.0)
        entries = load_history(path)
        assert len(entries) == 2
        assert entries[0]["note"] == "first"
        assert entries[1]["metrics"]["m"] == _figures(12, 11)

    def test_torn_and_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(str(path), {"m": _figures(10, 9)},
                       timestamp=1.0)
        with open(path, "a") as handle:
            handle.write('{"schema": 999, "metrics": {}}\n')
            handle.write("not json at all\n")
            handle.write('{"schema": 1, "metr')  # torn final line
        assert len(load_history(str(path))) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "absent.jsonl")) == []

    def test_baseline_is_elementwise_ratchet(self):
        entries = [
            {"metrics": {"a": _figures(10, 8), "b": _figures(5, 5)}},
            {"metrics": {"a": _figures(9, 12), "c": _figures(1, 1)}},
        ]
        baseline = baseline_from_history(entries)
        # Best-of and median-of ratchet independently.
        assert baseline["a"] == _figures(10, 12)
        assert baseline["b"] == _figures(5, 5)
        assert baseline["c"] == _figures(1, 1)


class TestGate:
    BASE = {"m": _figures(1000, 900)}

    def test_no_drop_passes(self):
        assert check_metrics({"m": _figures(1000, 900)}, self.BASE) == []

    def test_both_figures_must_drop(self):
        # Best collapses but the median holds: noise, not a regression.
        assert check_metrics({"m": _figures(500, 900)}, self.BASE) == []
        # Median collapses but the best holds: same.
        assert check_metrics({"m": _figures(1000, 400)},
                             self.BASE) == []

    def test_real_regression_is_reported_with_percentages(self):
        regressions = check_metrics({"m": _figures(500, 450)},
                                    self.BASE)
        assert len(regressions) == 1
        regression = regressions[0]
        assert regression.metric == "m"
        assert regression.drop_best_pct == pytest.approx(50.0)
        assert regression.drop_median_pct == pytest.approx(50.0)
        assert "m:" in regression.describe()

    def test_drop_at_threshold_is_not_a_regression(self):
        exactly = {"m": _figures(
            1000 * (1 - DEFAULT_THRESHOLD_PCT / 100),
            900 * (1 - DEFAULT_THRESHOLD_PCT / 100))}
        assert check_metrics(exactly, self.BASE) == []

    def test_new_metric_without_baseline_never_regresses(self):
        assert check_metrics({"fresh": _figures(1, 1)}, self.BASE) == []


class TestRunCheck:
    def test_passes_after_recording(self, results_dir, tmp_path):
        history = str(tmp_path / "history.jsonl")
        append_history(history, collect_metrics(results_dir),
                       timestamp=1.0)
        report = run_check(results_dir, history_path=history)
        assert report.ok
        assert report.history_entries == 1
        assert "no regressions" in report.describe()

    def test_injected_20pct_regression_fails_named(self, results_dir,
                                                   tmp_path):
        history = str(tmp_path / "history.jsonl")
        append_history(history, collect_metrics(results_dir),
                       timestamp=1.0)
        engine = json.loads(
            open(results_dir + "/BENCH_engine.json").read())
        config = engine["current"]["configs"]["none"]
        config["events_per_sec"] = round(
            config["events_per_sec"] * 0.75)
        config["median_events_per_sec"] = round(
            config["median_events_per_sec"] * 0.75)
        with open(results_dir + "/BENCH_engine.json", "w") as handle:
            json.dump(engine, handle)
        report = run_check(results_dir, history_path=history)
        assert not report.ok
        assert [regression.metric
                for regression in report.regressions] == ["engine.none"]
        assert "REGRESSIONS:" in report.describe()
        assert "engine.none" in report.describe()

    def test_no_snapshots_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError,
                           match="no benchmark snapshots"):
            run_check(str(tmp_path / "empty"))

    def test_no_history_raises_with_seeding_hint(self, results_dir,
                                                 tmp_path):
        with pytest.raises(FileNotFoundError,
                           match="repro bench record"):
            run_check(results_dir,
                      history_path=str(tmp_path / "absent.jsonl"))

    def test_improvement_does_not_tighten_until_recorded(
            self, results_dir, tmp_path):
        history = str(tmp_path / "history.jsonl")
        append_history(history, collect_metrics(results_dir),
                       timestamp=1.0)
        # Snapshots improve 2x without a record: still passes, and the
        # baseline stays at the recorded level.
        engine = json.loads(
            open(results_dir + "/BENCH_engine.json").read())
        for config in engine["current"]["configs"].values():
            config["events_per_sec"] *= 2
            config["median_events_per_sec"] *= 2
        with open(results_dir + "/BENCH_engine.json", "w") as handle:
            json.dump(engine, handle)
        report = run_check(results_dir, history_path=history)
        assert report.ok
        assert report.baseline["engine.mint"] == \
            _figures(400_000, 380_000)
