"""Unit tests for the result containers' derived properties."""

import pytest

from repro.sim.results import ComparisonResult, RunResult


def make_result(**overrides):
    base = dict(
        workload="w",
        policy="p",
        finish_times_ps=[1000, 2000],
        end_time_ps=2000,
        requests_completed=100,
        activations=40,
        row_hits=60,
        row_conflicts=10,
        mitigation_commands=5,
        rows_mitigated=12,
        average_rlp=2.4,
        bus_busy_ps=800,
        subchannels=2,
    )
    base.update(overrides)
    return RunResult(**base)


class TestRunResultProperties:
    def test_row_hit_rate(self):
        assert make_result().row_hit_rate == pytest.approx(0.6)

    def test_row_hit_rate_empty(self):
        result = make_result(activations=0, row_hits=0)
        assert result.row_hit_rate == 0.0

    def test_bus_utilization(self):
        # 800 ps busy over 2000 ps x 2 sub-channels.
        assert make_result().bus_utilization == pytest.approx(0.2)

    def test_bus_utilization_zero_time(self):
        assert make_result(end_time_ps=0).bus_utilization == 0.0

    def test_act_rate(self):
        assert make_result().act_rate_per_ns == pytest.approx(
            40 / (2000 / 1000))

    def test_act_rate_zero_time(self):
        assert make_result(end_time_ps=0).act_rate_per_ns == 0.0

    def test_describe_mentions_key_fields(self):
        text = make_result().describe()
        assert "w/p" in text
        assert "rlp=2.40" in text


class TestComparisonProperties:
    def test_slowdown_and_performance(self):
        baseline = make_result(finish_times_ps=[1000, 1000])
        slower = make_result(finish_times_ps=[2000, 2000])
        comparison = ComparisonResult(baseline, slower)
        assert comparison.slowdown_percent == pytest.approx(50.0)
        assert comparison.normalized_performance == pytest.approx(0.5)

    def test_average_rlp_is_mitigated_runs(self):
        baseline = make_result(average_rlp=0.0)
        mitigated = make_result(average_rlp=3.3)
        assert ComparisonResult(baseline,
                                mitigated).average_rlp == 3.3

    def test_describe(self):
        comparison = ComparisonResult(make_result(), make_result())
        assert "slowdown=0.00%" in comparison.describe()
