"""Unit tests for ABACuS (shared counters + SAV filtering)."""

import pytest

from repro.trackers.abacus import (AbacusTable, counter_bits_for_threshold,
                                   storage_kb_per_bank)


class TestStorageModel:
    def test_six_bit_counter_at_125(self):
        # Paper: at T_RH=125 each entry needs a 6-bit counter.
        assert counter_bits_for_threshold(125) == 6

    def test_storage_at_125(self):
        # Paper: ~19 KB/bank at T_RH = 125.
        assert storage_kb_per_bank(125) == pytest.approx(19.0, abs=0.5)

    def test_storage_stays_high_at_500(self):
        # ABACuS keeps 128K entries regardless of threshold.
        assert storage_kb_per_bank(500) > 15.0


class TestSAVFiltering:
    def test_first_activation_per_bank_filtered(self):
        table = AbacusTable(rows=16, num_banks=4, threshold=10)
        assert table.observe(0, 5) == []
        assert table.counters[5] == 0
        assert table.sav_filtered == 1

    def test_streaming_pattern_counts_once_per_sweep(self):
        # Same RowID touched in every bank: SAV absorbs the whole sweep.
        table = AbacusTable(rows=16, num_banks=4, threshold=10)
        for bank in range(4):
            table.observe(bank, 5)
        assert table.counters[5] == 0
        # Second sweep: each observe hits a set SAV bit -> one increment,
        # then the SAV restarts with only that bank's bit.
        table.observe(0, 5)
        assert table.counters[5] == 1

    def test_repeat_same_bank_counts(self):
        table = AbacusTable(rows=16, num_banks=4, threshold=10)
        table.observe(0, 5)
        for _ in range(3):
            table.observe(0, 5)
        assert table.counters[5] == 3

    def test_sav_restart_clears_other_banks(self):
        table = AbacusTable(rows=16, num_banks=4, threshold=10)
        table.observe(0, 5)
        table.observe(1, 5)
        table.observe(0, 5)  # increment + restart with bank 0 only
        assert table.counters[5] == 1
        table.observe(1, 5)  # bank 1 bit was cleared -> filtered again
        assert table.counters[5] == 1


class TestMitigation:
    def test_threshold_triggers_all_banks(self):
        table = AbacusTable(rows=16, num_banks=4, threshold=2)
        table.observe(0, 5)
        table.observe(0, 5)
        demands = table.observe(0, 5)
        assert len(demands) == 4
        assert {d.bank for d in demands} == {0, 1, 2, 3}
        assert all(d.row == 5 for d in demands)

    def test_entry_resets_after_trigger(self):
        table = AbacusTable(rows=16, num_banks=4, threshold=2)
        for _ in range(3):
            table.observe(0, 5)
        assert table.counters[5] == 0
        assert table.sav[5] == 0

    def test_reset(self):
        table = AbacusTable(rows=16, num_banks=4, threshold=10)
        table.observe(0, 5)
        table.observe(0, 5)
        table.reset()
        assert table.counters[5] == 0
        assert table.sav[5] == 0

    def test_storage_bits(self):
        table = AbacusTable(rows=16, num_banks=32, threshold=62)
        assert table.storage_bits() == 16 * (6 + 32)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            AbacusTable(rows=0, num_banks=4, threshold=1)
