"""Unit tests for the performance metrics."""

import pytest

from repro.cpu.metrics import (geometric_mean, normalized_performance,
                               slowdown_percent, weighted_speedup)


class TestWeightedSpeedup:
    def test_identical_runs_score_core_count(self):
        assert weighted_speedup([100, 100], [100, 100]) == pytest.approx(2.0)

    def test_half_speed(self):
        assert weighted_speedup([100], [200]) == pytest.approx(0.5)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([], [])


class TestSlowdown:
    def test_no_slowdown_is_zero(self):
        assert slowdown_percent([10, 20], [10, 20]) == pytest.approx(0.0)

    def test_uniform_doubling_is_fifty_percent(self):
        assert slowdown_percent([10, 20], [20, 40]) == pytest.approx(50.0)

    def test_speedup_is_negative(self):
        assert slowdown_percent([100], [80]) < 0

    def test_normalized_performance(self):
        assert normalized_performance([10, 10], [20, 20]) == \
            pytest.approx(0.5)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
