"""The span-trace analyzer: loading, critical path, worker breakdown,
Chrome trace export — including the acceptance criterion that a real
sweep's critical path lands within 5% of its profiled phase time."""

import json

import pytest

from repro.analysis.spans import (DISPATCHER_PID, SpansFormatError,
                                  chrome_trace, critical_path,
                                  load_spans, render_spans,
                                  worker_breakdown)
from repro.exec.executor import SweepExecutor
from repro.experiments.common import DesignSpec, sweep_designs
from repro.mc.policy import no_mitigation_factory
from repro.obs import SPANS_SCHEMA_VERSION, Telemetry
from repro.obs import runtime as obs_runtime
from repro.obs.spans import KIND_ATTEMPT, KIND_CELL, KIND_ENGINE, Span
from repro.workloads.builder import clear_cache
from repro.workloads.profiles import profiles_for


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_cache()
    yield
    clear_cache()


def _closed(name, t0, t1, kind="phase", meta=None, children=()):
    span = Span(name, kind, t0_s=t0, t1_s=t1, meta=meta)
    span.children.extend(children)
    return span


@pytest.fixture
def traced_sweep(tmp_path, small_system):
    """A real instrumented serial sweep, written through --spans.

    The request budget is deliberately larger than ``small_sim`` so
    engine time dominates the fixed per-cell dispatch cost — the same
    regime as a real figure sweep, where the critical-path /
    profiled-phases agreement below is meaningful.
    """
    from repro.sim.config import SimConfig

    telemetry = Telemetry(journal_memory=True, spans=True, profile=True)
    designs = [DesignSpec("none", no_mitigation_factory())]
    sim = SimConfig(requests_per_core=12_000, seed=7)
    with obs_runtime.activated(telemetry):
        sweep_designs(designs, small_system, sim,
                      workloads=profiles_for(names=["mcf"]))
    path = tmp_path / "spans.json"
    telemetry.write_spans(str(path))
    return str(path)


class TestLoading:
    def test_round_trip_of_a_real_sweep(self, traced_sweep,
                                        small_system):
        doc = load_spans(traced_sweep)
        assert doc.schema == SPANS_SCHEMA_VERSION
        # One baseline cell + one design cell, exactly as executed.
        assert doc.cell_count() == 2
        assert doc.span_count() > doc.cell_count()
        assert doc.phase_seconds() > 0

    def test_missing_file_and_bad_json(self, tmp_path):
        with pytest.raises(SpansFormatError, match="cannot read"):
            load_spans(str(tmp_path / "absent.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(SpansFormatError, match="not valid JSON"):
            load_spans(str(bad))

    def test_not_a_spans_document(self, tmp_path):
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"metrics": {}}))
        with pytest.raises(SpansFormatError, match="not a spans"):
            load_spans(str(other))

    def test_newer_schema_gets_upgrade_message(self, tmp_path):
        future = tmp_path / "future.json"
        future.write_text(json.dumps(
            {"schema": SPANS_SCHEMA_VERSION + 1, "spans": []}))
        with pytest.raises(SpansFormatError,
                           match="newer than the supported"):
            load_spans(str(future))

    def test_malformed_span_names_its_index(self, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(
            {"schema": SPANS_SCHEMA_VERSION,
             "spans": [{"name": 42}]}))
        with pytest.raises(SpansFormatError, match="index 0"):
            load_spans(str(broken))


class TestCriticalPath:
    def test_sequential_siblings_sum(self):
        roots = [_closed("a", 0.0, 1.0), _closed("b", 1.0, 3.0)]
        assert critical_path(roots).total_s == pytest.approx(3.0)

    def test_overlapping_siblings_take_the_best_chain(self):
        # a (0..2) overlaps b (1..2); c follows both.  Best chain is
        # a -> c (2.5s), not a + b + c.
        roots = [_closed("a", 0.0, 2.0), _closed("b", 1.0, 2.0),
                 _closed("c", 2.0, 2.5)]
        assert critical_path(roots).total_s == pytest.approx(2.5)

    def test_steps_descend_into_the_heaviest_child(self):
        heavy = _closed("heavy", 0.0, 2.0)
        root = _closed("sweep", 0.0, 3.0, kind="sweep",
                       children=[_closed("light", 0.0, 0.5), heavy])
        path = critical_path([root])
        assert [span.name for span in path.steps] == ["sweep", "heavy"]

    def test_real_sweep_matches_profiled_phases_within_5pct(
            self, traced_sweep):
        doc = load_spans(traced_sweep)
        path = critical_path(doc.roots)
        phases = doc.phase_seconds()
        assert phases > 0
        # Acceptance criterion: on a serial sweep the serialized-work
        # figure and the profiler agree within 5% (the gap is per-cell
        # dispatch outside any profiled phase).
        assert abs(path.total_s - phases) / path.total_s < 0.05


class TestWorkerBreakdown:
    def test_attributes_engine_and_build_time_by_pid(self):
        attempt = _closed(
            "attempt", 0.0, 1.0, kind=KIND_ATTEMPT,
            meta={"pid": 42},
            children=[
                _closed("build_traces", 0.0, 0.2),
                _closed("run:none", 0.2, 1.0, children=[
                    _closed("engine:event_loop", 0.2, 0.9,
                            kind=KIND_ENGINE)]),
            ])
        cell = _closed("mcf/none", 0.0, 1.0, kind=KIND_CELL,
                       children=[attempt])
        workers = worker_breakdown([cell])
        assert len(workers) == 1
        worker = workers[0]
        assert worker.pid == 42
        assert worker.cells == 1
        assert worker.busy_s == pytest.approx(1.0)
        assert worker.engine_s == pytest.approx(0.7)
        assert worker.build_s == pytest.approx(0.2)
        assert worker.overhead_s == pytest.approx(0.1)
        assert worker.overhead_pct == pytest.approx(10.0)

    def test_real_sweep_accounts_every_cell(self, traced_sweep):
        doc = load_spans(traced_sweep)
        workers = worker_breakdown(doc.roots)
        assert sum(worker.cells for worker in workers) == \
            doc.cell_count()
        for worker in workers:
            assert worker.busy_s >= \
                worker.engine_s + worker.build_s - 1e-9


class TestChromeTrace:
    def test_real_sweep_exports_valid_trace_events(self, traced_sweep):
        doc = load_spans(traced_sweep)
        trace = chrome_trace(doc.roots)
        events = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        complete = [event for event in events if event["ph"] == "X"]
        # Every closed span becomes one complete event.
        assert len(complete) == doc.span_count()
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        metadata = [event for event in events if event["ph"] == "M"]
        assert {entry["args"]["name"] for entry in metadata} >= \
            {"sweep dispatcher"}
        # The whole document survives JSON serialisation.
        json.dumps(trace)

    def test_attempt_subtree_switches_to_the_worker_track(self):
        attempt = _closed("attempt", 0.0, 1.0, kind=KIND_ATTEMPT,
                          meta={"pid": 99},
                          children=[_closed("run:none", 0.0, 1.0)])
        cell = _closed("mcf/none", 0.0, 1.0, kind=KIND_CELL,
                       children=[attempt])
        trace = chrome_trace([_closed("sweep", 0.0, 1.0, kind="sweep",
                                      children=[cell])])
        by_name = {event["name"]: event
                   for event in trace["traceEvents"]
                   if event["ph"] == "X"}
        assert by_name["sweep"]["pid"] == DISPATCHER_PID
        assert by_name["attempt"]["pid"] == 99
        assert by_name["run:none"]["pid"] == 99
        # Cells get their own lane on the dispatcher track.
        assert by_name["mcf/none"]["tid"] != by_name["sweep"]["tid"]

    def test_span_events_become_instants(self):
        span = _closed("cell", 0.0, 1.0, kind=KIND_CELL)
        span.events.append({"name": "cache_hit", "t_s": 0.5,
                            "exec": True, "meta": {"fingerprint": "ab"}})
        instants = [event for event in
                    chrome_trace([span])["traceEvents"]
                    if event["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "cache_hit"
        assert instants[0]["s"] == "t"
        assert instants[0]["args"] == {"fingerprint": "ab"}


class TestRendering:
    def test_report_mentions_every_section(self, traced_sweep):
        doc = load_spans(traced_sweep)
        report = render_spans(doc)
        assert report.startswith("spans: ")
        assert "critical path:" in report
        assert "profiled phases:" in report
        assert "per-worker breakdown" in report
