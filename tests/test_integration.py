"""End-to-end integration tests: the paper's headline orderings.

These run the full pipeline (profiles -> calibrated traces -> closed-loop
simulation -> slowdown metrics) on one memory-intensive workload and
assert the qualitative results of the paper hold: blocking-footprint
ordering, DREAM-R's improvement, RLP lift, and DREAM-C's grouping effect.
"""

import pytest

from repro.core.dream_c import dream_c_factory
from repro.core.dream_r import dream_r_mint_factory, dream_r_para_factory
from repro.dram.commands import Command
from repro.mc.mitigation import coupled_mint_factory, coupled_para_factory
from repro.sim.config import SimConfig, SystemConfig
from repro.sim.results import ComparisonResult
from repro.sim.runner import run_simulation
from repro.trackers.graphene import graphene_factory
from repro.workloads.builder import build_traces, clear_cache

T_RH = 2000


@pytest.fixture(scope="module")
def setup():
    clear_cache()
    system = SystemConfig.baseline(refs_per_window=64)
    sim = SimConfig(requests_per_core=8_000, seed=77)
    traces = build_traces("mcf", system, sim)
    baseline = run_simulation(system, traces, sim)
    yield system, sim, traces, baseline
    clear_cache()


def _slowdown(setup, factory, name):
    system, sim, traces, baseline = setup
    mitigated = run_simulation(system, traces, sim, factory, name)
    return ComparisonResult(baseline, mitigated)


class TestBlockingFootprintOrdering:
    def test_nrr_below_drfmsb_below_drfmab(self, setup):
        nrr = _slowdown(setup, coupled_para_factory(T_RH, Command.NRR),
                        "nrr")
        sb = _slowdown(setup, coupled_para_factory(T_RH, Command.DRFM_SB),
                       "sb")
        ab = _slowdown(setup, coupled_para_factory(T_RH, Command.DRFM_AB),
                       "ab")
        assert nrr.slowdown_percent < sb.slowdown_percent \
            < ab.slowdown_percent


class TestDreamRImprovement:
    def test_para_dream_r_beats_drfmsb(self, setup):
        sb = _slowdown(setup, coupled_para_factory(T_RH, Command.DRFM_SB),
                       "sb")
        dream = _slowdown(setup, dream_r_para_factory(T_RH), "dream-r")
        assert dream.slowdown_percent < sb.slowdown_percent

    def test_mint_dream_r_beats_drfmsb(self, setup):
        sb = _slowdown(setup, coupled_mint_factory(T_RH, Command.DRFM_SB),
                       "sb")
        dream = _slowdown(setup, dream_r_mint_factory(T_RH), "dream-r")
        assert dream.slowdown_percent < sb.slowdown_percent

    def test_rlp_lift(self, setup):
        sb = _slowdown(setup, coupled_para_factory(T_RH, Command.DRFM_SB),
                       "sb")
        dream = _slowdown(setup, dream_r_para_factory(T_RH), "dream-r")
        assert sb.average_rlp == pytest.approx(1.0, abs=0.1)
        assert dream.average_rlp > 2.0

    def test_mint_rlp_near_maximum(self, setup):
        dream = _slowdown(setup, dream_r_mint_factory(T_RH), "dream-r")
        assert dream.average_rlp > 6.0

    def test_fewer_mitigation_commands(self, setup):
        sb = _slowdown(setup, coupled_para_factory(T_RH, Command.DRFM_SB),
                       "sb")
        dream = _slowdown(setup, dream_r_para_factory(T_RH), "dream-r")
        assert dream.mitigated.mitigation_commands < \
            sb.mitigated.mitigation_commands


class TestDreamCGrouping:
    def test_randomized_beats_set_associative(self, setup):
        assoc = _slowdown(setup, dream_c_factory(500, randomized=False),
                          "assoc")
        rand = _slowdown(setup, dream_c_factory(500, randomized=True),
                         "rand")
        assert rand.slowdown_percent < assoc.slowdown_percent
        assert rand.mitigated.mitigation_commands < \
            assoc.mitigated.mitigation_commands

    def test_randomized_slowdown_small(self, setup):
        rand = _slowdown(setup, dream_c_factory(500, randomized=True),
                         "rand")
        assert rand.slowdown_percent < 10.0


class TestCounterTrackerBaseline:
    def test_graphene_near_zero_slowdown(self, setup):
        graphene = _slowdown(setup, graphene_factory(1000), "graphene")
        assert graphene.slowdown_percent < 2.0


class TestFullSizeConfiguration:
    def test_full_size_system_simulates(self):
        # The unscaled Table 2 system (32 ms window, 128K rows/bank) is
        # constructible and runs; request budgets keep it cheap.
        clear_cache()
        system = SystemConfig.full_size().with_cores(2)
        sim = SimConfig(requests_per_core=400, seed=5)
        traces = build_traces("mcf", system, sim, calibrate=False)
        result = run_simulation(system, traces, sim)
        assert result.requests_completed == 800
        assert result.end_time_ps > 0
        clear_cache()

    def test_full_size_dream_c_uses_table6_shape(self):
        from repro.core.dream_c import DreamCPolicy
        from repro.mc.policy import PolicyContext

        system = SystemConfig.full_size()
        context = PolicyContext(
            subchannel=0,
            num_banks=system.organization.banks,
            banks_per_group=system.organization.banks_per_group,
            rows_per_bank=system.organization.rows_per_bank,
            timing=system.timing,
            seed=1,
        )
        policy = DreamCPolicy(context, t_rh=500)
        assert policy.config.dct_entries == 128 * 1024 // 4
        assert policy.config.sram_kb_per_bank() == pytest.approx(1.0,
                                                                 rel=0.01)


class TestSeedRobustness:
    def test_slowdown_stable_across_seeds(self):
        # The DREAM-R improvement is not an artefact of one seed.
        clear_cache()
        system = SystemConfig.baseline(refs_per_window=64)
        values = []
        for seed in (11, 22):
            sim = SimConfig(requests_per_core=5_000, seed=seed)
            traces = build_traces("bwaves", system, sim)
            baseline = run_simulation(system, traces, sim)
            mitigated = run_simulation(
                system, traces, sim, dream_r_mint_factory(T_RH), "d")
            values.append(
                ComparisonResult(baseline, mitigated).slowdown_percent)
        assert abs(values[0] - values[1]) < max(2.0, 0.8 * max(values))
        clear_cache()


class TestPracIntrinsic:
    def test_prac_timings_slow_down_without_any_policy(self, setup):
        system, sim, traces, baseline = setup
        prac_system = SystemConfig.prac(64)
        prac_run = run_simulation(prac_system, traces, sim)
        comparison = ComparisonResult(baseline, prac_run)
        # The tRP 14 -> 36 ns extension alone costs several percent on a
        # conflict-heavy workload (the paper's intrinsic ~9.7%).
        assert comparison.slowdown_percent > 2.0
