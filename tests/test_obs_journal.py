"""Unit tests for the JSONL run journal (file and in-memory modes)."""

import enum
import json

import pytest

from repro.obs.journal import (RunJournal, SCHEMA_VERSION, load_journal,
                               read_journal)


class TestInMemoryMode:
    def test_records_accumulate(self):
        journal = RunJournal()
        journal.write("run_start", workload="mcf", seed=7)
        journal.write("summary", requests=100)
        assert journal.written == 2
        assert journal.records[0]["kind"] == "run_start"
        assert journal.records[1]["requests"] == 100

    def test_every_record_is_versioned(self):
        journal = RunJournal()
        record = journal.write("sample", sc=0)
        assert record["v"] == SCHEMA_VERSION

    def test_kinds_counts(self):
        journal = RunJournal()
        journal.write("sample")
        journal.write("sample")
        journal.write("summary")
        assert journal.kinds() == {"sample": 2, "summary": 1}

    def test_close_is_noop(self):
        journal = RunJournal()
        journal.close()
        journal.write("sample")
        assert journal.written == 1


class TestFileMode:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunJournal(path) as journal:
            journal.write("run_start", workload="mcf", policy="mint",
                          seed=7)
            journal.write("sample", sc=0, tick=0, acts=42)
            journal.write("summary", requests=3000, rlp=7.5)
        records = load_journal(path)
        assert [r["kind"] for r in records] == ["run_start", "sample",
                                                "summary"]
        assert all(r["v"] == SCHEMA_VERSION for r in records)
        assert records[1]["acts"] == 42
        assert records[2]["rlp"] == 7.5

    def test_file_mode_keeps_nothing_in_memory(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunJournal(path) as journal:
            journal.write("sample", sc=0)
        assert journal.records == []
        assert journal.written == 1

    def test_enum_payloads_serialise_by_value(self, tmp_path):
        class Cmd(enum.Enum):
            DRFM_SB = "DRFMsb"

        path = str(tmp_path / "run.jsonl")
        with RunJournal(path) as journal:
            journal.write("mitigation", cmd=Cmd.DRFM_SB)
        assert load_journal(path)[0]["cmd"] == "DRFMsb"

    def test_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunJournal(path) as journal:
            journal.write("a")
            journal.write("b")
        lines = (tmp_path / "run.jsonl").read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)


class TestReadValidation:
    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"v": 1, "kind": "a"}\n\n{"v": 1, "kind": "b"}\n')
        assert [r["kind"] for r in read_journal(str(path))] == ["a", "b"]

    def test_malformed_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1, "kind": "a"}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            load_journal(str(path))

    def test_kindless_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1}\n')
        with pytest.raises(ValueError, match="kind"):
            load_journal(str(path))
