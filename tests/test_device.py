"""Unit tests for organization and device wiring."""

import pytest

from repro.dram.commands import Command
from repro.dram.device import (FULL_SIZE_ROWS_PER_BANK, Device, Organization)
from repro.dram.timing import DDR5Timing


class TestOrganization:
    def test_full_size_matches_table2(self):
        org = Organization.full_size()
        assert org.channels == 1
        assert org.subchannels == 2
        assert org.banks == 32
        assert org.rows_per_bank == 128 * 1024
        assert org.bankgroups == 8

    def test_full_size_capacity_is_32gb(self):
        org = Organization.full_size()
        assert org.capacity_bytes == 32 * 1024 ** 3
        assert org.row_bytes == 4 * 1024

    def test_scaled_preserves_rows_per_ref(self):
        full = Organization.full_size()
        scaled = Organization.scaled(256)
        assert full.rows_per_bank // 8192 == scaled.rows_per_bank // 256

    def test_scaled_rejects_non_divisor(self):
        with pytest.raises(ValueError):
            Organization.scaled(100)

    def test_total_counts(self):
        org = Organization.scaled(64)
        assert org.total_banks == 64
        assert org.total_rows == 64 * 1024

    def test_validate_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            Organization(banks=30).validate()

    def test_validate_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Organization(rows_per_bank=0).validate()

    def test_full_size_constant(self):
        assert FULL_SIZE_ROWS_PER_BANK == 131_072


class TestDevice:
    def test_builds_subchannels(self, timing, organization):
        device = Device(organization, timing)
        assert len(device.subchannels) == organization.subchannels
        assert device.subchannel(1).index == 1

    def test_aggregates_activations(self, timing, organization):
        device = Device(organization, timing)
        device.subchannel(0).banks[0].activate(1, 0)
        device.subchannel(1).banks[5].activate(2, 0)
        assert device.total_activations() == 2

    def test_aggregates_rlp(self, timing, organization):
        device = Device(organization, timing)
        sc = device.subchannel(0)
        sc.banks[0].activate(1, 0)
        sc.banks[0].precharge(0, sample=True)
        sc.issue_mitigation(Command.DRFM_SB, 0, 1_000_000)
        assert device.total_mitigated_rows() == 1
        assert device.average_rlp() == pytest.approx(1.0)

    def test_validates_inputs(self, timing):
        with pytest.raises(ValueError):
            Device(Organization(banks=30), timing)

    def test_single_channel_only(self, timing):
        with pytest.raises(NotImplementedError, match="one channel"):
            Device(Organization(channels=2), timing)
