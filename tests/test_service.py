"""Sweep service tests: scheduler lifecycle, HTTP surface, cache
coalescing, and result byte-identity against local ``run_experiment``."""

import json
import urllib.error
import urllib.request

import pytest

from repro.exec.executor import SweepExecutor
from repro.experiments import registry
from repro.experiments.common import RunOptions
from repro.service import (BadSubmission, JobScheduler, ServiceThread,
                           SweepClient, UnknownJob)
from repro.service.jobs import JobFailedError, JobNotDone
from repro.workloads.builder import clear_cache

#: Small per-core budget so a job is a ~1 s ten-cell sweep.
BUDGET = 500

OPTIONS = RunOptions(seed=11, requests_per_core=BUDGET)


@pytest.fixture(autouse=True)
def _small_world(monkeypatch):
    monkeypatch.setattr("repro.workloads.profiles.QUICK_SUBSET",
                        ("blender", "add"))
    clear_cache()
    yield
    clear_cache()


@pytest.fixture
def scheduler():
    with JobScheduler(SweepExecutor()) as sched:
        yield sched


@pytest.fixture
def service(scheduler):
    with ServiceThread(scheduler) as thread:
        yield thread


@pytest.fixture
def client(service):
    return SweepClient(service.url)


class TestScheduler:
    def test_submit_returns_queued_record(self, scheduler):
        record = scheduler.submit("table4", RunOptions())
        assert record["state"] == "queued"
        assert record["experiment"] == "table4"
        assert record["job"] == "j1"
        assert record["options"] == RunOptions().to_dict()

    def test_unknown_experiment_rejected(self, scheduler):
        with pytest.raises(BadSubmission, match="unknown experiment"):
            scheduler.submit("nope", RunOptions())

    def test_resume_rejected(self, scheduler):
        with pytest.raises(BadSubmission, match="resume"):
            scheduler.submit("table4", RunOptions(resume=True))

    def test_unknown_job_raises(self, scheduler):
        with pytest.raises(UnknownJob):
            scheduler.get("j99")
        with pytest.raises(UnknownJob):
            scheduler.result_text("j99")
        with pytest.raises(UnknownJob):
            scheduler.events_since("j99")

    def test_job_lifecycle_to_done(self, scheduler):
        job_id = scheduler.submit("table4", RunOptions())["job"]
        record = _wait(scheduler, job_id)
        assert record["state"] == "done"
        assert record["error"] is None
        text = scheduler.result_text(job_id)
        assert json.loads(text)["experiment"] == "table4"

    def test_result_before_done_raises_not_done(self, scheduler):
        # An analytic job finishes fast; queue two sim jobs so the
        # second is reliably pending when we poke it.
        scheduler.submit("ablation-atm", OPTIONS)
        job_id = scheduler.submit("ablation-atm", OPTIONS)["job"]
        with pytest.raises(JobNotDone):
            scheduler.result_text(job_id)
        _wait(scheduler, job_id)

    def test_event_log_is_append_only_with_monotonic_seq(self, scheduler):
        job_id = scheduler.submit("ablation-atm", OPTIONS)["job"]
        _wait(scheduler, job_id)
        events, terminal = scheduler.events_since(job_id)
        assert terminal
        assert [event["seq"] for event in events] == \
            list(range(len(events)))
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "state" and kinds[-1] == "state"
        assert kinds.count("computed") == 10  # 2 workloads x 5 designs

    def test_events_since_cursor(self, scheduler):
        job_id = scheduler.submit("table4", RunOptions())["job"]
        _wait(scheduler, job_id)
        events, _ = scheduler.events_since(job_id)
        tail, terminal = scheduler.events_since(job_id,
                                                events[2]["seq"])
        assert terminal
        assert tail == events[3:]

    def test_failed_job_isolates_and_reports(self, scheduler):
        from repro.exec import faults

        faults.install(faults.FaultPlan.parse("crash:*:99"))
        try:
            job_id = scheduler.submit(
                "ablation-atm",
                RunOptions(seed=11, requests_per_core=BUDGET,
                           retries=0))["job"]
            record = _wait(scheduler, job_id)
        finally:
            faults.install(None)
        assert record["state"] == "failed"
        assert record["error"]
        with pytest.raises(JobFailedError):
            scheduler.result_text(job_id)
        # The scheduler survives: a clean job still runs afterwards.
        ok = scheduler.submit("table4", RunOptions())["job"]
        assert _wait(scheduler, ok)["state"] == "done"


class TestCoalescing:
    def test_identical_submissions_share_cell_work(self, scheduler):
        first = scheduler.submit("ablation-atm", OPTIONS)["job"]
        second = scheduler.submit("ablation-atm", OPTIONS)["job"]
        cold = _wait(scheduler, first)
        warm = _wait(scheduler, second)
        assert cold["counters"]["computed"] == cold["counters"]["cells"]
        assert warm["counters"]["computed"] == 0
        assert warm["counters"]["memo_hits"] == warm["counters"]["cells"]
        assert scheduler.result_text(first) == \
            scheduler.result_text(second)

    def test_warm_result_byte_identical_to_local(self, scheduler):
        job_id = scheduler.submit("ablation-atm", OPTIONS)["job"]
        _wait(scheduler, job_id)
        warm = scheduler.submit("ablation-atm", OPTIONS)["job"]
        _wait(scheduler, warm)
        clear_cache()
        local = registry.run_experiment("ablation-atm", OPTIONS)
        assert scheduler.result_text(warm) == local.to_json()


class TestHttpSurface:
    def test_experiments_endpoint(self, client):
        assert client.experiments() == registry.names()

    def test_submit_stream_result_round_trip(self, client):
        job_id = client.submit("ablation-atm", OPTIONS)
        events = list(client.stream(job_id))
        assert events[-1]["kind"] == "state"
        assert events[-1]["state"] == "done"
        assert [event["seq"] for event in events] == \
            list(range(len(events)))
        clear_cache()
        local = registry.run_experiment("ablation-atm", OPTIONS)
        assert client.result(job_id) == local.to_json()

    def test_jobs_listing(self, client):
        first = client.submit("table4")
        second = client.submit("table3")
        client.wait(second)
        records = client.jobs()
        assert [record["job"] for record in records] == [first, second]

    def test_http_error_statuses(self, service, client):
        from repro.service.client import ServiceError

        def status_of(path, method="GET", body=None):
            request = urllib.request.Request(
                service.url + path, method=method, data=body)
            try:
                with urllib.request.urlopen(request) as response:
                    return response.status
            except urllib.error.HTTPError as error:
                return error.code

        assert status_of("/v1/jobs/j99") == 404
        assert status_of("/nope") == 404
        assert status_of("/v1/jobs", method="POST",
                         body=b'{"experiment": "nope"}') == 400
        assert status_of("/v1/jobs", method="POST",
                         body=b'{"experiment": "table4", '
                              b'"options": {"bogus": 1}}') == 400
        assert status_of("/v1/jobs", method="DELETE") == 405
        with pytest.raises(ServiceError) as excinfo:
            client.job("j99")
        assert excinfo.value.status == 404

    def test_result_of_failed_job_is_410(self, service, client):
        from repro.exec import faults

        faults.install(faults.FaultPlan.parse("crash:*:99"))
        try:
            job_id = client.submit(
                "ablation-atm",
                RunOptions(seed=11, requests_per_core=BUDGET,
                           retries=0))
            record = client.wait(job_id)
        finally:
            faults.install(None)
        assert record["state"] == "failed"
        from repro.service.client import JobFailed, ServiceError

        with pytest.raises(JobFailed):
            client.result(job_id)
        with pytest.raises(ServiceError) as excinfo:
            client.result(job_id, wait=False)
        assert excinfo.value.status == 410

    def test_result_before_done_is_409(self, client):
        client.submit("ablation-atm", OPTIONS)
        job_id = client.submit("ablation-atm", OPTIONS)
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError) as excinfo:
            client.result(job_id, wait=False)
        assert excinfo.value.status == 409
        client.wait(job_id)

    def test_stream_resumes_from_cursor(self, service, client):
        job_id = client.submit("ablation-atm", OPTIONS)
        all_events = list(client.stream(job_id))
        # A fresh stream with ?after=N replays exactly the tail.
        connection = urllib.request.urlopen(
            f"{service.url}/v1/jobs/{job_id}/events"
            f"?after={all_events[4]['seq']}")
        tail = [json.loads(line) for line in connection.read()
                .decode().splitlines()]
        assert tail == all_events[5:]


def _wait(scheduler, job_id, timeout_s=60.0):
    import time

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        record = scheduler.get(job_id)
        if record["state"] in ("done", "failed"):
            return record
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} did not finish")
