"""Unit tests for the queued FCFS / FR-FCFS scheduler substrate."""

import pytest

from repro.dram.subchannel import SubChannel
from repro.mc.controller import SubChannelController
from repro.mc.scheduler import (QueuedRequest, QueuedScheduler,
                                SchedulingPolicy)


def make_scheduler(timing, organization, policy, reorder_window=16):
    subchannel = SubChannel(0, timing, organization.banks,
                            organization.banks_per_group)
    controller = SubChannelController(subchannel, timing, None)
    return QueuedScheduler(controller, policy, reorder_window)


def request(arrival, bank, row, tag=0):
    return QueuedRequest(arrival_ps=arrival, bank=bank, row=row, tag=tag)


class TestFCFS:
    def test_issues_in_arrival_order(self, timing, organization):
        scheduler = make_scheduler(timing, organization,
                                   SchedulingPolicy.FCFS)
        for i in range(5):
            scheduler.enqueue(request(i * 10, bank=i % 2, row=i, tag=i))
        finished = scheduler.run()
        assert [r.tag for r in finished] == [0, 1, 2, 3, 4]
        assert scheduler.stats.reorders == 0

    def test_latency_accounting(self, timing, organization):
        scheduler = make_scheduler(timing, organization,
                                   SchedulingPolicy.FCFS)
        scheduler.enqueue(request(0, 0, 5))
        finished = scheduler.run()
        assert finished[0].latency_ps >= timing.t_rcd + timing.t_cl
        assert scheduler.stats.average_latency_ps == \
            finished[0].latency_ps

    def test_waits_for_future_arrivals(self, timing, organization):
        scheduler = make_scheduler(timing, organization,
                                   SchedulingPolicy.FCFS)
        scheduler.enqueue(request(10 ** 6, 0, 5))
        finished = scheduler.run()
        assert finished[0].issued_ps >= 10 ** 6


class TestFRFCFS:
    def test_prefers_row_hits(self, timing, organization):
        scheduler = make_scheduler(timing, organization,
                                   SchedulingPolicy.FR_FCFS)
        # Open row 5 in bank 0, then enqueue a conflict followed by a hit.
        scheduler.controller.service(0, 5, 0)
        scheduler.now_ps = 10 ** 6
        scheduler.enqueue(request(0, 0, 6, tag="conflict"))
        scheduler.enqueue(request(1, 0, 5, tag="hit"))
        finished = scheduler.run()
        assert [r.tag for r in finished] == ["hit", "conflict"]
        assert scheduler.stats.reorders == 1

    def test_falls_back_to_oldest(self, timing, organization):
        scheduler = make_scheduler(timing, organization,
                                   SchedulingPolicy.FR_FCFS)
        scheduler.enqueue(request(0, 0, 6, tag="old"))
        scheduler.enqueue(request(1, 0, 7, tag="new"))
        finished = scheduler.run()
        assert finished[0].tag == "old"

    def test_reorder_window_caps_lookahead(self, timing, organization):
        scheduler = make_scheduler(timing, organization,
                                   SchedulingPolicy.FR_FCFS,
                                   reorder_window=2)
        scheduler.controller.service(0, 5, 0)
        scheduler.now_ps = 10 ** 6
        # The row hit sits outside the 2-entry window.
        scheduler.enqueue(request(0, 0, 6, tag="a"))
        scheduler.enqueue(request(1, 0, 7, tag="b"))
        scheduler.enqueue(request(2, 0, 5, tag="hit"))
        finished = scheduler.run()
        assert finished[0].tag == "a"

    def test_frfcfs_improves_hit_rate_on_locality(self, timing,
                                                  organization):
        # Interleaved streams to two rows of the same bank: FCFS
        # ping-pongs (all conflicts); FR-FCFS batches the hits.
        def load(scheduler):
            for i in range(40):
                scheduler.enqueue(request(i, 0, row=5 + (i % 2)))
            scheduler.run()
            bank = scheduler.controller.subchannel.banks[0]
            return bank.stats.row_hits

        fcfs_hits = load(make_scheduler(timing, organization,
                                        SchedulingPolicy.FCFS))
        fr_hits = load(make_scheduler(timing, organization,
                                      SchedulingPolicy.FR_FCFS))
        assert fr_hits > fcfs_hits

    def test_frfcfs_lowers_average_latency(self, timing, organization):
        def latency(policy):
            scheduler = make_scheduler(timing, organization, policy)
            for i in range(40):
                scheduler.enqueue(request(i, 0, row=5 + (i % 2)))
            scheduler.run()
            return scheduler.stats.average_latency_ps

        assert latency(SchedulingPolicy.FR_FCFS) < \
            latency(SchedulingPolicy.FCFS)


class TestValidation:
    def test_rejects_bad_window(self, timing, organization):
        with pytest.raises(ValueError):
            make_scheduler(timing, organization, SchedulingPolicy.FCFS,
                           reorder_window=0)

    def test_latency_before_finish_raises(self):
        with pytest.raises(RuntimeError):
            _ = request(0, 0, 0).latency_ps

    def test_step_on_empty_returns_none(self, timing, organization):
        scheduler = make_scheduler(timing, organization,
                                   SchedulingPolicy.FCFS)
        assert scheduler.step() is None
