"""Unit tests for the timeline sampler (cadence, deltas, attachment)."""

import pytest

from repro.obs.journal import RunJournal
from repro.obs.timeline import (DEFAULT_SAMPLE_EVERY_REFI, TimelineSampler,
                                TimelineSample)


class _BankStats:
    def __init__(self):
        self.activations = 0
        self.row_hits = 0
        self.row_conflicts = 0
        self.samples = 0


class _Bank:
    def __init__(self):
        self.stats = _BankStats()
        self.open_row = None


class _SubChannelStats:
    def __init__(self):
        self.mitigation_commands = 0
        self.mitigated_rows = 0


class _FakeSubChannel:
    def __init__(self, index=0, banks=4):
        self.index = index
        self.banks = [_Bank() for _ in range(banks)]
        self.stats = _SubChannelStats()
        self.dars = 0

    def valid_dar_count(self):
        return self.dars


class _FakeRefresh:
    def __init__(self):
        self.callbacks = []

    def on_ref(self, callback):
        self.callbacks.append(callback)

    def fire(self, ref_index, time_ps):
        for callback in self.callbacks:
            callback(ref_index, time_ps)


class _FakeController:
    def __init__(self, index=0):
        self.subchannel = _FakeSubChannel(index)
        self.refresh = _FakeRefresh()


class TestCadence:
    def test_samples_every_nth_ref(self):
        sampler = TimelineSampler(sample_every_refi=4)
        controller = _FakeController()
        sampler.attach(controller)
        for ref_index in range(16):
            controller.refresh.fire(ref_index, time_ps=ref_index * 1000)
        # (ref_index + 1) % 4 == 0  ->  refs 3, 7, 11, 15.
        assert [s.ref_index for s in sampler.samples] == [3, 7, 11, 15]
        assert [s.tick for s in sampler.samples] == [0, 1, 2, 3]

    def test_default_period(self):
        assert TimelineSampler().sample_every_refi == \
            DEFAULT_SAMPLE_EVERY_REFI

    def test_period_must_be_positive(self):
        with pytest.raises(ValueError):
            TimelineSampler(sample_every_refi=0)


class TestDeltas:
    def test_interval_deltas_not_cumulative(self):
        sampler = TimelineSampler(sample_every_refi=1)
        controller = _FakeController()
        sampler.attach(controller)
        bank = controller.subchannel.banks[0]

        bank.stats.activations = 10
        bank.stats.row_hits = 30
        controller.refresh.fire(0, 100)
        bank.stats.activations = 15
        bank.stats.row_hits = 45
        controller.refresh.fire(1, 200)

        first, second = sampler.samples
        assert first.activations == 10 and first.row_hits == 30
        assert second.activations == 5 and second.row_hits == 15
        assert second.row_hit_rate == pytest.approx(15 / 20)

    def test_rlp_is_rows_per_command_in_interval(self):
        sampler = TimelineSampler(sample_every_refi=1)
        controller = _FakeController()
        sampler.attach(controller)
        controller.subchannel.stats.mitigation_commands = 4
        controller.subchannel.stats.mitigated_rows = 30
        controller.refresh.fire(0, 100)
        sample = sampler.samples[0]
        assert sample.mitigation_commands == 4
        assert sample.rlp == pytest.approx(7.5)

    def test_zero_activity_interval_is_safe(self):
        sampler = TimelineSampler(sample_every_refi=1)
        controller = _FakeController()
        sampler.attach(controller)
        controller.refresh.fire(0, 100)
        sample = sampler.samples[0]
        assert sample.row_hit_rate == 0.0
        assert sample.rlp == 0.0

    def test_open_banks_and_queue_depth_snapshotted(self):
        sampler = TimelineSampler(sample_every_refi=1)
        controller = _FakeController()
        sampler.attach(controller)
        controller.subchannel.banks[0].open_row = 12
        controller.subchannel.banks[2].open_row = 7
        sampler.queue_depth = lambda: 42
        controller.refresh.fire(0, 100)
        sample = sampler.samples[0]
        assert sample.open_banks == 2
        assert sample.queue_depth == 42


class TestMultiSubchannel:
    def test_samples_tagged_and_filterable(self):
        sampler = TimelineSampler(sample_every_refi=1)
        first = _FakeController(index=0)
        second = _FakeController(index=1)
        sampler.attach(first)
        sampler.attach(second)
        first.refresh.fire(0, 100)
        second.refresh.fire(0, 100)
        first.refresh.fire(1, 200)
        assert len(sampler.for_subchannel(0)) == 2
        assert len(sampler.for_subchannel(1)) == 1
        assert all(s.subchannel == 1 for s in sampler.for_subchannel(1))


class TestJournalEmission:
    def test_each_tick_writes_a_sample_record(self):
        journal = RunJournal()
        sampler = TimelineSampler(sample_every_refi=1, journal=journal)
        controller = _FakeController()
        sampler.attach(controller)
        controller.refresh.fire(0, 100)
        controller.refresh.fire(1, 200)
        assert journal.kinds() == {"sample": 2}
        record = journal.records[0]
        assert record["sc"] == 0 and record["t_ps"] == 100
        assert set(record) >= {"acts", "hits", "drfm", "rlp",
                               "open_banks", "queue_depth"}

    def test_to_record_round_trips_sample_fields(self):
        sample = TimelineSample(
            subchannel=1, tick=3, time_ps=999, ref_index=7,
            activations=10, row_hits=20, row_conflicts=1,
            row_hit_rate=0.6667, samples=4, mitigation_commands=2,
            mitigated_rows=15, rlp=7.5, selections=2, rmaq_hits=1,
            rmaq_skips=0, open_banks=5, valid_dars=3, queue_depth=12)
        record = sample.to_record()
        assert record["sc"] == 1
        assert record["rlp"] == 7.5
        assert record["valid_dars"] == 3
