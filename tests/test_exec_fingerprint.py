"""Unit tests for canonical encoding, fingerprints and policy specs."""

import pickle

import pytest

from repro.core.dream_r import dream_r_mint_factory
from repro.dram.commands import Command
from repro.exec.fingerprint import (CACHE_SCHEMA_VERSION, FingerprintError,
                                    canonical, fingerprint)
from repro.exec.spec import PolicySpec, spec_factory
from repro.mc.mitigation import coupled_para_factory
from repro.mc.policy import NoMitigation, no_mitigation_factory
from repro.sim.config import SimConfig, SystemConfig
from repro.workloads.profiles import profiles_for


class TestCanonical:
    def test_scalars_pass_through(self):
        assert canonical(None) is None
        assert canonical(3) == 3
        assert canonical(2.5) == 2.5
        assert canonical(True) is True
        assert canonical("x") == "x"

    def test_containers_recurse(self):
        assert canonical([1, (2, 3)]) == [1, [2, 3]]
        assert canonical({"b": 2, "a": 1}) == {"a": 1, "b": 2}

    def test_dict_keys_sorted_deterministically(self):
        assert list(canonical({"z": 0, "a": 0})) == ["a", "z"]

    def test_enum_encodes_type_and_value(self):
        encoded = canonical(Command.DRFM_SB)
        assert encoded["__enum__"].endswith(":Command")
        assert encoded["value"] == Command.DRFM_SB.value

    def test_dataclass_encodes_type_ref_and_fields(self):
        sim = SimConfig(requests_per_core=100, seed=1)
        encoded = canonical(sim)
        assert encoded["__dataclass__"].endswith(":SimConfig")
        assert encoded["requests_per_core"] == 100
        assert encoded["seed"] == 1

    def test_system_config_encodes_recursively(self):
        encoded = canonical(SystemConfig.baseline(refs_per_window=64))
        assert encoded["__dataclass__"].endswith(":SystemConfig")
        assert "__dataclass__" in encoded["timing"]

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(FingerprintError):
            canonical({1: "x"})

    def test_lambda_rejected(self):
        with pytest.raises(FingerprintError):
            canonical(lambda context: NoMitigation())

    def test_arbitrary_object_rejected(self):
        with pytest.raises(FingerprintError):
            canonical(object())


class TestFingerprint:
    def _key(self, seed=7, requests=1_500, refs=64, policy=None):
        return {
            "workload": profiles_for(names=["mcf"])[0],
            "system": SystemConfig.baseline(refs_per_window=refs),
            "sim": SimConfig(requests_per_core=requests, seed=seed),
            "policy": policy,
        }

    def test_stable_across_calls(self):
        assert fingerprint(**self._key()) == fingerprint(**self._key())

    def test_changed_seed_changes_digest(self):
        assert fingerprint(**self._key(seed=7)) != \
            fingerprint(**self._key(seed=8))

    def test_changed_budget_changes_digest(self):
        assert fingerprint(**self._key(requests=1_500)) != \
            fingerprint(**self._key(requests=1_501))

    def test_changed_system_changes_digest(self):
        assert fingerprint(**self._key(refs=64)) != \
            fingerprint(**self._key(refs=32))

    def test_changed_policy_changes_digest(self):
        para = fingerprint(**self._key(policy=coupled_para_factory(2000)))
        none = fingerprint(**self._key(policy=no_mitigation_factory()))
        assert para != none

    def test_changed_policy_argument_changes_digest(self):
        assert fingerprint(**self._key(policy=coupled_para_factory(2000))) \
            != fingerprint(**self._key(policy=coupled_para_factory(4000)))

    def test_schema_version_is_mixed_in(self):
        document = canonical(dict(self._key(),
                                  schema=CACHE_SCHEMA_VERSION))
        assert document["schema"] == CACHE_SCHEMA_VERSION


class TestPolicySpec:
    def test_factories_return_specs(self):
        spec = coupled_para_factory(2000)
        assert isinstance(spec, PolicySpec)
        assert spec.ref.endswith(":coupled_para_factory")
        assert spec.args == (2000,)

    def test_kwargs_sorted_into_identity(self):
        @spec_factory
        def demo_factory(a=1, b=2):
            return lambda context: NoMitigation()

        assert demo_factory(b=4, a=3) == demo_factory(a=3, b=4)

    def test_spec_round_trips_through_pickle(self):
        spec = dream_r_mint_factory(2000)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.resolve() is spec.resolve()

    def test_spec_is_callable_like_the_closure(self, context):
        policy = no_mitigation_factory()(context)
        assert isinstance(policy, NoMitigation)

    def test_materialize_rebuilds_equivalent_policies(self, context):
        spec = coupled_para_factory(2000, command=Command.DRFM_SB)
        first = spec.materialize()(context)
        second = spec.materialize()(context)
        assert type(first) is type(second)
        assert first is not second

    def test_describe_shows_ref_and_args(self):
        text = coupled_para_factory(2000).describe()
        assert "coupled_para_factory" in text
        assert "2000" in text
