"""Unit tests for the DDR5 timing parameters."""

import pytest

from repro.dram.timing import (JEDEC_REFS_PER_WINDOW, PS_PER_NS, DDR5Timing,
                               ns)


class TestNsConversion:
    def test_integral_nanoseconds(self):
        assert ns(14) == 14_000

    def test_fractional_nanoseconds_round(self):
        assert ns(16 / 6.0) == 2_667

    def test_zero(self):
        assert ns(0) == 0


class TestJedecTimings:
    def test_table2_values(self):
        timing = DDR5Timing.jedec()
        assert timing.t_rcd == ns(14)
        assert timing.t_rp == ns(14)
        assert timing.t_rc == ns(46)
        assert timing.t_refi == ns(3900)
        assert timing.t_rfc == ns(410)
        assert timing.t_drfm_sb == ns(240)
        assert timing.t_drfm_ab == ns(280)

    def test_nrr_matches_drfmsb(self):
        # The paper assumes NRR takes the same time as DRFMsb.
        timing = DDR5Timing.jedec()
        assert timing.t_nrr == timing.t_drfm_sb

    def test_full_window_is_32ms(self):
        timing = DDR5Timing.jedec()
        assert timing.refs_per_window == JEDEC_REFS_PER_WINDOW
        assert timing.t_refw == 8192 * ns(3900)
        assert timing.t_refw == pytest.approx(32e6 * PS_PER_NS, rel=0.01)

    def test_refresh_duty_cycle(self):
        timing = DDR5Timing.jedec()
        assert timing.refresh_duty_cycle == pytest.approx(410 / 3900)

    def test_t_ras(self):
        timing = DDR5Timing.jedec()
        assert timing.t_ras == timing.t_rc - timing.t_rp

    def test_validate_passes(self):
        DDR5Timing.jedec().validate()


class TestScaledTimings:
    def test_window_shrinks_only(self):
        scaled = DDR5Timing.scaled(256)
        jedec = DDR5Timing.jedec()
        assert scaled.refs_per_window == 256
        assert scaled.t_refi == jedec.t_refi
        assert scaled.t_rfc == jedec.t_rfc
        assert scaled.t_rc == jedec.t_rc

    def test_duty_cycle_preserved(self):
        assert DDR5Timing.scaled(64).refresh_duty_cycle == \
            DDR5Timing.jedec().refresh_duty_cycle

    def test_window_length(self):
        assert DDR5Timing.scaled(256).t_refw == 256 * ns(3900)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DDR5Timing.scaled(0)

    def test_with_window(self):
        timing = DDR5Timing.jedec().with_window(128)
        assert timing.refs_per_window == 128
        with pytest.raises(ValueError):
            timing.with_window(-1)


class TestPracTimings:
    def test_trp_extension(self):
        prac = DDR5Timing.prac()
        assert prac.t_rp == ns(36)

    def test_trc_extended_by_same_amount(self):
        prac = DDR5Timing.prac()
        jedec = DDR5Timing.jedec()
        assert prac.t_rc - jedec.t_rc == prac.t_rp - jedec.t_rp

    def test_other_timings_unchanged(self):
        prac = DDR5Timing.prac()
        jedec = DDR5Timing.jedec()
        assert prac.t_rcd == jedec.t_rcd
        assert prac.t_cl == jedec.t_cl
        assert prac.t_drfm_ab == jedec.t_drfm_ab

    def test_validate_passes(self):
        DDR5Timing.prac().validate()


class TestValidation:
    def test_rejects_trc_too_small(self):
        bad = DDR5Timing(t_rc=ns(10))
        with pytest.raises(ValueError, match="tRC"):
            bad.validate()

    def test_rejects_trfc_exceeding_trefi(self):
        bad = DDR5Timing(t_rfc=ns(4000))
        with pytest.raises(ValueError, match="tRFC"):
            bad.validate()

    def test_rejects_drfmsb_longer_than_ab(self):
        bad = DDR5Timing(t_drfm_sb=ns(300))
        with pytest.raises(ValueError, match="tDRFMsb"):
            bad.validate()

    def test_rejects_nonpositive_parameter(self):
        bad = DDR5Timing(t_rcd=0)
        with pytest.raises(ValueError, match="positive"):
            bad.validate()
