"""Unit tests for deterministic fault injection (repro.exec.faults)."""

import pytest

from repro.exec import faults
from repro.exec.faults import (CORRUPT_SENTINEL, DEFAULT_HANG_SECONDS,
                               Fault, FaultError, FaultPlan,
                               InjectedCrash)

FP = "ab12cd34" + "0" * 56


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    yield
    faults.install(None)


class TestParsing:
    def test_single_directive(self):
        plan = FaultPlan.parse("crash:ab12")
        assert plan.faults == (Fault(kind="crash", selector="ab12"),)

    def test_count_and_seconds(self):
        plan = FaultPlan.parse("hang:ab:3@2.5")
        fault = plan.faults[0]
        assert fault.kind == "hang"
        assert fault.count == 3
        assert fault.seconds == 2.5

    def test_multiple_directives_either_separator(self):
        semis = FaultPlan.parse("crash:aa;corrupt:bb;abort:*:2")
        commas = FaultPlan.parse("crash:aa,corrupt:bb,abort:*:2")
        assert semis == commas
        assert [f.kind for f in semis.faults] == \
            ["crash", "corrupt", "abort"]

    def test_whitespace_and_empty_pieces_tolerated(self):
        plan = FaultPlan.parse(" crash:aa ; ; corrupt:bb ")
        assert len(plan.faults) == 2

    def test_default_hang_seconds(self):
        assert FaultPlan.parse("hang:aa").faults[0].seconds == \
            DEFAULT_HANG_SECONDS

    @pytest.mark.parametrize("bad", [
        "explode:aa",          # unknown kind
        "crash",               # no selector
        "crash:",              # empty selector
        "crash:aa:zero",       # bad count
        "crash:aa:0",          # count < 1
        "crash:aa@2",          # seconds on a non-hang fault
        "hang:aa@-1",          # non-positive seconds
        "crash:aa:1:2",        # too many fields
    ])
    def test_bad_directives_raise(self, bad):
        with pytest.raises(FaultError):
            FaultPlan.parse(bad)

    def test_describe_round_trips(self):
        spec = "crash:ab;hang:cd:2@1.5;corrupt:*"
        assert FaultPlan.parse(FaultPlan.parse(spec).describe()) == \
            FaultPlan.parse(spec)


class TestMatching:
    def test_prefix_selector(self):
        fault = Fault(kind="crash", selector="ab12")
        assert fault.matches(FP, 0)
        assert not fault.matches("ff" + FP[2:], 0)

    def test_star_matches_everything(self):
        assert Fault(kind="crash", selector="*").matches(FP, 0)

    def test_count_bounds_attempts(self):
        fault = Fault(kind="crash", selector="*", count=2)
        assert fault.matches(FP, 0)
        assert fault.matches(FP, 1)
        assert not fault.matches(FP, 2)

    def test_first_match_wins(self):
        plan = FaultPlan.parse("corrupt:ab;crash:*")
        assert plan.fault_for(FP, 0).kind == "corrupt"
        assert plan.fault_for("ff" + FP[2:], 0).kind == "crash"

    def test_no_fingerprint_never_matches(self):
        plan = FaultPlan.parse("crash:*")
        assert plan.fault_for(None, 0) is None


class TestActivePlan:
    def test_no_plan_by_default(self):
        assert faults.active_plan() is None

    def test_env_plan(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "crash:ab")
        plan = faults.active_plan()
        assert plan is not None
        assert plan.faults[0].selector == "ab"

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "crash:ab")
        faults.install(FaultPlan.parse("corrupt:cd"))
        assert faults.active_plan().faults[0].kind == "corrupt"
        faults.install(None)
        assert faults.active_plan().faults[0].kind == "crash"


class TestInjection:
    def test_clean_cell_is_untouched(self):
        faults.install(FaultPlan.parse("crash:ff"))
        assert faults.inject_before(FP, 0) is None

    def test_crash_raises(self):
        faults.install(FaultPlan.parse("crash:ab"))
        with pytest.raises(InjectedCrash, match="injected crash"):
            faults.inject_before(FP, 0)

    def test_crash_exhausted_after_count(self):
        faults.install(FaultPlan.parse("crash:ab:2"))
        for attempt in (0, 1):
            with pytest.raises(InjectedCrash):
                faults.inject_before(FP, attempt)
        assert faults.inject_before(FP, 2) is None

    def test_corrupt_returns_the_fault(self):
        faults.install(FaultPlan.parse("corrupt:ab"))
        fault = faults.inject_before(FP, 0)
        assert fault is not None and fault.kind == "corrupt"

    def test_hang_sleeps_then_continues(self):
        import time

        faults.install(FaultPlan.parse("hang:ab@0.05"))
        started = time.perf_counter()
        assert faults.inject_before(FP, 0) is None
        assert time.perf_counter() - started >= 0.05

    def test_abort_degrades_to_crash_outside_workers(self):
        # An abort fault in the parent process must never _exit the
        # test runner; it raises like a crash instead.
        faults.install(FaultPlan.parse("abort:ab"))
        with pytest.raises(InjectedCrash, match="injected abort"):
            faults.inject_before(FP, 0)

    def test_corrupt_sentinel_is_not_a_result(self):
        from repro.exec.resilience import validate_result

        assert validate_result(CORRUPT_SENTINEL) is not None
