"""Unit tests for the PRAC/MOAT counters and timing model."""

import pytest

from repro.dram.timing import DDR5Timing, ns
from repro.trackers.prac import PracCounters


class TestCounters:
    def test_counts_per_row(self):
        counters = PracCounters(num_banks=2, alert_threshold=10)
        for _ in range(5):
            assert counters.record(0, 7) is False
        assert counters.max_count() == 5

    def test_alert_at_threshold(self):
        counters = PracCounters(num_banks=2, alert_threshold=3)
        counters.record(0, 7)
        counters.record(0, 7)
        assert counters.record(0, 7) is True
        assert counters.alerts == 1

    def test_counter_resets_after_alert(self):
        counters = PracCounters(num_banks=2, alert_threshold=3)
        for _ in range(3):
            counters.record(0, 7)
        assert counters.counts[0][7] == 0

    def test_banks_independent(self):
        counters = PracCounters(num_banks=2, alert_threshold=3)
        counters.record(0, 7)
        counters.record(1, 7)
        assert counters.counts[0][7] == 1
        assert counters.counts[1][7] == 1

    def test_window_reset(self):
        counters = PracCounters(num_banks=2, alert_threshold=10)
        counters.record(0, 7)
        counters.reset()
        assert counters.max_count() == 0

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            PracCounters(num_banks=1, alert_threshold=0)

    def test_never_exceeds_threshold(self):
        # MOAT's guarantee: no row crosses ATH without an alert.
        counters = PracCounters(num_banks=1, alert_threshold=50)
        for i in range(10_000):
            counters.record(0, i % 7)
            assert counters.max_count() < 50


class TestIntrinsicTimingModel:
    def test_trp_extension_is_the_intrinsic_tax(self):
        # PRAC stretches precharge from 14 to 36 ns: every row-buffer
        # miss to a conflicting row pays 22 ns more.
        prac = DDR5Timing.prac()
        jedec = DDR5Timing.jedec()
        assert prac.t_rp - jedec.t_rp == ns(22)

    def test_row_cycle_grows(self):
        assert DDR5Timing.prac().t_rc > DDR5Timing.jedec().t_rc
