"""Property tests for the deployment planner: total and never-raising."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deployment import (Design, plan_deployment,
                                   validate_deployment)


class TestValidatorTotality:
    @given(design=st.sampled_from(list(Design)),
           t_rh=st.integers(min_value=-10, max_value=100_000),
           atm=st.integers(min_value=1, max_value=100),
           limited=st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_never_raises(self, design, t_rh, atm, limited):
        plan = validate_deployment(design, t_rh, atm_threshold=atm,
                                   rate_limited=limited)
        # Totality: a plan always comes back, renderable, with findings
        # explaining any rejection.
        assert plan.describe()
        if not plan.ok:
            assert plan.findings

    @given(t_rh=st.integers(min_value=125, max_value=50_000),
           budget=st.floats(min_value=0.1, max_value=50.0,
                            allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_planner_always_returns_buildable_plan(self, t_rh, budget):
        plan = plan_deployment(t_rh, budget)
        assert plan.ok
        assert plan.sram_bytes_per_bank >= 0

    @given(t_rh=st.sampled_from([125, 250, 500, 1000, 2000, 4000]))
    def test_tighter_budget_never_picks_costlier_design(self, t_rh):
        generous = plan_deployment(t_rh, slowdown_budget_percent=50.0)
        tight = plan_deployment(t_rh, slowdown_budget_percent=0.5)
        # A tight budget must fall back to the near-zero-slowdown
        # counter design.
        assert tight.design is Design.DREAM_C
        assert generous.ok and tight.ok
