"""Smoke + structure tests for every experiment in the registry.

The simulation-backed experiments run with a tiny request budget and a
two-workload subset (monkeypatched quick set), checking result structure
and first-order orderings rather than absolute values; the full sweeps
live in ``benchmarks/``.
"""

import pytest

from repro.experiments import registry
from repro.experiments.common import ExperimentResult
from repro.workloads.builder import clear_cache

#: Tiny per-core budget for the smoke runs.
BUDGET = 800

#: Experiments that are pure analytics (fast at any size).
ANALYTIC = ("table1", "table4", "table6", "fig11", "dos",
            "ablation-rate-limit")

#: Experiments backed by full simulation sweeps.
SIMULATED = ("fig5", "fig9", "fig10", "fig15", "fig17", "fig19", "fig22",
             "fig23", "table3", "table5", "table7", "ablation-atm",
             "ablation-vertical", "ablation-window-scaling",
             "ablation-mlp", "ablation-page-policy",
             "ablation-scheduler", "motivation-trr",
             "motivation-prac-extrinsic")


@pytest.fixture(autouse=True)
def tiny_quick_subset(monkeypatch):
    clear_cache()
    monkeypatch.setattr("repro.workloads.profiles.QUICK_SUBSET",
                        ("blender", "add"))
    yield
    clear_cache()


class TestRegistry:
    def test_all_experiments_present(self):
        # 16 paper tables/figures + 2 motivation studies + 7 ablations.
        assert len(registry.names()) == 25
        assert len(registry.ABLATIONS) == 7
        assert len(registry.MOTIVATION) == 2

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            registry.get("fig99")

    def test_paper_order(self):
        names = registry.names()
        assert names.index("fig5") < names.index("fig9") < \
            names.index("fig19")


@pytest.mark.parametrize("name", ANALYTIC)
def test_analytic_experiments_run(name):
    result = registry.get(name)(quick=True)
    assert isinstance(result, ExperimentResult)
    assert result.rows
    assert result.paper_reference
    assert name in result.render()


@pytest.mark.parametrize("name", SIMULATED)
def test_simulated_experiments_run(name):
    result = registry.get(name)(quick=True, requests_per_core=BUDGET)
    assert isinstance(result, ExperimentResult)
    assert result.rows
    rendered = result.render()
    assert result.title in rendered


class TestResultStructure:
    def test_fig9_structure_and_ordering(self):
        # A larger budget so MINT windows complete on both workloads.
        result = registry.get("fig9")(quick=True, requests_per_core=5_000)
        average = result.row_by(workload="AVERAGE")
        assert set(average) >= {"para-nrr", "para-drfmsb", "para-dream-r",
                                "mint-nrr", "mint-drfmsb", "mint-dream-r"}
        assert average["para-dream-r"] < average["para-drfmsb"]
        assert average["mint-dream-r"] < average["mint-drfmsb"]

    def test_table5_rlp_ordering(self):
        result = registry.get("table5")(quick=True,
                                        requests_per_core=5_000)
        rlp = {row["design"]: row["average_rlp"] for row in result.rows}
        assert rlp["para-dream-r"] > rlp["para-drfmsb"]
        assert rlp["mint-dream-r"] > rlp["mint-drfmsb"]
        assert rlp["mint-dream-r"] <= 8.0

    def test_row_by_raises_on_missing(self):
        result = registry.get("table1")(quick=True)
        with pytest.raises(KeyError):
            result.row_by(t_rh=123456)

    def test_table6_matches_paper_exactly(self):
        result = registry.get("table6")(quick=True)
        for row in result.rows:
            assert row["dream_c_kb_per_bank"] == pytest.approx(
                row["paper_dream_kb"], rel=0.01)

    def test_to_json_round_trips(self):
        import json

        result = registry.get("table1")(quick=True)
        decoded = json.loads(result.to_json())
        assert decoded["experiment"] == "table1"
        assert len(decoded["rows"]) == len(result.rows)
        assert decoded["rows"][0]["entries"] == 4800
