"""Unit tests for the memory-trace container."""

import numpy as np
import pytest

from repro.dram.address import MOPMapper
from repro.workloads.trace import MemoryTrace


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            MemoryTrace("bad", np.zeros(2, dtype=np.int8),
                        np.zeros(3, dtype=np.int16),
                        np.zeros(2, dtype=np.int64),
                        np.zeros(2, dtype=np.int64))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            MemoryTrace("bad", np.zeros(0, dtype=np.int8),
                        np.zeros(0, dtype=np.int16),
                        np.zeros(0, dtype=np.int64),
                        np.zeros(0, dtype=np.int64))

    def test_len(self):
        trace = MemoryTrace("t", np.zeros(4, dtype=np.int8),
                            np.zeros(4, dtype=np.int16),
                            np.zeros(4, dtype=np.int64),
                            np.zeros(4, dtype=np.int64))
        assert len(trace) == 4


class TestFromLines:
    def test_matches_scalar_mapper(self, organization):
        mapper = MOPMapper(organization)
        lines = np.array([0, 5, 999, 123_456], dtype=np.int64)
        gaps = np.zeros(len(lines), dtype=np.int64)
        trace = MemoryTrace.from_lines("t", lines, gaps, mapper)
        for i, line in enumerate(lines):
            loc = mapper.map_line(int(line))
            assert trace.subchannel[i] == loc.subchannel
            assert trace.bank[i] == loc.bank
            assert trace.row[i] == loc.row

    def test_vectorized_decode_large(self, organization):
        mapper = MOPMapper(organization)
        rng = np.random.default_rng(3)
        lines = rng.integers(mapper.total_lines, size=500)
        trace = MemoryTrace.from_lines(
            "t", lines, np.zeros(500, dtype=np.int64), mapper)
        sample = rng.integers(500, size=50)
        for i in sample:
            loc = mapper.map_line(int(lines[i]))
            assert (trace.subchannel[i], trace.bank[i], trace.row[i]) == \
                (loc.subchannel, loc.bank, loc.row)


class TestHelpers:
    def test_scaled_gaps(self, organization):
        mapper = MOPMapper(organization)
        trace = MemoryTrace.from_lines(
            "t", np.arange(10), np.full(10, 100, dtype=np.int64), mapper)
        doubled = trace.scaled_gaps(2.0)
        assert (doubled.gap_ps == 200).all()
        assert (trace.gap_ps == 100).all()  # original untouched

    def test_activations_per_row(self, organization):
        mapper = MOPMapper(organization)
        lines = np.array([0, 0, 1, 4], dtype=np.int64)
        trace = MemoryTrace.from_lines(
            "t", lines, np.zeros(4, dtype=np.int64), mapper)
        counts = trace.activations_per_row(
            organization.subchannels, organization.banks,
            organization.rows_per_bank)
        # Lines 0, 0, 1 share the first chunk (same bank/row).
        first = mapper.map_line(0)
        assert counts[(first.subchannel, first.bank, first.row)] == 3
        second = mapper.map_line(4)
        assert counts[(second.subchannel, second.bank, second.row)] == 1
