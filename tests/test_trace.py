"""Unit tests for the memory-trace container."""

import numpy as np
import pytest

from repro.dram.address import MOPMapper
from repro.workloads.trace import MemoryTrace


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            MemoryTrace("bad", np.zeros(2, dtype=np.int8),
                        np.zeros(3, dtype=np.int16),
                        np.zeros(2, dtype=np.int64),
                        np.zeros(2, dtype=np.int64))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            MemoryTrace("bad", np.zeros(0, dtype=np.int8),
                        np.zeros(0, dtype=np.int16),
                        np.zeros(0, dtype=np.int64),
                        np.zeros(0, dtype=np.int64))

    def test_len(self):
        trace = MemoryTrace("t", np.zeros(4, dtype=np.int8),
                            np.zeros(4, dtype=np.int16),
                            np.zeros(4, dtype=np.int64),
                            np.zeros(4, dtype=np.int64))
        assert len(trace) == 4


class TestFromLines:
    def test_matches_scalar_mapper(self, organization):
        mapper = MOPMapper(organization)
        lines = np.array([0, 5, 999, 123_456], dtype=np.int64)
        gaps = np.zeros(len(lines), dtype=np.int64)
        trace = MemoryTrace.from_lines("t", lines, gaps, mapper)
        for i, line in enumerate(lines):
            loc = mapper.map_line(int(line))
            assert trace.subchannel[i] == loc.subchannel
            assert trace.bank[i] == loc.bank
            assert trace.row[i] == loc.row

    def test_vectorized_decode_large(self, organization):
        mapper = MOPMapper(organization)
        rng = np.random.default_rng(3)
        lines = rng.integers(mapper.total_lines, size=500)
        trace = MemoryTrace.from_lines(
            "t", lines, np.zeros(500, dtype=np.int64), mapper)
        sample = rng.integers(500, size=50)
        for i in sample:
            loc = mapper.map_line(int(lines[i]))
            assert (trace.subchannel[i], trace.bank[i], trace.row[i]) == \
                (loc.subchannel, loc.bank, loc.row)


class TestHelpers:
    def test_scaled_gaps(self, organization):
        mapper = MOPMapper(organization)
        trace = MemoryTrace.from_lines(
            "t", np.arange(10), np.full(10, 100, dtype=np.int64), mapper)
        doubled = trace.scaled_gaps(2.0)
        assert (doubled.gap_ps == 200).all()
        assert (trace.gap_ps == 100).all()  # original untouched

    def test_activations_per_row(self, organization):
        mapper = MOPMapper(organization)
        lines = np.array([0, 0, 1, 4], dtype=np.int64)
        trace = MemoryTrace.from_lines(
            "t", lines, np.zeros(4, dtype=np.int64), mapper)
        counts = trace.activations_per_row(
            organization.subchannels, organization.banks,
            organization.rows_per_bank)
        # Lines 0, 0, 1 share the first chunk (same bank/row).
        first = mapper.map_line(0)
        assert counts[(first.subchannel, first.bank, first.row)] == 3
        second = mapper.map_line(4)
        assert counts[(second.subchannel, second.bank, second.row)] == 1


class TestColumnsMemoization:
    """Per-dtype memoization of :meth:`MemoryTrace.columns` (PR 7)."""

    def _trace(self):
        return MemoryTrace("t",
                           np.array([0, 1, 0, 1], dtype=np.int8),
                           np.array([3, 2, 1, 0], dtype=np.int16),
                           np.array([5, 6, 7, 8], dtype=np.int64),
                           np.array([10, 20, 30, 40], dtype=np.int64))

    def test_default_columns_are_python_lists(self):
        columns = self._trace().columns()
        assert all(isinstance(column, list) for column in columns)
        assert columns[2] == [5, 6, 7, 8]
        assert all(isinstance(value, int) for value in columns[2])

    def test_dtype_columns_are_contiguous_arrays(self):
        columns = self._trace().columns(dtype=np.int64)
        assert all(isinstance(column, np.ndarray) for column in columns)
        assert all(column.dtype == np.int64 for column in columns)
        assert all(column.flags["C_CONTIGUOUS"] for column in columns)

    def test_each_dtype_memoized_independently(self):
        """The scalar and batched engines must not rebuild (or clobber)
        each other's columns on alternating calls."""
        trace = self._trace()
        plain = trace.columns()
        wide = trace.columns(dtype=np.int64)
        assert trace.columns() is plain
        assert trace.columns(dtype=np.int64) is wide
        # Alternating access keeps both cached (the pre-PR-7 one-slot
        # cache silently rebuilt on every dtype switch).
        assert trace.columns() is plain
        assert trace.columns(dtype="int64") is wide  # dtype-key, not str

    def test_invalidate_drops_every_dtype(self):
        trace = self._trace()
        plain = trace.columns()
        wide = trace.columns(dtype=np.int64)
        trace.row[0] = 99
        trace.invalidate_columns()
        assert trace.columns() is not plain
        assert trace.columns()[2][0] == 99
        fresh = trace.columns(dtype=np.int64)
        assert fresh is not wide
        assert fresh[2][0] == 99

    def test_invalidate_drops_batched_word_packing(self):
        """The batched engine memoizes its packed trace words on the
        same cache, so invalidation covers them too."""
        from repro.sim.batched import run_simulation_batched
        from repro.sim.config import SimConfig, SystemConfig
        from repro.sim.runner import run_simulation_reference
        from repro.workloads.builder import build_traces

        system = SystemConfig.baseline(refs_per_window=32)
        sim = SimConfig(requests_per_core=50, seed=1)
        traces = build_traces("mcf", system, sim, calibrate=False)
        run_simulation_batched(system, traces, sim, None, "none")
        assert any("_columns_cache" in trace.__dict__
                   for trace in traces)
        for trace in traces:
            trace.invalidate_columns()
            assert "_columns_cache" not in trace.__dict__
        # Still byte-identical after the caches were dropped.
        batched = run_simulation_batched(system, traces, sim, None,
                                         "none")
        reference = run_simulation_reference(system, traces, sim, None,
                                             "none")
        assert batched.to_json() == reference.to_json()
