"""Unit tests for the live sweep progress reporter."""

import io

import pytest

from repro.obs import Telemetry
from repro.obs import runtime as obs_runtime
from repro.obs.progress import EWMA_ALPHA, SweepProgress


class _Tty(io.StringIO):
    def isatty(self) -> bool:
        return True


class TestRendering:
    def test_tty_renders_overwriting_line(self):
        stream = _Tty()
        progress = SweepProgress(stream=stream)
        progress.add_cells(2)
        progress.record("computed", seconds=1.0)
        out = stream.getvalue()
        assert "\r[repro.exec] 0/2 cells" in out
        assert "1/2 cells  computed=1" in out
        assert "eta 1s" in out
        progress.finish()
        assert stream.getvalue().endswith("\n")

    def test_finish_is_idempotent(self):
        stream = _Tty()
        progress = SweepProgress(stream=stream)
        progress.add_cells(1)
        progress.finish()
        progress.finish()
        assert stream.getvalue().count("\n") == 1

    def test_non_tty_prints_plain_lines(self):
        stream = io.StringIO()
        progress = SweepProgress(stream=stream, plain_interval_s=0.0)
        progress.add_cells(3)
        progress.record("hit")
        progress.finish()
        out = stream.getvalue()
        assert "\r" not in out
        lines = out.splitlines()
        assert lines[0] == "[repro.exec] 0/3 cells"
        assert any("1/3 cells  hit=1" in line for line in lines)
        assert lines[-1].endswith("done")

    def test_non_tty_throttles_between_updates(self):
        stream = io.StringIO()
        progress = SweepProgress(stream=stream, plain_interval_s=3600.0)
        progress.add_cells(3)
        for _ in range(3):
            progress.record("computed", seconds=0.0)
        progress.finish()
        # Only the opening line and the final summary get through.
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0] == "[repro.exec] 0/3 cells"
        assert lines[1] == "[repro.exec] 3/3 cells  computed=3  done"

    def test_non_tty_finish_is_idempotent_until_new_cells(self):
        stream = io.StringIO()
        progress = SweepProgress(stream=stream, plain_interval_s=3600.0)
        progress.add_cells(1)
        progress.finish()
        progress.finish()
        assert stream.getvalue().count("done") == 1
        progress.add_cells(1)
        progress.finish()
        assert stream.getvalue().count("done") == 2

    def test_shorter_line_is_padded_clean(self):
        stream = _Tty()
        progress = SweepProgress(stream=stream)
        progress.add_cells(2)
        progress.record("computed", seconds=123456.0)
        progress.record("computed")
        # Every rendered line at least as wide as the widest one so far.
        lines = stream.getvalue().split("\r")[1:]
        assert len(lines[-1]) >= len(max(lines, key=len).rstrip())


class TestAccounting:
    def test_done_kinds_advance_completion(self):
        progress = SweepProgress(stream=io.StringIO())
        progress.add_cells(4)
        for kind in ("computed", "hit", "resumed"):
            progress.record(kind)
        progress.record("retried")
        progress.record("failed")
        assert progress.done == 3
        assert progress.counts["retried"] == 1
        assert progress.counts["failed"] == 1

    def test_unknown_kind_raises(self):
        progress = SweepProgress(stream=io.StringIO())
        with pytest.raises(ValueError, match="unknown progress event"):
            progress.record("teleported")

    def test_eta_is_ewma_times_remaining(self):
        progress = SweepProgress(stream=io.StringIO())
        progress.add_cells(3)
        assert progress.eta_s is None
        progress.record("computed", seconds=2.0)
        assert progress.eta_s == pytest.approx(2.0 * 2)
        progress.record("computed", seconds=4.0)
        expected = 2.0 + EWMA_ALPHA * (4.0 - 2.0)
        assert progress.eta_s == pytest.approx(expected * 1)


class TestMetricsMirror:
    def test_events_mirror_into_ambient_registry(self):
        telemetry = Telemetry()
        progress = SweepProgress(stream=io.StringIO())
        with obs_runtime.activated(telemetry):
            progress.add_cells(2)
            progress.record("computed")
            progress.record("hit")
        counters = telemetry.registry
        assert counters.counter("exec.progress.submitted").value == 2
        assert counters.counter("exec.progress.computed").value == 1
        assert counters.counter("exec.progress.hit").value == 1

    def test_mirrored_counters_stay_out_of_metrics_section(self):
        telemetry = Telemetry()
        with obs_runtime.activated(telemetry):
            SweepProgress(stream=io.StringIO()).add_cells(1)
        snapshot = telemetry.snapshot()
        assert "exec.progress.submitted" in snapshot["exec"]
        assert "exec.progress.submitted" not in snapshot["metrics"]

    def test_no_ambient_telemetry_is_fine(self):
        progress = SweepProgress(stream=io.StringIO())
        progress.add_cells(1)
        progress.record("computed")
