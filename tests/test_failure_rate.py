"""Tests validating the Appendix A failure models empirically."""

import pytest

from repro.analysis.failure_rate import (compare_tail,
                                         coupled_tail_comparison,
                                         delay_inflation,
                                         dream_r_tail_comparison,
                                         mint_exposure_bound,
                                         sample_coupled_epochs,
                                         sample_dream_r_epochs)

import numpy as np


class TestEpochSampling:
    def test_coupled_mean(self):
        rng = np.random.default_rng(1)
        epochs = sample_coupled_epochs(1 / 100, 100_000, rng)
        assert np.mean(epochs) == pytest.approx(100, rel=0.05)

    def test_dream_r_mean_doubles(self):
        rng = np.random.default_rng(1)
        epochs = sample_dream_r_epochs(1 / 100, 100_000, rng)
        assert np.mean(epochs) == pytest.approx(200, rel=0.05)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            sample_coupled_epochs(1.5, 10, np.random.default_rng(1))


class TestTailModels:
    def test_coupled_matches_exponential(self):
        # At pT = 5 the tail is ~e^-5 ~ 0.0067: well sampled at 200K.
        comparison = coupled_tail_comparison(1 / 100, 500)
        assert comparison.ratio == pytest.approx(1.0, abs=0.15)

    def test_dream_r_matches_gamma(self):
        # Equation 1: (1 + pT) e^(-pT) at pT = 5 ~ 0.040.
        comparison = dream_r_tail_comparison(1 / 100, 500)
        assert comparison.ratio == pytest.approx(1.0, abs=0.15)

    def test_delay_inflates_failures(self):
        # At pT = 5 the model predicts (1 + pT) = 6x inflation.
        inflation = delay_inflation(1 / 100, 500)
        assert inflation == pytest.approx(6.0, rel=0.25)

    def test_inflation_grows_with_threshold(self):
        # (1 + pT) grows with T: the gap between the tails widens.
        low = delay_inflation(1 / 50, 150, seed=7)
        high = delay_inflation(1 / 50, 400, seed=7)
        assert high > low

    def test_compare_tail_fields(self):
        epochs = np.array([10, 20, 30, 40])
        comparison = compare_tail(epochs, 25, analytic=0.5)
        assert comparison.empirical == 0.5
        assert comparison.ratio == 1.0
        assert comparison.samples == 4


class TestMintExposure:
    def test_bounded_by_two_windows(self):
        assert mint_exposure_bound(100, 50_000) <= 2 * 100

    def test_scales_with_window(self):
        assert mint_exposure_bound(50, 50_000) <= \
            mint_exposure_bound(200, 50_000)
