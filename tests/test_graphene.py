"""Unit tests for Graphene (Misra-Gries tracking)."""

import pytest

from repro.trackers.graphene import (MisraGriesTable, entries_for_threshold,
                                     storage_kb_per_bank)


class TestStorageModel:
    def test_table1_entries(self):
        assert entries_for_threshold(1000) == 1200
        assert entries_for_threshold(500) == 2400
        assert entries_for_threshold(250) == 4800

    def test_table1_storage(self):
        assert storage_kb_per_bank(1000) == pytest.approx(4.1, abs=0.1)
        assert storage_kb_per_bank(500) == pytest.approx(7.9, abs=0.2)
        assert storage_kb_per_bank(250) == pytest.approx(15.2, abs=0.3)

    def test_table6_storage_at_125(self):
        assert storage_kb_per_bank(125) == pytest.approx(29.3, abs=0.5)

    def test_storage_doubles_as_threshold_halves(self):
        assert storage_kb_per_bank(250) / storage_kb_per_bank(500) == \
            pytest.approx(2.0, rel=0.1)


class TestMisraGries:
    def test_counts_hits(self):
        table = MisraGriesTable(0, entries=4, threshold=100)
        for _ in range(5):
            table.observe(0, 7)
        assert table.estimated_count(7) == 5

    def test_demand_at_threshold(self):
        table = MisraGriesTable(0, entries=4, threshold=3)
        demands = []
        for _ in range(7):
            demands.extend(table.observe(0, 7))
        # Crossings at counts 3 and 6.
        assert len(demands) == 2
        assert all(d.row == 7 for d in demands)

    def test_wrong_bank_rejected(self):
        table = MisraGriesTable(0, entries=4, threshold=3)
        with pytest.raises(ValueError):
            table.observe(1, 7)

    def test_spill_absorbs_overflow(self):
        table = MisraGriesTable(0, entries=2, threshold=100)
        table.observe(0, 1)
        table.observe(0, 2)
        table.observe(0, 3)  # table full, min count (1) > spill (0)
        assert table.spill == 1
        assert 3 not in table.counts

    def test_replacement_at_spill_level(self):
        table = MisraGriesTable(0, entries=2, threshold=100)
        table.observe(0, 1)
        table.observe(0, 2)
        table.observe(0, 3)  # spill -> 1
        table.observe(0, 4)  # row 1 or 2 is at count 1 == spill: replaced
        assert 4 in table.counts
        assert table.counts[4] == 2  # spill + 1

    def test_estimated_count_lower_bounded_by_spill(self):
        table = MisraGriesTable(0, entries=1, threshold=100)
        table.observe(0, 1)
        table.observe(0, 2)
        table.observe(0, 3)
        assert table.estimated_count(99) == table.spill

    def test_reset(self):
        table = MisraGriesTable(0, entries=4, threshold=3)
        for _ in range(5):
            table.observe(0, 7)
        table.reset()
        assert table.counts == {}
        assert table.spill == 0

    def test_guarantee_no_heavy_hitter_escapes(self):
        # Misra-Gries invariant: with K entries, a row activated more than
        # threshold times must generate at least one demand, provided
        # K >= total_activations / threshold.
        total, threshold = 600, 50
        table = MisraGriesTable(0, entries=total // threshold,
                                threshold=threshold)
        demands = []
        # Hot row interleaved with noise rows.
        for i in range(total // 2):
            demands.extend(table.observe(0, 7))
            demands.extend(table.observe(0, 1000 + i))
        assert any(d.row == 7 for d in demands)

    def test_storage_bits_positive(self):
        table = MisraGriesTable(0, entries=10, threshold=50)
        assert table.storage_bits() == 10 * (17 + 1 + 7)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            MisraGriesTable(0, entries=0, threshold=1)
