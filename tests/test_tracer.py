"""Tests for command tracing and DRAM-protocol verification."""

import pytest

from repro.core.dream_r import dream_r_para_factory
from repro.dram.commands import Command
from repro.dram.subchannel import SubChannel
from repro.mc.controller import SubChannelController
from repro.mc.mitigation import coupled_para_factory
from repro.mc.tracer import CommandTracer, verify_protocol


def traced_controller(timing, organization, policy=None):
    subchannel = SubChannel(0, timing, organization.banks,
                            organization.banks_per_group)
    controller = SubChannelController(subchannel, timing, policy)
    tracer = CommandTracer()
    controller.attach_tracer(tracer)
    return controller, tracer


class TestTracing:
    def test_act_recorded_per_miss(self, timing, organization):
        controller, tracer = traced_controller(timing, organization)
        finish = controller.service(0, 5, 0)
        controller.service(0, 5, finish)  # row hit: no command
        assert tracer.count(Command.ACT) == 1
        act = tracer.per_bank(0)[0]
        assert act.command is Command.ACT
        assert act.row == 5

    def test_conflict_records_pre(self, timing, organization):
        controller, tracer = traced_controller(timing, organization)
        controller.service(0, 5, 0)
        controller.service(0, 6, 10 ** 6)
        assert tracer.count(Command.PRE) == 1
        assert tracer.count(Command.ACT) == 2

    def test_ref_recorded(self, timing, organization):
        controller, tracer = traced_controller(timing, organization)
        controller.service(0, 5, timing.t_refi * 2 + 1)
        assert tracer.count(Command.REF) == 2

    def test_explicit_sample_sequence(self, timing, organization):
        controller, tracer = traced_controller(timing, organization)
        controller.explicit_sample(3, 77, 0)
        kinds = [issued.command for issued in tracer.per_bank(3)]
        assert kinds == [Command.ACT, Command.PRE_SAMPLE]

    def test_mitigation_commands_recorded(self, timing, organization,
                                          context):
        policy = coupled_para_factory(2000)(context)
        policy.probability = 1.0
        controller, tracer = traced_controller(timing, organization,
                                               policy)
        controller.service(0, 5, 0)
        assert tracer.count(Command.DRFM_SB) == 1
        assert tracer.count(Command.PRE_SAMPLE) == 1

    def test_capacity_bound(self, timing, organization):
        controller, tracer = traced_controller(timing, organization)
        tracer.capacity = 2
        finish = 0
        for row in range(5):
            finish = controller.service(0, row, finish + 10 ** 6)
        assert len(tracer.commands) == 2
        assert tracer.dropped > 0

    def test_tail_renders(self, timing, organization):
        controller, tracer = traced_controller(timing, organization)
        controller.service(0, 5, 0)
        assert "ACT" in tracer.tail()


class TestRingBuffer:
    def test_oldest_entries_drop_first(self):
        tracer = CommandTracer(capacity=3)
        for row in range(5):
            tracer.record(row * 10, Command.ACT, bank=0, row=row)
        assert [issued.row for issued in tracer.commands] == [2, 3, 4]
        assert tracer.dropped == 2

    def test_dropped_counts_every_eviction(self):
        tracer = CommandTracer(capacity=1)
        for row in range(10):
            tracer.record(row, Command.ACT, bank=0, row=row)
        assert tracer.dropped == 9
        assert len(tracer.commands) == 1

    def test_shrinking_capacity_trims_on_next_record(self):
        tracer = CommandTracer(capacity=10)
        for row in range(10):
            tracer.record(row, Command.ACT, bank=0, row=row)
        tracer.capacity = 4
        tracer.record(100, Command.ACT, bank=0, row=99)
        assert len(tracer.commands) == 4
        assert [issued.row for issued in tracer.commands] == \
            [7, 8, 9, 99]

    def test_tail_shows_most_recent_after_wrap(self):
        tracer = CommandTracer(capacity=2)
        for row in range(4):
            tracer.record(row, Command.ACT, bank=0, row=row)
        tail = tracer.tail(1)
        assert ".r3" in tail
        assert len(tail.splitlines()) == 1

    def test_no_drops_below_capacity(self):
        tracer = CommandTracer(capacity=100)
        tracer.record(0, Command.ACT, bank=0, row=1)
        assert tracer.dropped == 0
        assert len(tracer.commands) == 1


class TestTruncatedWindowChecker:
    def test_leading_pre_after_drop_is_not_a_violation(self):
        tracer = CommandTracer(capacity=2)
        tracer.record(0, Command.ACT, bank=0, row=1)   # dropped
        tracer.record(10, Command.PRE, bank=0)          # window starts
        tracer.record(20, Command.ACT, bank=0, row=2)
        assert tracer.dropped == 1
        assert verify_protocol(tracer) == []

    def test_violations_after_first_sighting_still_caught(self):
        tracer = CommandTracer(capacity=3)
        tracer.record(0, Command.PRE, bank=9)            # dropped
        tracer.record(10, Command.ACT, bank=0, row=1)   # establishes state
        tracer.record(20, Command.ACT, bank=0, row=2)   # real double-ACT
        tracer.record(30, Command.PRE, bank=0)
        assert tracer.dropped == 1
        violations = verify_protocol(tracer)
        assert len(violations) == 1
        assert "ACT while row" in violations[0].reason

    def test_ref_resynchronizes_truncated_window(self):
        tracer = CommandTracer(capacity=3)
        tracer.record(0, Command.ACT, bank=5, row=3)    # dropped
        tracer.record(10, Command.REF, bank=None)
        tracer.record(20, Command.PRE, bank=0)          # after REF: orphan
        tracer.record(30, Command.ACT, bank=0, row=1)
        assert tracer.dropped == 1
        violations = verify_protocol(tracer)
        assert violations and "no open row" in violations[0].reason

    def test_untruncated_trace_keeps_strict_checking(self):
        tracer = CommandTracer()
        tracer.record(0, Command.PRE, bank=0)
        assert tracer.dropped == 0
        assert verify_protocol(tracer) != []

    def test_wrapped_full_run_still_verifies(self, timing, organization):
        controller, tracer = traced_controller(timing, organization)
        tracer.capacity = 64
        finish = 0
        for i in range(500):
            finish = controller.service(i % 8, (i * 7) % 64, finish)
        assert tracer.dropped > 0
        assert verify_protocol(tracer) == []


class TestProtocolChecker:
    def test_clean_simulation_has_no_violations(self, timing,
                                                organization, context):
        policy = dream_r_para_factory(2000)(context)
        controller, tracer = traced_controller(timing, organization,
                                               policy)
        finish = 0
        for i in range(500):
            finish = controller.service(i % 8, (i * 7) % 64, finish)
        assert verify_protocol(tracer) == []
        assert tracer.count(Command.ACT) > 0

    def test_detects_double_act(self):
        tracer = CommandTracer()
        tracer.record(0, Command.ACT, bank=0, row=1)
        tracer.record(10, Command.ACT, bank=0, row=2)
        violations = verify_protocol(tracer)
        assert len(violations) == 1
        assert "ACT while row" in violations[0].reason

    def test_detects_orphan_precharge(self):
        tracer = CommandTracer()
        tracer.record(0, Command.PRE, bank=0)
        violations = verify_protocol(tracer)
        assert violations and "no open row" in violations[0].reason

    def test_ref_closes_rows(self):
        tracer = CommandTracer()
        tracer.record(0, Command.ACT, bank=0, row=1)
        tracer.record(10, Command.REF, bank=None)
        tracer.record(20, Command.ACT, bank=0, row=2)
        assert verify_protocol(tracer) == []

    def test_drfmab_closes_all_rows(self):
        tracer = CommandTracer()
        tracer.record(0, Command.ACT, bank=0, row=1)
        tracer.record(0, Command.ACT, bank=1, row=1)
        tracer.record(10, Command.DRFM_AB, bank=0)
        tracer.record(20, Command.ACT, bank=0, row=2)
        tracer.record(20, Command.ACT, bank=1, row=2)
        assert verify_protocol(tracer) == []

    def test_end_to_end_full_run_is_protocol_clean(self, small_system,
                                                   small_sim):
        # Attach tracers to a complete closed-loop run with DREAM-R and
        # verify every sub-channel's command stream is DRAM-legal.
        from repro.mc.controller import MemoryController
        from repro.cpu.core import Core
        from repro.sim.engine import EventQueue
        from repro.workloads.builder import build_traces, clear_cache

        clear_cache()
        traces = build_traces("mcf", small_system, small_sim,
                              calibrate=False)
        mc = MemoryController(small_system.organization,
                              small_system.timing,
                              dream_r_para_factory(2000), seed=1)
        tracers = []
        for controller in mc.controllers:
            tracer = CommandTracer()
            controller.attach_tracer(tracer)
            tracers.append(tracer)
        cores = [Core(i, traces[i], 800, small_system.mlp_per_core)
                 for i in range(small_system.num_cores)]
        queue = EventQueue()
        for core in cores:
            for slot in range(core.mlp):
                fetched = core.fetch(slot)
                if fetched:
                    queue.push(fetched[1], fetched[0])
        while queue:
            now, request = queue.pop()
            finish = mc.service(request.subchannel, request.bank,
                                request.row, now)
            cores[request.core].complete(finish)
            fetched = cores[request.core].fetch(request.slot)
            if fetched:
                queue.push(finish + fetched[1], fetched[0])
        for tracer in tracers:
            assert verify_protocol(tracer) == []
        clear_cache()
