"""Unit tests for Active Target-Row Monitoring."""

import pytest

from repro.core.atm import DEFAULT_ATM_THRESHOLD, ActiveTargetMonitor


class TestArming:
    def test_starts_disarmed(self):
        atm = ActiveTargetMonitor(4)
        assert atm.monitored_row(0) is None

    def test_arm_and_disarm(self):
        atm = ActiveTargetMonitor(4)
        atm.arm(1, 42)
        assert atm.monitored_row(1) == 42
        atm.disarm(1)
        assert atm.monitored_row(1) is None
        assert atm.count(1) == 0

    def test_rearm_resets_counter(self):
        atm = ActiveTargetMonitor(4, threshold=5)
        atm.arm(0, 42)
        for _ in range(3):
            atm.observe(0, 42)
        atm.arm(0, 42)
        assert atm.count(0) == 0

    def test_keeps_oldest_pending_row(self):
        # The slot holds the row with the largest delay exposure: a newer
        # arm attempt on a busy slot is rejected until disarm.
        atm = ActiveTargetMonitor(4, threshold=5)
        assert atm.arm(0, 42) is True
        assert atm.arm(0, 43) is False
        assert atm.monitored_row(0) == 42
        atm.disarm(0)
        assert atm.arm(0, 43) is True


class TestObserve:
    def test_counts_only_monitored_row(self):
        atm = ActiveTargetMonitor(4, threshold=5)
        atm.arm(0, 42)
        atm.observe(0, 41)
        atm.observe(1, 42)  # other bank
        assert atm.count(0) == 0

    def test_trigger_above_threshold(self):
        atm = ActiveTargetMonitor(4, threshold=3)
        atm.arm(0, 42)
        assert not atm.observe(0, 42)
        assert not atm.observe(0, 42)
        assert not atm.observe(0, 42)
        assert atm.observe(0, 42)  # 4th activation exceeds ATM-TH=3
        assert atm.triggers == 1

    def test_exposure_capped_at_threshold(self):
        # The security property: a monitored row can absorb at most
        # ATM-TH activations before the DRFM is forced.
        atm = ActiveTargetMonitor(1, threshold=DEFAULT_ATM_THRESHOLD)
        atm.arm(0, 7)
        hits = 0
        while not atm.observe(0, 7):
            hits += 1
        assert hits == DEFAULT_ATM_THRESHOLD


class TestStorage:
    def test_about_three_bytes_per_bank(self):
        bits = ActiveTargetMonitor.storage_bits_per_bank()
        assert bits <= 24  # the paper's ~3 bytes/bank

    def test_validation(self):
        with pytest.raises(ValueError):
            ActiveTargetMonitor(0)
        with pytest.raises(ValueError):
            ActiveTargetMonitor(1, threshold=0)
