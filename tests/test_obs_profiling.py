"""Unit tests for the wall-clock profiling helpers."""

import pytest

from repro.obs.profiling import (PhaseTimer, Profiler, Stopwatch,
                                 ThroughputGauge)


class TestStopwatch:
    def test_elapsed_is_monotonic_nonnegative(self):
        watch = Stopwatch()
        first = watch.elapsed_s
        second = watch.elapsed_s
        assert 0 <= first <= second

    def test_restart_rezeroes(self):
        watch = Stopwatch()
        _ = watch.elapsed_s
        watch.restart()
        assert watch.elapsed_s < 1.0


class TestPhaseTimer:
    def test_phase_accumulates_time_and_calls(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.phase("build"):
                pass
        snap = timer.snapshot()
        assert snap["build"]["calls"] == 3
        assert snap["build"]["seconds"] >= 0.0

    def test_add_direct(self):
        timer = PhaseTimer()
        timer.add("run", 1.25)
        timer.add("run", 0.75)
        assert timer.total("run") == pytest.approx(2.0)
        assert timer.total("never") == 0.0
        assert timer.snapshot()["run"]["seconds"] == pytest.approx(2.0)

    def test_render_orders_slowest_first(self):
        timer = PhaseTimer()
        timer.add("fast", 0.1)
        timer.add("slow", 9.0)
        rendered = timer.render()
        assert rendered.index("slow") < rendered.index("fast")

    def test_exception_inside_phase_still_counted(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("boom"):
                raise RuntimeError("x")
        assert timer.snapshot()["boom"]["calls"] == 1


class TestThroughputGauge:
    def test_events_per_sec(self):
        gauge = ThroughputGauge()
        gauge.record(1000, 2.0)
        gauge.record(1000, 2.0)
        assert gauge.events == 2000
        assert gauge.events_per_sec == pytest.approx(500.0)

    def test_zero_time_is_safe(self):
        gauge = ThroughputGauge()
        gauge.record(10, 0.0)
        assert gauge.events_per_sec == 0.0


class TestProfiler:
    def test_phase_and_snapshot(self):
        profiler = Profiler()
        with profiler.phase("sweep"):
            pass
        profiler.throughput.record(100, 0.5)
        snap = profiler.snapshot()
        assert "sweep" in snap["phases"]
        assert snap["throughput"]["events"] == 100
        assert "events/s" in profiler.render() or "sweep" in \
            profiler.render()
