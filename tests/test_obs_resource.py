"""Resource-sampler tests: gauge publication, on-demand and background
sampling, lifecycle idempotence."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.resource import (OPEN_FDS_GAUGE, RSS_GAUGE,
                                ResourceSampler, open_fds, rss_bytes)


class TestProbes:
    def test_rss_positive(self):
        # A running CPython interpreter resident set is never zero.
        assert rss_bytes() > 0

    def test_open_fds_positive(self):
        assert open_fds() > 0


class TestResourceSampler:
    def test_sample_sets_both_gauges(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry)
        values = sampler.sample()
        assert values["rss_bytes"] > 0
        assert values["open_fds"] > 0
        assert registry.get(RSS_GAUGE).value == values["rss_bytes"]
        assert registry.get(OPEN_FDS_GAUGE).value == values["open_fds"]
        assert sampler.samples == 1

    def test_start_takes_initial_sample(self):
        registry = MetricsRegistry()
        with ResourceSampler(registry, interval_s=3600) as sampler:
            # No interval has elapsed, yet gauges are already fresh.
            assert sampler.samples >= 1
            assert registry.get(RSS_GAUGE).value > 0

    def test_start_stop_idempotent(self):
        sampler = ResourceSampler(MetricsRegistry(), interval_s=3600)
        sampler.stop()  # never started: no-op
        sampler.start()
        sampler.start()  # already running: no second thread
        first_thread = sampler._thread
        sampler.start()
        assert sampler._thread is first_thread
        sampler.stop()
        sampler.stop()
        assert sampler._thread is None

    def test_background_loop_samples(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry, interval_s=0.01)
        sampler.start()
        try:
            import time
            deadline = time.monotonic() + 2.0
            while sampler.samples < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            sampler.stop()
        assert sampler.samples >= 3
