"""Tests for REF-stealing in-DRAM MINT (the Section 8 comparison)."""

import pytest

from repro.analysis.harness import AttackHarness
from repro.core.dream_r import dream_r_mint_factory
from repro.trackers.indram_mint import (effective_window,
                                        indram_mint_factory,
                                        indram_mint_threshold)
from repro.workloads.attacks import single_sided


class TestAnalytics:
    def test_section8_thresholds(self):
        # "one aggressor-row mitigation every 4 to 8 REF ... T_RH
        # approximately 6K to 12K".
        assert indram_mint_threshold(4) == 6000
        assert indram_mint_threshold(8) == 12000

    def test_effective_window(self):
        assert effective_window(4) == 300
        assert effective_window(8) == 600

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            effective_window(0)


class TestPolicyBehaviour:
    def test_mitigates_only_at_opportunities(self):
        harness = AttackHarness(indram_mint_factory(4), seed=51)
        result = harness.run(single_sided(7, 2_000), bank=0)
        # 2000 activations at ~46 ns each span ~24 tREFI: at one
        # opportunity per 4 tREFI that is at most ~6 mitigations.
        assert 1 <= result.mitigations <= 8

    def test_exposure_matches_effective_window(self):
        harness = AttackHarness(indram_mint_factory(4), seed=51)
        result = harness.run(single_sided(7, 6_000), bank=0)
        # A continuously hammered row is selected every effective window
        # and mitigated at the next opportunity: streak ~ 2 windows.
        assert result.max_unmitigated <= 3 * effective_window(4)
        assert result.max_unmitigated > effective_window(4) // 2

    def test_mc_side_mint_is_several_times_tighter(self):
        pattern = single_sided(7, 6_000)
        indram = AttackHarness(indram_mint_factory(4), seed=51)
        indram_result = indram.run(pattern, bank=0)
        mc_side = AttackHarness(dream_r_mint_factory(500), seed=51)
        mc_result = mc_side.run(pattern, bank=0)
        # The Section 8 argument: REF-stealing in-DRAM MINT tolerates
        # ~6K while MC-side MINT (DREAM-R) handles 500-class thresholds.
        assert mc_result.max_unmitigated * 3 < \
            indram_result.max_unmitigated

    def test_slower_opportunity_rate_is_weaker(self):
        pattern = single_sided(7, 8_000)
        fast = AttackHarness(indram_mint_factory(4), seed=51)
        slow = AttackHarness(indram_mint_factory(8), seed=51)
        fast_result = fast.run(pattern, bank=0)
        slow_result = slow.run(pattern, bank=0)
        assert slow_result.max_unmitigated >= fast_result.max_unmitigated
