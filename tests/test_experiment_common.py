"""Unit tests for the shared experiment machinery."""

import pytest

from repro.dram.timing import ns
from repro.experiments.common import (DesignSpec, ExperimentResult,
                                      default_sim_config, default_system,
                                      full_mode_enabled, series_rows,
                                      sweep_designs)
from repro.mc.policy import no_mitigation_factory
from repro.sim.config import SimConfig, SystemConfig
from repro.trackers.prac import moat_factory
from repro.workloads.builder import clear_cache
from repro.workloads.profiles import profiles_for


class TestDefaults:
    def test_default_system_shape(self):
        system = default_system()
        assert system.timing.refs_per_window == 32
        assert system.organization.rows_per_bank == 512
        assert system.num_cores == 8

    def test_default_system_cores(self):
        assert default_system(num_cores=16).num_cores == 16

    def test_default_sim_config_quick_vs_full(self):
        assert default_sim_config(True).requests_per_core < \
            default_sim_config(False).requests_per_core

    def test_explicit_budget_wins(self):
        assert default_sim_config(True, 123).requests_per_core == 123

    def test_full_mode_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_mode_enabled()
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_mode_enabled()


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            experiment="unit",
            title="Unit test result",
            rows=[{"a": 1, "b": 2.5}, {"a": 2, "b": 3.5}],
            paper_reference={"a": "1"},
            notes="note",
        )

    def test_render_contains_everything(self):
        text = self._result().render()
        assert "Unit test result" in text
        assert "2.50" in text
        assert "paper reference" in text
        assert "note" in text

    def test_row_by(self):
        assert self._result().row_by(a=2)["b"] == 3.5

    def test_row_by_missing(self):
        with pytest.raises(KeyError):
            self._result().row_by(a=99)

    def test_render_empty_rows(self):
        empty = ExperimentResult(experiment="e", title="t")
        assert "t" in empty.render()


class TestSweep:
    def test_prac_system_override_applies(self, small_sim):
        # The PRAC design runs on extended timings against the normal
        # baseline, so even a no-op tracker shows intrinsic slowdown.
        clear_cache()
        system = default_system()
        prac = SystemConfig.prac(system.timing.refs_per_window)
        sim = SimConfig(requests_per_core=2_000, seed=3)
        specs = [
            DesignSpec("noop", no_mitigation_factory()),
            DesignSpec("prac", moat_factory(1000), system=prac),
        ]
        series = sweep_designs(specs, system, sim,
                               workloads=profiles_for(names=["mcf"]))
        assert series["noop"].average_slowdown == pytest.approx(0.0,
                                                                abs=0.1)
        assert series["prac"].average_slowdown > 2.0
        assert prac.timing.t_rp == ns(36)
        clear_cache()

    def test_series_rows_structure(self):
        clear_cache()
        system = default_system()
        sim = SimConfig(requests_per_core=1_000, seed=3)
        specs = [DesignSpec("noop", no_mitigation_factory())]
        series = sweep_designs(specs, system, sim,
                               workloads=profiles_for(
                                   names=["blender", "add"]))
        rows = series_rows(series)
        assert [row["workload"] for row in rows] == \
            ["add", "blender", "AVERAGE"]
        assert all("noop" in row for row in rows)
        clear_cache()

    def test_series_rows_empty(self):
        assert series_rows({}) == []

    def test_series_rows_rejects_mismatched_coverage(self):
        # A design missing one workload means the sweep lost a cell;
        # rendering would silently produce a table with holes.
        from repro.analysis.slowdown import SlowdownSeries

        full = SlowdownSeries("full")
        full.slowdowns.update({"mcf": 1.0, "add": 2.0})
        partial = SlowdownSeries("partial")
        partial.slowdowns.update({"mcf": 1.5})
        with pytest.raises(ValueError, match="different workload sets"):
            series_rows({"full": full, "partial": partial})

    def test_series_rows_error_names_offending_design(self):
        from repro.analysis.slowdown import SlowdownSeries

        full = SlowdownSeries("full")
        full.slowdowns.update({"mcf": 1.0, "add": 2.0})
        partial = SlowdownSeries("partial")
        partial.slowdowns.update({"mcf": 1.5})
        with pytest.raises(ValueError, match=r"partial: \['add'\]"):
            series_rows({"full": full, "partial": partial})
