"""Client retry/backoff tests under injected transport faults.

A small in-test TCP proxy sits between a :class:`SweepClient` and a live
in-process service and misbehaves on command: resetting the next K
connections, or tearing a streaming response after N forwarded bytes.
The client is constructed with a *recording* sleep, so the tests assert
the deterministic backoff schedule verbatim — and byte-identity of the
final result after any number of reconnects.
"""

import socket
import struct
import threading

import pytest

from repro.exec.executor import SweepExecutor
from repro.experiments.common import RunOptions
from repro.service import (JobScheduler, RETRY_BACKOFF_S, ServiceError,
                           ServiceThread, SweepClient)
from repro.workloads.builder import clear_cache

OPTIONS = RunOptions(seed=11, requests_per_core=500)


@pytest.fixture(autouse=True)
def _small_world(monkeypatch):
    monkeypatch.setattr("repro.workloads.profiles.QUICK_SUBSET",
                        ("blender", "add"))
    clear_cache()
    yield
    clear_cache()


@pytest.fixture
def service():
    with JobScheduler(SweepExecutor()) as scheduler:
        with ServiceThread(scheduler) as thread:
            yield thread


@pytest.fixture
def proxy(service):
    flaky = FlakyProxy(service.port)
    yield flaky
    flaky.close()


class FlakyProxy:
    """TCP proxy with two injectable faults.

    ``reject_next = K`` resets the next K accepted connections before
    any byte flows (the client sees a transport error on request).
    ``cut_next = M`` tears the next M *successful* responses after
    ``cut_after_bytes`` forwarded bytes (the client sees a mid-stream
    disconnect).  Connections beyond the programmed faults pass through
    untouched.
    """

    def __init__(self, upstream_port: int) -> None:
        self.upstream_port = upstream_port
        self.reject_next = 0
        self.cut_next = 0
        self.cut_after_bytes = 300
        self.connections = 0
        self._lock = threading.Lock()
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.port = self._listener.getsockname()[1]
        threading.Thread(target=self._accept_loop, daemon=True).start()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass

    def _accept_loop(self) -> None:
        while True:
            try:
                downstream, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(target=self._handle, args=(downstream,),
                             daemon=True).start()

    def _handle(self, downstream: socket.socket) -> None:
        with self._lock:
            self.connections += 1
            reject = self.reject_next > 0
            if reject:
                self.reject_next -= 1
            cut = None
            if not reject and self.cut_next > 0:
                self.cut_next -= 1
                cut = self.cut_after_bytes
        if reject:
            _reset(downstream)
            return
        try:
            upstream = socket.create_connection(
                ("127.0.0.1", self.upstream_port))
        except OSError:
            downstream.close()
            return
        threading.Thread(target=_pump, args=(downstream, upstream, None),
                         daemon=True).start()
        _pump(upstream, downstream, cut)

    # _pump/_reset are module-level so both directions share them.


def _pump(source: socket.socket, sink: socket.socket,
          cut: int | None) -> None:
    """Forward source → sink; with ``cut``, hard-close both ends after
    that many forwarded bytes."""
    sent = 0
    try:
        while True:
            data = source.recv(4096)
            if not data:
                break
            if cut is not None and sent + len(data) >= cut:
                sink.sendall(data[:max(0, cut - sent)])
                _reset(sink)
                source.close()
                return
            sink.sendall(data)
            sent += len(data)
    except OSError:
        pass
    finally:
        for sock in (source, sink):
            try:
                sock.close()
            except OSError:
                pass


def _reset(sock: socket.socket) -> None:
    """Close with an RST (SO_LINGER 0) so the peer sees a reset, not a
    tidy EOF.

    The shutdown first wakes any sibling pump thread blocked in
    ``recv`` on this same socket — a blocked syscall holds the kernel's
    file description open, which would defer the RST until the peer
    sent something (for a one-way event stream: never, leaving the
    client-side read to die by socket timeout instead of reset).
    """
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
    except OSError:
        pass
    try:
        sock.shutdown(socket.SHUT_RD)
    except OSError:
        pass
    sock.close()


def _recording_client(url: str) -> tuple[SweepClient, list[float]]:
    sleeps: list[float] = []
    return SweepClient(url, sleep=sleeps.append), sleeps


class TestBackoffSchedule:
    def test_published_schedule(self):
        assert RETRY_BACKOFF_S == (0.05, 0.1, 0.2, 0.4, 0.8)
        client = SweepClient("http://127.0.0.1:1")
        assert client.backoff_s == RETRY_BACKOFF_S

    def test_connection_resets_retry_on_schedule(self, proxy):
        client, sleeps = _recording_client(proxy.url)
        proxy.reject_next = 3
        names = client.experiments()
        assert "table4" in names
        assert sleeps == list(RETRY_BACKOFF_S[:3])

    def test_exhausted_schedule_raises(self):
        # A port with no listener: every attempt fails immediately.
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        dead_port = placeholder.getsockname()[1]
        placeholder.close()
        client, sleeps = _recording_client(
            f"http://127.0.0.1:{dead_port}")
        with pytest.raises(ServiceError, match="cannot reach"):
            client.experiments()
        assert sleeps == list(RETRY_BACKOFF_S)

    def test_http_errors_are_not_retried(self, service):
        client, sleeps = _recording_client(service.url)
        with pytest.raises(ServiceError) as excinfo:
            client.job("j99")
        assert excinfo.value.status == 404
        assert sleeps == []


class TestStreamReconnect:
    def test_mid_stream_disconnects_are_invisible(self, proxy):
        client, sleeps = _recording_client(proxy.url)
        job_id = client.submit("ablation-atm", OPTIONS)
        del sleeps[:]
        proxy.cut_next = 3
        events = list(client.stream(job_id))
        # Gapless and duplicate-free despite three torn connections.
        assert [event["seq"] for event in events] == \
            list(range(len(events)))
        assert events[-1] == {"seq": events[-1]["seq"], "job": job_id,
                              "kind": "state", "state": "done"}
        assert proxy.connections >= 4  # initial + >= 1 per cut
        # Every reconnect made progress (>= 1 event arrived before the
        # cut), so each one slept exactly the schedule's first step.
        assert sleeps == [RETRY_BACKOFF_S[0]] * (proxy.connections - 2)

    def test_result_byte_identical_after_reconnects(self, proxy, service):
        flaky_client, _ = _recording_client(proxy.url)
        job_id = flaky_client.submit("ablation-atm", OPTIONS)
        proxy.cut_next = 2
        list(flaky_client.stream(job_id))  # terminal ⇒ job is done
        via_proxy = flaky_client.result(job_id, wait=False)
        direct = SweepClient(service.url).result(job_id, wait=False)
        assert via_proxy == direct

    def test_dead_stream_exhausts_and_raises(self, service):
        client, sleeps = _recording_client(service.url)
        job_id = client.submit("table4")
        client.wait(job_id)
        del sleeps[:]
        # Reconnect-storm a stream that never progresses: cursor far
        # past the log end on a terminal job still terminates...
        events = list(client.stream(job_id))
        assert events[-1]["state"] == "done"
        # ...but a stream whose transport always dies gives up after
        # the full schedule.
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        dead_port = placeholder.getsockname()[1]
        placeholder.close()
        dead_client, dead_sleeps = _recording_client(
            f"http://127.0.0.1:{dead_port}")
        with pytest.raises(ServiceError, match="cannot reach"):
            list(dead_client.stream("j1"))
        assert dead_sleeps == list(RETRY_BACKOFF_S)
