"""Observability-plane tests: health/readiness gating, the metrics
exposition, remote span export, access logging, the ``top`` dashboard,
and the determinism contract (results byte-identical with the plane on
or off)."""

import io
import json
import urllib.error
import urllib.request

import pytest

from repro import cli
from repro.exec.executor import SweepExecutor
from repro.experiments import registry
from repro.experiments.common import RunOptions
from repro.obs import Telemetry
from repro.obs import runtime as obs_runtime
from repro.obs.exporter import parse_exposition, sample_value
from repro.service import JobScheduler, ServiceThread, SweepClient
from repro.service.client import ServiceError
from repro.service.jobs import SpansUnavailable
from repro.service.server import AccessLog
from repro.workloads.builder import clear_cache

#: Small per-core budget so a job is a ~1 s ten-cell sweep.
BUDGET = 500

OPTIONS = RunOptions(seed=11, requests_per_core=BUDGET)


@pytest.fixture(autouse=True)
def _small_world(monkeypatch):
    monkeypatch.setattr("repro.workloads.profiles.QUICK_SUBSET",
                        ("blender", "add"))
    clear_cache()
    yield
    clear_cache()


@pytest.fixture
def scheduler():
    with JobScheduler(SweepExecutor()) as sched:
        yield sched


@pytest.fixture
def service(scheduler):
    with ServiceThread(scheduler) as thread:
        yield thread


@pytest.fixture
def client(service):
    return SweepClient(service.url)


def _get(url: str):
    try:
        with urllib.request.urlopen(url) as response:
            return (response.status, response.read(),
                    dict(response.getheaders()))
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def _run_cli(argv):
    import contextlib

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = cli.main(argv)
    return code, buffer.getvalue()


class TestHealthReadiness:
    def test_healthz(self, service, client):
        status, body, _headers = _get(f"{service.url}/v1/healthz")
        assert status == 200
        assert json.loads(body) == {"ok": True}
        assert client.health() == {"ok": True}

    def test_readyz_ready(self, service, client):
        status, body, _headers = _get(f"{service.url}/v1/readyz")
        assert status == 200
        checks = json.loads(body)["checks"]
        assert checks == {"worker_alive": True, "cache_writable": True,
                          "queue_below_limit": True}
        assert client.ready()["ready"] is True

    def test_readyz_503_when_queue_full(self, scheduler):
        with ServiceThread(scheduler, queue_limit=0) as service:
            status, body, headers = _get(f"{service.url}/v1/readyz")
            assert status == 503
            assert headers.get("Retry-After") == "1"
            doc = json.loads(body)
            assert doc["checks"]["queue_below_limit"] is False
            assert doc["retry_after_s"] == 1
            assert "queue_below_limit" in doc["error"]
            ready = SweepClient(service.url).ready()
            assert ready["ready"] is False

    def test_readyz_503_when_worker_dead(self, scheduler):
        with ServiceThread(scheduler) as service:
            scheduler.close()  # kills the worker thread
            status, body, _headers = _get(f"{service.url}/v1/readyz")
            assert status == 503
            assert json.loads(body)["checks"]["worker_alive"] is False


class TestSubmitGating:
    def test_submit_503_carries_retry_after_and_never_retries(
            self, scheduler):
        sleeps = []
        with ServiceThread(scheduler, queue_limit=0) as service:
            client = SweepClient(service.url, sleep=sleeps.append)
            with pytest.raises(ServiceError,
                               match="503.*retry after 1s") as excinfo:
                client.submit("table4", OPTIONS)
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after_s == 1.0
        # Job creation is single-shot: an HTTP answer is never retried,
        # so the backoff sleeper must not have fired.
        assert sleeps == []
        assert scheduler.stats()["jobs_total"] == 0

    def test_submit_allowed_when_ready(self, service, client):
        job_id = client.submit("table4", OPTIONS)
        assert client.wait(job_id)["state"] == "done"


class TestMetrics:
    def test_exposition_valid_while_job_runs(self, service, client):
        job_id = client.submit("table4", OPTIONS)
        status, body, headers = _get(f"{service.url}/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith(
            "text/plain; version=0.0.4")
        samples = parse_exposition(body.decode("utf-8"))  # strict
        assert sample_value(samples, "repro_jobs_total") == 1
        assert sample_value(samples, "repro_scheduler_worker_up") == 1
        assert sample_value(samples, "repro_queue_depth") is not None
        assert sample_value(samples, "repro_proc_rss_bytes") > 0
        assert sample_value(samples, "repro_proc_open_fds") > 0
        client.wait(job_id)

    def test_counters_update_after_job(self, service, client):
        client.wait(client.submit("fig9", OPTIONS))
        samples = parse_exposition(client.metrics_text())
        assert sample_value(samples, "repro_jobs_state",
                            state="done") == 1
        assert sample_value(samples, "repro_executor_cells_total") > 0
        assert sample_value(samples, "repro_executor_computed_total") > 0

    def test_cache_counters_when_cache_configured(self, tmp_path):
        from repro.exec.cache import RunCache

        executor = SweepExecutor(cache=RunCache(str(tmp_path / "c")))
        with JobScheduler(executor) as scheduler, \
                ServiceThread(scheduler) as service:
            client = SweepClient(service.url)
            client.wait(client.submit("fig9", OPTIONS))
            samples = parse_exposition(client.metrics_text())
            stores = sample_value(samples, "repro_cache_stores_total")
            assert stores is not None and stores > 0


class TestRemoteSpans:
    def test_remote_equals_local_artifact_byte_identical(
            self, service, client, tmp_path):
        job_id = client.submit("table4", OPTIONS)
        client.wait(job_id)
        remote_text = client.spans(job_id)
        # The same document written as a local artifact must analyse
        # byte-identically through both CLI paths.
        artifact = tmp_path / "spans.json"
        artifact.write_text(remote_text, encoding="utf-8")
        code_local, out_local = _run_cli(["spans", str(artifact)])
        code_remote, out_remote = _run_cli(
            ["spans", "--url",
             f"{service.url}/v1/jobs/{job_id}/spans"])
        assert code_local == code_remote == 0
        assert out_local == out_remote
        assert "critical path" in out_remote

    def test_remote_tree_matches_local_run(self, service, client):
        from repro.analysis.spans import decode_spans

        job_id = client.submit("table4", OPTIONS)
        client.wait(job_id)
        remote = decode_spans(json.loads(client.spans(job_id)))

        telemetry = Telemetry(spans=True)
        with obs_runtime.activated(telemetry):
            registry.run_experiment("table4", OPTIONS)
        telemetry.finalize()
        local = decode_spans(telemetry.spans_doc())

        def normalized(span):
            return {"name": span.name, "kind": span.kind,
                    "children": [normalized(child)
                                 for child in span.children]}

        remote_tree = json.dumps([normalized(r) for r in remote.roots],
                                 sort_keys=True)
        local_tree = json.dumps([normalized(r) for r in local.roots],
                                sort_keys=True)
        assert remote_tree == local_tree

    def test_spans_before_done_is_409(self, service, client):
        job_id = client.submit("table4", OPTIONS)
        status, _body, _headers = _get(
            f"{service.url}/v1/jobs/{job_id}/spans")
        # Depending on timing the job may already be done; only the
        # not-done answer is 409.
        record = client.job(job_id)
        if record["state"] in ("queued", "running"):
            assert status == 409
        client.wait(job_id)
        assert client.spans(job_id)  # now available

    def test_spans_unknown_job_404(self, service, client):
        with pytest.raises(ServiceError, match="404") as excinfo:
            client.spans("j999")
        assert excinfo.value.status == 404

    def test_spans_disabled_404(self):
        with JobScheduler(SweepExecutor(), spans=False) as scheduler:
            with pytest.raises(SpansUnavailable):
                scheduler.spans_text("j1")
            with ServiceThread(scheduler) as service:
                client = SweepClient(service.url)
                job_id = client.submit("table4", OPTIONS)
                client.wait(job_id)
                with pytest.raises(ServiceError, match="404"):
                    client.spans(job_id)


class TestDeterminismContract:
    def test_results_identical_with_plane_on_and_off(self):
        texts = []
        for spans in (True, False):
            with JobScheduler(SweepExecutor(), spans=spans) as sched, \
                    ServiceThread(sched) as service:
                client = SweepClient(service.url)
                job_id = client.submit("table4", OPTIONS)
                client.wait(job_id)
                texts.append(client.result(job_id))
        assert texts[0] == texts[1]

    def test_remote_result_matches_local_run(self, client):
        job_id = client.submit("table4", OPTIONS)
        remote = client.result(job_id)
        local = registry.run_experiment("table4", OPTIONS).to_json()
        assert remote == local


class TestAccessLog:
    def test_records_written_with_job_attribution(self, scheduler,
                                                  tmp_path):
        log_path = tmp_path / "access.jsonl"
        with ServiceThread(scheduler,
                           access_log=AccessLog(str(log_path))) \
                as service:
            client = SweepClient(service.url)
            job_id = client.submit("table4", OPTIONS)
            client.wait(job_id)
            client.result(job_id)
            _get(f"{service.url}/v1/nope")
        records = [json.loads(line) for line
                   in log_path.read_text().splitlines()]
        assert records, "no access records written"
        for record in records:
            assert record["v"] == 1
            assert record["kind"] == "access"
            assert record["duration_us"] >= 0
            assert record["bytes"] > 0
        submit = next(r for r in records if r["method"] == "POST")
        assert submit["path"] == "/v1/jobs"
        assert submit["job"] == job_id
        assert submit["status"] == 200
        missing = next(r for r in records if r["path"] == "/v1/nope")
        assert missing["status"] == 404
        result = next(r for r in records
                      if r["path"].endswith("/result"))
        assert result["job"] == job_id

    def test_stats_cli_summarises(self, scheduler, tmp_path, capsys):
        log_path = tmp_path / "access.jsonl"
        with ServiceThread(scheduler,
                           access_log=AccessLog(str(log_path))) \
                as service:
            client = SweepClient(service.url)
            client.wait(client.submit("table4", OPTIONS))
        code = cli.main(["stats", "--access-log", str(log_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "GET /v1/jobs/<id>" in out  # job ids folded per route
        assert "POST /v1/jobs" in out
        assert "p95_us" in out

    def test_stats_requires_exactly_one_input(self, capsys, tmp_path):
        assert cli.main(["stats"]) == 2
        assert "exactly one input" in capsys.readouterr().err
        log = tmp_path / "a.jsonl"
        log.write_text('{"kind": "access", "v": 1}\n')
        assert cli.main(["stats", "journal.jsonl",
                         "--access-log", str(log)]) == 2

    def test_newer_schema_refused(self, tmp_path, capsys):
        log = tmp_path / "future.jsonl"
        log.write_text('{"kind": "access", "v": 99}\n')
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["stats", "--access-log", str(log)])
        assert excinfo.value.code == 2
        assert "upgrade repro" in capsys.readouterr().err


class TestTopDashboard:
    def test_once_against_live_service_non_tty(self, service, client,
                                               capsys):
        client.wait(client.submit("table4", OPTIONS))
        code = cli.main(["top", "--once", "--url", service.url])
        out = capsys.readouterr().out
        assert code == 0
        assert service.url in out
        assert "done=1" in out
        assert "queue=0" in out
        assert "rss=" in out
        assert "\x1b[2J" not in out  # non-TTY: no clear-screen

    def test_once_unreachable_exits_2(self, capsys):
        code = cli.main(["top", "--once",
                         "--url", "http://127.0.0.1:9"])
        out = capsys.readouterr().out
        assert code == 2
        assert "UNREACHABLE" in out

    def test_tty_mode_clears_screen_and_rates(self):
        from repro.analysis.top import InstanceSample, TopDashboard

        class TtyStream(io.StringIO):
            def isatty(self):
                return True

        cells = iter((100, 250))

        def fake_fetch(url, timeout_s=None):
            return InstanceSample(url=url, ok=True, worker_up=True,
                                  states={"done": 1},
                                  cells_total=next(cells),
                                  cache_hits=3, cache_misses=1,
                                  rss_bytes=1 << 20)

        clock_values = iter((0.0, 1.0))
        stream = TtyStream()
        dashboard = TopDashboard(["http://a:1"], interval_s=0.0,
                                 stream=stream, fetch=fake_fetch,
                                 clock=lambda: next(clock_values),
                                 sleep=lambda _s: None)
        assert dashboard.interactive is True
        code = dashboard.run(max_rounds=2)
        out = stream.getvalue()
        assert code == 0
        assert out.count("\x1b[2J") == 2
        assert "cells/s=-" in out       # first poll: no baseline
        assert "cells/s=150.0" in out   # (250-100)/1s
        assert "cache=75%" in out
        assert "rss=1.0MiB" in out
