"""Exporter tests: name sanitization, label escaping, histogram
rendering, registry collection, and the promtool-style line validator
round-tripping the documents we serve."""

import math

import pytest

from repro.obs.exporter import (EXPOSITION_CONTENT_TYPE, Exposition,
                                ExpositionFormatError, collect_registry,
                                escape_label_value, format_sample_value,
                                parse_exposition, sample_value,
                                sanitize_metric_name)
from repro.obs.metrics import MetricsRegistry


class TestSanitizeMetricName:
    def test_dotted_names_fold_to_underscores(self):
        assert sanitize_metric_name("mc.sc0.rlp", "repro") \
            == "repro_mc_sc0_rlp"

    def test_hyphens_and_spaces_fold(self):
        assert sanitize_metric_name("open-fds per proc") \
            == "open_fds_per_proc"

    def test_leading_digit_guarded(self):
        assert sanitize_metric_name("5xx.count") == "_5xx_count"

    def test_empty_name_becomes_underscore(self):
        assert sanitize_metric_name("") == "_"

    def test_valid_name_unchanged(self):
        assert sanitize_metric_name("repro_jobs") == "repro_jobs"

    def test_colons_allowed(self):
        assert sanitize_metric_name("ns:metric") == "ns:metric"


class TestLabelEscaping:
    def test_backslash_quote_newline(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_plain_value_unchanged(self):
        assert escape_label_value("blender/none") == "blender/none"

    def test_round_trip_through_parser(self):
        expo = Exposition()
        nasty = 'quote:" slash:\\ newline:\n end'
        expo.gauge("repro_g", 1, labels={"k": nasty})
        samples = parse_exposition(expo.render())
        assert samples[0].label("k") == nasty


class TestSampleValues:
    def test_ints_render_bare(self):
        assert format_sample_value(7) == "7"
        assert format_sample_value(7.0) == "7"

    def test_specials(self):
        assert format_sample_value(math.inf) == "+Inf"
        assert format_sample_value(-math.inf) == "-Inf"
        assert format_sample_value(math.nan) == "NaN"

    def test_float_repr(self):
        assert format_sample_value(0.25) == "0.25"


class TestExposition:
    def test_counter_gains_total_suffix(self):
        expo = Exposition()
        expo.counter("repro_jobs", 3, help_text="Jobs.")
        text = expo.render()
        assert "# TYPE repro_jobs_total counter" in text
        assert "repro_jobs_total 3" in text

    def test_counter_existing_suffix_not_doubled(self):
        expo = Exposition()
        expo.counter("repro_jobs_total", 3)
        assert "repro_jobs_total_total" not in expo.render()

    def test_labels_sorted_and_quoted(self):
        expo = Exposition()
        expo.gauge("repro_jobs_state", 2,
                   labels={"state": "done", "az": "x"})
        assert 'repro_jobs_state{az="x",state="done"} 2' \
            in expo.render()

    def test_invalid_metric_name_rejected(self):
        expo = Exposition()
        with pytest.raises(ValueError, match="sanitize_metric_name"):
            expo.gauge("mc.sc0", 1)

    def test_invalid_label_name_rejected(self):
        expo = Exposition()
        with pytest.raises(ValueError, match="invalid label name"):
            expo.gauge("repro_g", 1, labels={"bad-name": "v"})

    def test_kind_conflict_rejected(self):
        expo = Exposition()
        expo.gauge("repro_g", 1)
        with pytest.raises(ValueError, match="already added as"):
            expo.histogram("repro_g", bounds=(1,), counts=[0],
                           overflow=0, count=0, total=0.0)

    def test_histogram_buckets_cumulative(self):
        expo = Exposition()
        expo.histogram("repro_rlp", bounds=(1, 2, 4),
                       counts=[5, 3, 0], overflow=2, count=10,
                       total=17.5, help_text="RLP histogram.")
        text = expo.render()
        assert "# TYPE repro_rlp histogram" in text
        assert 'repro_rlp_bucket{le="1"} 5' in text
        assert 'repro_rlp_bucket{le="2"} 8' in text
        assert 'repro_rlp_bucket{le="4"} 8' in text
        assert 'repro_rlp_bucket{le="+Inf"} 10' in text
        assert "repro_rlp_sum 17.5" in text
        assert "repro_rlp_count 10" in text

    def test_histogram_labels_compose_with_le(self):
        expo = Exposition()
        expo.histogram("repro_rlp", bounds=(1,), counts=[4], overflow=0,
                       count=4, total=4.0, labels={"sc": "0"})
        assert 'repro_rlp_bucket{le="1",sc="0"} 4' in expo.render()

    def test_empty_document_renders_empty(self):
        assert Exposition().render() == ""

    def test_content_type_pins_the_format_version(self):
        assert "version=0.0.4" in EXPOSITION_CONTENT_TYPE


class TestCollectRegistry:
    def test_all_instrument_kinds_collected(self):
        registry = MetricsRegistry()
        registry.counter("mc.acts").inc(4)
        registry.gauge("proc.rss_bytes").set(1024)
        histogram = registry.histogram("mc.rlp", (1, 2))
        histogram.observe(1)
        histogram.observe(5)
        expo = Exposition()
        collect_registry(expo, registry)
        samples = parse_exposition(expo.render())
        assert sample_value(samples, "repro_mc_acts_total") == 4
        assert sample_value(samples, "repro_proc_rss_bytes") == 1024
        assert sample_value(samples, "repro_mc_rlp_count") == 2
        assert sample_value(samples, "repro_mc_rlp_bucket",
                            le="+Inf") == 2

    def test_deterministic_document(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(1)
        registry.counter("a").inc(2)
        first, second = Exposition(), Exposition()
        collect_registry(first, registry)
        collect_registry(second, registry)
        assert first.render() == second.render()


class TestParseExposition:
    """The promtool-style validator: accepts our output, rejects
    grammar violations with line-numbered messages."""

    def test_accepts_rendered_document(self):
        expo = Exposition()
        expo.counter("repro_jobs", 1)
        expo.gauge("repro_queue_depth", 0)
        expo.histogram("repro_rlp", bounds=(1,), counts=[1], overflow=0,
                       count=1, total=1.0)
        samples = parse_exposition(expo.render())
        assert sample_value(samples, "repro_jobs_total") == 1

    def test_timestamp_suffix_allowed(self):
        samples = parse_exposition("repro_g 1 1712345678\n")
        assert samples[0].value == 1

    def test_special_values_parse(self):
        samples = parse_exposition("repro_g +Inf\nrepro_h NaN\n")
        assert samples[0].value == math.inf
        assert math.isnan(samples[1].value)

    def test_rejects_bad_metric_name(self):
        with pytest.raises(ExpositionFormatError, match="line 1"):
            parse_exposition("bad.name 1\n")

    def test_rejects_bad_value(self):
        with pytest.raises(ExpositionFormatError, match="line 1"):
            parse_exposition("repro_g one\n")

    def test_rejects_unknown_type(self):
        with pytest.raises(ExpositionFormatError, match="unknown"):
            parse_exposition("# TYPE repro_g sometype\n")

    def test_rejects_duplicate_type(self):
        with pytest.raises(ExpositionFormatError, match="duplicate"):
            parse_exposition("# TYPE repro_g gauge\n"
                             "# TYPE repro_g gauge\n")

    def test_rejects_type_after_samples(self):
        with pytest.raises(ExpositionFormatError, match="after its"):
            parse_exposition("repro_g 1\n# TYPE repro_g gauge\n")

    def test_histogram_series_count_toward_their_family(self):
        # _bucket/_sum/_count belong to the histogram family, so a
        # trailing TYPE for it is still "after its samples".
        text = ("# TYPE repro_rlp histogram\n"
                'repro_rlp_bucket{le="+Inf"} 1\n'
                "repro_rlp_sum 1\nrepro_rlp_count 1\n")
        samples = parse_exposition(text)
        assert len(samples) == 3

    def test_rejects_unterminated_label_value(self):
        with pytest.raises(ExpositionFormatError, match="unterminated"):
            parse_exposition('repro_g{k="v} 1\n')

    def test_rejects_invalid_escape(self):
        with pytest.raises(ExpositionFormatError, match="invalid escape"):
            parse_exposition('repro_g{k="\\t"} 1\n')

    def test_rejects_unquoted_label_value(self):
        with pytest.raises(ExpositionFormatError, match="not.*quoted"):
            parse_exposition("repro_g{k=v} 1\n")

    def test_sample_value_matches_labels(self):
        expo = Exposition()
        expo.gauge("repro_jobs_state", 2, labels={"state": "done"})
        expo.gauge("repro_jobs_state", 1, labels={"state": "failed"})
        samples = parse_exposition(expo.render())
        assert sample_value(samples, "repro_jobs_state",
                            state="done") == 2
        assert sample_value(samples, "repro_jobs_state",
                            state="failed") == 1
        assert sample_value(samples, "repro_jobs_state",
                            state="queued") is None
