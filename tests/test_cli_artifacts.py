"""The unified CLI error taxonomy, as a parametrized matrix.

Every subcommand that consumes an artifact (``stats``/``trace``/
``spans``/``bench``) or a service endpoint (``submit``/``jobs``) is
driven through the same fault classes and must behave identically:

* unusable artifact / unreachable service → one ``error: <message>``
  line on stderr, exit 2, never a traceback;
* artifact loaded but the command's check failed → exit 1;
* success → exit 0.
"""

import json

import pytest

from repro.analysis.artifacts import (ArtifactError, load_bench_metrics,
                                      load_journal_records,
                                      load_spans_doc)
from repro.cli import main
from repro.exec.executor import SweepExecutor
from repro.service import JobScheduler, ServiceThread
from repro.workloads.builder import clear_cache


@pytest.fixture(autouse=True)
def _clean_environment(monkeypatch):
    for name in ("REPRO_FULL", "REPRO_JOBS", "REPRO_CACHE_DIR",
                 "REPRO_FAULTS", "REPRO_SERVICE_URL"):
        monkeypatch.delenv(name, raising=False)


def _unreachable_url():
    import socket

    placeholder = socket.socket()
    placeholder.bind(("127.0.0.1", 0))
    port = placeholder.getsockname()[1]
    placeholder.close()
    return f"http://127.0.0.1:{port}"


def _write_fault(tmp_path, fault: str) -> str:
    """Materialise one fault class as an on-disk artifact; returns its
    path (which may intentionally not exist)."""
    if fault == "missing":
        return str(tmp_path / "nope")
    path = tmp_path / "artifact"
    if fault == "malformed":
        path.write_text("{torn!")
    elif fault == "journal-future":
        path.write_text('{"v": 99, "kind": "run_start", "run": 0}\n')
    elif fault == "spans-future":
        path.write_text(json.dumps({"schema": 99, "spans": []}))
    return str(path)


#: (argv-builder, fault) — every row must print ``error: ...`` and
#: exit 2.  The service rows reach a port nothing listens on.
MATRIX = [
    pytest.param(lambda p: ["stats", p], "missing", id="stats-missing"),
    pytest.param(lambda p: ["stats", p], "malformed",
                 id="stats-malformed"),
    pytest.param(lambda p: ["stats", p], "journal-future",
                 id="stats-future"),
    pytest.param(lambda p: ["trace", p], "missing", id="trace-missing"),
    pytest.param(lambda p: ["trace", p], "malformed",
                 id="trace-malformed"),
    pytest.param(lambda p: ["trace", p], "journal-future",
                 id="trace-future"),
    pytest.param(lambda p: ["spans", p], "missing", id="spans-missing"),
    pytest.param(lambda p: ["spans", p], "malformed",
                 id="spans-malformed"),
    pytest.param(lambda p: ["spans", p], "spans-future",
                 id="spans-future"),
    pytest.param(lambda p: ["bench", "record", "--results-dir", p],
                 "missing", id="bench-record-missing"),
    pytest.param(lambda p: ["bench", "check", "--results-dir", p],
                 "missing", id="bench-check-missing"),
]


class TestExitTwoMatrix:
    @pytest.mark.parametrize("argv_for,fault", MATRIX)
    def test_unusable_artifact_exits_2(self, tmp_path, capsys,
                                       argv_for, fault):
        path = _write_fault(tmp_path, fault)
        with pytest.raises(SystemExit) as excinfo:
            main(argv_for(path))
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "Traceback" not in err

    @pytest.mark.parametrize("argv_for", [
        pytest.param(lambda url: ["jobs", "--url", url],
                     id="jobs-unreachable"),
        pytest.param(lambda url: ["jobs", "j1", "--url", url],
                     id="jobs-one-unreachable"),
        pytest.param(lambda url: ["submit", "table4", "--url", url],
                     id="submit-unreachable"),
    ])
    def test_unreachable_service_exits_2(self, capsys, argv_for):
        with pytest.raises(SystemExit) as excinfo:
            main(argv_for(_unreachable_url()))
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error: cannot reach sweep service" in err
        assert "Traceback" not in err


class TestLoadersRaiseArtifactError:
    def test_journal_loader(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read journal"):
            load_journal_records(str(tmp_path / "nope"))

    def test_spans_loader(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read spans"):
            load_spans_doc(str(tmp_path / "nope"))

    def test_bench_loader(self, tmp_path):
        with pytest.raises(ArtifactError,
                           match="no benchmark snapshots"):
            load_bench_metrics(str(tmp_path / "empty"))

    def test_exit_code_attribute(self):
        assert ArtifactError("x").exit_code == 2


class TestServiceCommands:
    @pytest.fixture
    def service(self):
        with JobScheduler(SweepExecutor()) as scheduler:
            with ServiceThread(scheduler) as thread:
                yield thread

    def test_submit_prints_result_json(self, service, capsys):
        assert main(["submit", "table4", "--url", service.url,
                     "--quiet"]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["experiment"] == "table4"
        assert "submitted table4" in captured.err

    def test_submit_matches_local_run_byte_for_byte(self, service,
                                                    capsys,
                                                    monkeypatch):
        monkeypatch.setattr("repro.workloads.profiles.QUICK_SUBSET",
                            ("blender", "add"))
        clear_cache()
        argv = ["ablation-atm", "--seed", "11", "--requests", "500"]
        assert main(["submit", *argv, "--url", service.url,
                     "--quiet"]) == 0
        served = capsys.readouterr().out
        clear_cache()
        assert main(["run", *argv, "--json"]) == 0
        local = capsys.readouterr().out
        clear_cache()
        assert served == local

    def test_submit_unknown_experiment_exits_2(self, service, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["submit", "nope", "--url", service.url])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error: " in err and "unknown experiment" in err

    def test_submit_failed_job_exits_1(self, service, capsys,
                                       monkeypatch):
        from repro.exec import faults

        monkeypatch.setattr("repro.workloads.profiles.QUICK_SUBSET",
                            ("blender", "add"))
        clear_cache()
        faults.install(faults.FaultPlan.parse("crash:*:99"))
        try:
            code = main(["submit", "ablation-atm", "--url", service.url,
                         "--seed", "11", "--requests", "500",
                         "--retries", "0", "--quiet"])
        finally:
            faults.install(None)
            clear_cache()
        assert code == 1
        assert "failed" in capsys.readouterr().err

    def test_jobs_listing_and_record(self, service, capsys):
        assert main(["submit", "table4", "--url", service.url,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["jobs", "--url", service.url]) == 0
        listing = capsys.readouterr().out
        assert "j1" in listing and "done" in listing
        assert "memo_hits=" in listing
        assert main(["jobs", "j1", "--url", service.url]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["state"] == "done"
        assert record["experiment"] == "table4"

    def test_jobs_unknown_id_exits_2(self, service, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["jobs", "j99", "--url", service.url])
        assert excinfo.value.code == 2
        assert "404" in capsys.readouterr().err

    def test_url_from_environment(self, service, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_URL", service.url)
        assert main(["jobs"]) == 0
        assert "no jobs" in capsys.readouterr().out
