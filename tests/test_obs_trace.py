"""EventTrace capture plus the ``repro trace`` analyzer cross-check.

The load-bearing assertion: the analyzer's per-policy RLP statistics,
reduced purely from journal/trace records, must equal
:func:`repro.analysis.rlp.summarize` over the sub-channel's raw
:class:`~repro.dram.subchannel.MitigationEvent` log for a real Figure-5
design — the two paths observe the same mitigations through entirely
different plumbing.
"""

import json

import pytest

from repro.analysis import rlp
from repro.analysis.harness import AttackHarness
from repro.analysis.trace import analyze_trace, render_trace
from repro.mc.mitigation import coupled_mint_factory
from repro.obs import Telemetry
from repro.obs.journal import load_journal
from repro.obs.trace import EventTrace


@pytest.fixture
def hammered():
    """A fig5 coupled-MINT design driven hard enough to mitigate."""
    telemetry = Telemetry(journal_memory=True, trace=True)
    telemetry.begin_run("attack", "mint-drfmsb", seed=99)
    harness = AttackHarness(coupled_mint_factory(500))
    harness.policy.telemetry = telemetry.channel(0)
    pattern = [(bank, row) for _ in range(40)
               for bank in range(4) for row in (10, 20)]
    harness.run(pattern)
    assert harness.subchannel.mitigation_log, "attack never mitigated"
    return telemetry, harness


class TestAnalyzerCrossCheck:
    def test_matches_rlp_summarize(self, hammered):
        telemetry, harness = hammered
        reference = rlp.summarize(harness.subchannel.mitigation_log)
        summary = analyze_trace(telemetry.journal.records)["mint-drfmsb"]
        assert summary.events == reference.commands
        assert summary.mean_rlp == pytest.approx(reference.average)
        assert summary.max_rlp == reference.max_rlp
        assert summary.wasted_bank_stalls == reference.wasted_bank_stalls
        assert summary.stats.efficiency == \
            pytest.approx(reference.efficiency)

    def test_trace_records_equal_journal_mitigations(self, hammered):
        telemetry, _ = hammered
        journal_mitigations = [r for r in telemetry.journal.records
                               if r["kind"] == "mitigation"]
        assert telemetry.trace.events == journal_mitigations

    def test_bucket_counts_cover_every_event(self, hammered):
        telemetry, _ = hammered
        summary = analyze_trace(telemetry.journal.records)["mint-drfmsb"]
        assert sum(summary.rlp_buckets) == summary.events
        assert summary.dars_events == summary.events

    def test_render_mentions_the_paper_quantities(self, hammered):
        telemetry, _ = hammered
        out = render_trace(analyze_trace(telemetry.journal.records))
        assert "== policy: mint-drfmsb ==" in out
        assert "rlp: mean=" in out
        assert "efficiency=" in out
        assert "DAR occupancy" in out


class TestWriteJsonl:
    def test_round_trip_through_file(self, hammered, tmp_path):
        telemetry, _ = hammered
        path = tmp_path / "events.jsonl"
        telemetry.trace.write_jsonl(path)
        records = load_journal(str(path))
        direct = analyze_trace(telemetry.journal.records)["mint-drfmsb"]
        replayed = analyze_trace(records)["mint-drfmsb"]
        assert replayed.events == direct.events
        assert replayed.mean_rlp == pytest.approx(direct.mean_rlp)
        assert replayed.rlp_buckets == direct.rlp_buckets

    def test_write_is_atomic_no_temp_left(self, hammered, tmp_path):
        telemetry, _ = hammered
        telemetry.trace.write_jsonl(tmp_path / "events.jsonl")
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name != "events.jsonl"]
        assert leftovers == []


class TestEventTraceBounds:
    def test_capacity_drops_and_counts(self):
        trace = EventTrace(limit=2)
        for index in range(5):
            trace.record({"kind": "mitigation", "rlp": index})
        assert len(trace) == 2
        assert trace.dropped == 3
        assert [event["rlp"] for event in trace.events] == [0, 1]

    def test_records_are_json_lines(self, tmp_path):
        trace = EventTrace()
        trace.record({"kind": "mitigation", "cmd": "NRR", "rlp": 1})
        path = tmp_path / "t.jsonl"
        trace.write_jsonl(path)
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line) for line in lines] == trace.events
