"""Unit tests for per-cell telemetry snapshots and the merge layer.

The contract under test: :func:`capture_snapshot` freezes everything a
cell's telemetry observed, :func:`merge_snapshot` folds it into a parent
deterministically (counters sum, gauges last-write-wins, histograms
merge element-wise, journal runs remap), and the snapshot itself is
never mutated so a memoised cell can be replayed any number of times.
"""

import json

import pytest

from repro.obs import Telemetry
from repro.obs.snapshot import (CaptureSpec, SNAPSHOT_SCHEMA_VERSION,
                                TelemetrySnapshot, capture_snapshot,
                                merge_snapshot, snapshot_from_doc,
                                snapshot_to_doc)
from repro.obs.timeline import TimelineSample


def _capture(fill) -> TelemetrySnapshot:
    telemetry = Telemetry(journal_memory=True)
    fill(telemetry)
    return capture_snapshot(telemetry)


def _sample(time_ps: int, tick: int = 0,
            subchannel: int = 0) -> TimelineSample:
    return TimelineSample(subchannel=subchannel, tick=tick,
                          time_ps=time_ps, ref_index=tick,
                          activations=1, row_hits=1, row_conflicts=0,
                          row_hit_rate=1.0, samples=0,
                          mitigation_commands=0, mitigated_rows=0,
                          rlp=0.0, selections=0, rmaq_hits=0,
                          rmaq_skips=0, open_banks=0, valid_dars=0,
                          queue_depth=0)


class TestCaptureSpec:
    def test_from_telemetry_copies_sampling_period(self):
        telemetry = Telemetry(sample_every_refi=3)
        spec = CaptureSpec.from_telemetry(telemetry)
        assert spec.sample_every_refi == 3

    def test_build_makes_in_memory_capture(self):
        local = CaptureSpec(sample_every_refi=5).build()
        assert local.journal is not None
        assert local.journal.path is None
        assert local.timeline.sample_every_refi == 5


class TestMergeMetrics:
    def test_counters_sum(self):
        snap = _capture(lambda t: t.registry.counter("sim.runs").inc(2))
        parent = Telemetry()
        parent.registry.counter("sim.runs").inc(5)
        merge_snapshot(parent, snap)
        assert parent.registry.counter("sim.runs").value == 7

    def test_gauges_last_write_wins(self):
        first = _capture(lambda t: t.registry.gauge("g").set(1.0))
        second = _capture(lambda t: t.registry.gauge("g").set(9.0))
        parent = Telemetry()
        merge_snapshot(parent, first)
        merge_snapshot(parent, second)
        assert parent.registry.gauge("g").value == 9.0

    def test_histograms_merge_elementwise(self):
        def fill(telemetry):
            hist = telemetry.registry.histogram("h", (1, 2))
            hist.observe(1)
            hist.observe(2)
            hist.observe(99)

        snap = _capture(fill)
        parent = Telemetry()
        merge_snapshot(parent, snap)
        merge_snapshot(parent, snap)
        hist = parent.registry.histogram("h", (1, 2))
        assert hist.counts == [2, 2]
        assert hist.overflow == 2
        assert hist.count == 6
        assert hist.total == 204

    def test_histogram_bounds_mismatch_raises(self):
        snap = _capture(
            lambda t: t.registry.histogram("h", (1, 2)).observe(1))
        parent = Telemetry()
        parent.registry.histogram("h", (4, 8))
        with pytest.raises(ValueError, match="incompatible"):
            merge_snapshot(parent, snap)

    def test_unknown_metric_kind_raises(self):
        snap = TelemetrySnapshot(metrics={"m": {"kind": "weird"}})
        with pytest.raises(ValueError, match="unknown kind"):
            merge_snapshot(Telemetry(), snap)


class TestMergeJournal:
    def test_run_indices_remap_to_parent_sequence(self):
        def fill(telemetry):
            telemetry.begin_run("mcf", "mint", seed=7)

        first, second = _capture(fill), _capture(fill)
        parent = Telemetry(journal_memory=True)
        merge_snapshot(parent, first)
        merge_snapshot(parent, second)
        assert [r["run"] for r in parent.journal.records] == [0, 1]
        assert parent.run_index == 1

    def test_replayed_snapshot_is_not_mutated(self):
        snap = _capture(lambda t: t.begin_run("mcf", "mint", seed=7))
        before = json.dumps(snap.journal)
        parent = Telemetry(journal_memory=True)
        merge_snapshot(parent, snap)
        merge_snapshot(parent, snap)
        assert json.dumps(snap.journal) == before
        assert snap.journal[0]["run"] == 0

    def test_mitigation_records_feed_parent_trace(self):
        snap = TelemetrySnapshot(journal=[
            {"v": 1, "kind": "mitigation", "cmd": "DRFMsb", "rlp": 3},
            {"v": 1, "kind": "sample", "tick": 0},
        ])
        parent = Telemetry(trace=True)
        merge_snapshot(parent, snap)
        assert len(parent.trace) == 1
        assert parent.trace.events[0]["cmd"] == "DRFMsb"


class TestMergeTimeline:
    def test_samples_sort_by_simulated_time(self):
        import dataclasses

        snap = TelemetrySnapshot(timeline=[
            dataclasses.asdict(_sample(200, tick=1)),
            dataclasses.asdict(_sample(100, tick=0)),
        ])
        parent = Telemetry()
        merge_snapshot(parent, snap)
        assert [s.time_ps for s in parent.timeline.samples] == [100, 200]
        assert all(isinstance(s, TimelineSample)
                   for s in parent.timeline.samples)


class TestMergeProfiling:
    def test_phase_and_throughput_totals_accumulate(self):
        snap = TelemetrySnapshot(
            phases={"simulate": {"seconds": 1.5, "calls": 2}},
            throughput={"events": 100, "seconds": 0.5, "intervals": 1})
        parent = Telemetry()
        merge_snapshot(parent, snap)
        merge_snapshot(parent, snap)
        phases = parent.profiler.phases.snapshot()
        assert phases["simulate"]["seconds"] == 3.0
        assert phases["simulate"]["calls"] == 4
        assert parent.profiler.throughput.events == 200
        assert parent.profiler.throughput.intervals == 2


class TestDocRoundTrip:
    def _real_snapshot(self) -> TelemetrySnapshot:
        def fill(telemetry):
            telemetry.begin_run("mcf", "mint", seed=7)
            telemetry.registry.counter("sim.runs").inc()
            telemetry.registry.histogram("h", (1, 2)).observe(2)
            telemetry.timeline.samples.append(_sample(100))

        return _capture(fill)

    def test_json_round_trip_preserves_merge_result(self):
        snap = self._real_snapshot()
        doc = json.loads(json.dumps(snapshot_to_doc(snap)))
        restored = snapshot_from_doc(doc)
        assert restored is not None

        def merged(snapshot):
            parent = Telemetry(journal_memory=True)
            merge_snapshot(parent, snapshot)
            return (json.dumps(parent.snapshot()["metrics"],
                               sort_keys=True),
                    json.dumps(parent.journal.records))

        assert merged(restored) == merged(snap)

    def test_wrong_schema_rejected(self):
        doc = snapshot_to_doc(self._real_snapshot())
        doc["schema"] = SNAPSHOT_SCHEMA_VERSION + 1
        assert snapshot_from_doc(doc) is None

    def test_malformed_sections_rejected(self):
        base = snapshot_to_doc(self._real_snapshot())
        for key, bad in [("metrics", []), ("journal", {}),
                         ("timeline", {}), ("phases", []),
                         ("throughput", [])]:
            doc = dict(base)
            doc[key] = bad
            assert snapshot_from_doc(doc) is None
        assert snapshot_from_doc("nope") is None

    def test_malformed_timeline_row_rejected(self):
        doc = snapshot_to_doc(self._real_snapshot())
        doc = json.loads(json.dumps(doc))
        doc["timeline"][0].pop("rlp")
        assert snapshot_from_doc(doc) is None


class TestSpansInSnapshots:
    def _spanned_capture(self) -> TelemetrySnapshot:
        # Capture telemetry always records spans (CaptureSpec.build
        # sets spans=True) so sidecars serve later spans-enabled runs.
        local = CaptureSpec(sample_every_refi=5).build()
        assert local.spans is not None
        with local.spans.span("attempt", exec_side=True):
            with local.spans.span("run:none"):
                pass
        return capture_snapshot(local)

    def test_spans_ride_capture_and_doc_round_trip(self):
        snap = self._spanned_capture()
        assert len(snap.spans) == 1
        doc = json.loads(json.dumps(snapshot_to_doc(snap)))
        restored = snapshot_from_doc(doc)
        assert restored is not None
        assert restored.spans == snap.spans

    def test_merge_grafts_into_spans_enabled_parent(self):
        snap = self._spanned_capture()
        parent = Telemetry(spans=True)
        merge_snapshot(parent, snap)
        assert [root.name for root in parent.spans.roots] == ["attempt"]
        assert [child.name
                for child in parent.spans.roots[0].children] == \
            ["run:none"]
        # The snapshot itself stays replayable.
        merge_snapshot(Telemetry(spans=True), snap)
        assert len(snap.spans) == 1

    def test_merge_into_spans_off_parent_is_a_noop(self):
        parent = Telemetry()
        merge_snapshot(parent, self._spanned_capture())
        assert parent.spans is None

    def test_malformed_spans_section_rejected(self):
        doc = snapshot_to_doc(self._spanned_capture())
        for bad in ({}, "spans", [17]):
            mutated = dict(doc)
            mutated["spans"] = bad
            assert snapshot_from_doc(mutated) is None

    def test_v1_docs_are_rejected_as_stale(self):
        # Pre-spans sidecars (schema v1) must read as cache misses so
        # the cell recomputes and rewrites a complete artifact.
        doc = snapshot_to_doc(self._spanned_capture())
        doc["schema"] = 1
        assert snapshot_from_doc(doc) is None
