"""Unit tests for DREAM-R (delayed-DRFM mitigation, Section 4)."""

import pytest

from repro.core.dream_r import (DreamRMintPolicy, DreamRParaPolicy,
                                dream_r_mint_factory, dream_r_para_factory)
from repro.dram.commands import Command
from repro.dram.subchannel import SubChannel
from repro.mc.controller import SubChannelController


def make_controller(timing, organization, policy):
    subchannel = SubChannel(0, timing, organization.banks,
                            organization.banks_per_group,
                            record_mitigations=True)
    controller = SubChannelController(subchannel, timing, policy)
    return controller, subchannel


class TestDreamRParaDecoupling:
    def test_first_selection_samples_without_drfm(self, timing,
                                                  organization, context):
        # Listing 1 scenario 1: DAR empty -> sample, no DRFM.
        policy = DreamRParaPolicy(context, t_rh=2000, probability=1.0)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        controller.service(0, 5, 0)
        assert subchannel.banks[0].dar.row == 5
        assert subchannel.stats.mitigation_commands == 0

    def test_second_selection_forces_drfm(self, timing, organization,
                                          context):
        # Listing 1 scenario 3: DAR full -> DRFM first, then resample.
        policy = DreamRParaPolicy(context, t_rh=2000, probability=1.0)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        finish = controller.service(0, 5, 0)
        controller.service(0, 6, finish)
        assert subchannel.stats.mitigation_commands == 1
        event = subchannel.mitigation_log[0]
        assert event.command is Command.DRFM_SB
        assert (0, 5) in event.mitigated_rows
        # The new selection is now waiting in the DAR.
        assert subchannel.banks[0].dar.row == 6

    def test_delayed_drfm_harvests_other_banks(self, timing, organization,
                                               context):
        # The whole point of DREAM-R: banks of the same DRFMsb group that
        # sampled during the delay get mitigated by the same command.
        policy = DreamRParaPolicy(context, t_rh=2000, probability=1.0)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        now = 0
        for bank in (0, 4, 8, 12):  # same DRFMsb position
            now = controller.service(bank, 100 + bank, now)
        controller.service(0, 200, now)  # second selection on bank 0
        event = subchannel.mitigation_log[0]
        assert event.rlp == 4

    def test_unselected_activations_run_in_shadow(self, timing,
                                                  organization, context):
        # Listing 1 scenario 2: no selection -> regular precharge, the
        # pending DAR survives.
        policy = DreamRParaPolicy(context, t_rh=2000, probability=1.0)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        finish = controller.service(0, 5, 0)
        policy.probability = 0.0
        controller.service(0, 6, finish)
        assert subchannel.banks[0].dar.row == 5
        assert subchannel.stats.mitigation_commands == 0

    def test_uses_atm_adjusted_probability(self, context):
        policy = DreamRParaPolicy(context, t_rh=2000)
        # Table 4: p ~ 1/99 with ATM, not 1/85.
        assert policy.probability == pytest.approx(20 / 1990)

    def test_atm_triggers_early_drfm(self, timing, organization, context):
        policy = DreamRParaPolicy(context, t_rh=2000, probability=1.0,
                                  atm_threshold=3)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        finish = controller.service(0, 5, 0)  # sampled, DAR=5
        policy.probability = 0.0  # stop further selections
        for _ in range(5):
            # Hammer the sampled row: conflict access forces re-ACTs.
            finish = controller.service(0, 6, finish)
            finish = controller.service(0, 5, finish)
        assert policy.atm.triggers >= 1
        assert subchannel.stats.mitigation_commands >= 1
        assert any((0, 5) in event.mitigated_rows
                   for event in subchannel.mitigation_log)

    def test_rmaq_skips_recent_rows(self, timing, organization, context):
        policy = DreamRParaPolicy(context, t_rh=2000, probability=1.0,
                                  rmaq_capacity=4)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        finish = controller.service(0, 5, 0)   # sampled + RMAQ insert
        finish = controller.service(0, 6, finish)  # DRFM + sample 6
        controller.service(0, 5, finish)  # row 5 hits RMAQ: skipped
        assert policy.stats.samples_skipped_rate_limit == 1
        assert subchannel.banks[0].dar.row == 6

    def test_factory_and_summary(self, context):
        policy = dream_r_para_factory(2000)(context)
        assert policy.name == "para-dream-r"
        summary = policy.summary()
        assert "atm_triggers" in summary


class TestDreamRMint:
    def test_implicit_sampling_on_free_dar(self, timing, organization,
                                           context):
        policy = DreamRMintPolicy(context, t_rh=2000, window=4)
        policy.states[0].san = 0  # force selection on first activation
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        controller.service(0, 5, 0)
        assert subchannel.banks[0].dar.row == 5
        assert subchannel.stats.mitigation_commands == 0

    def test_busy_dar_buffers_in_mc_sar(self, timing, organization,
                                        context):
        policy = DreamRMintPolicy(context, t_rh=2000, window=4)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        policy.states[0].san = 0
        finish = controller.service(0, 5, 0)  # implicit sample
        # Second window: selection with DAR busy -> MC-SAR.
        policy.states[0].can = 4  # force roll-over on next ACT
        policy.states[0].san = 99  # avoid accidental selection later
        finish = controller.service(0, 6, finish)
        policy.states[0].san = policy.states[0].can  # select right now
        controller.service(0, 7, finish)
        assert policy.states[0].mc_sar == 7
        assert subchannel.banks[0].dar.row == 5

    def test_window_end_with_mc_sar_drains_group(self, timing,
                                                 organization, context):
        policy = DreamRMintPolicy(context, t_rh=2000, window=3)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        # Manually stage: DAR busy + MC-SAR pending, then expire window.
        controller.explicit_sample(0, 50, 0)
        policy.states[0].mc_sar = 60
        policy.states[0].can = 3  # expired
        controller.service(0, 70, 10 ** 6)
        event = subchannel.mitigation_log[0]
        assert event.command is Command.DRFM_SB
        assert (0, 50) in event.mitigated_rows
        # MC-SAR explicit-sampled into the freed DAR.  (The new window's
        # SAN may select the current ACT, re-filling MC-SAR with row 70;
        # what matters is that the old pending row drained.)
        assert subchannel.banks[0].dar.row == 60
        assert policy.states[0].mc_sar in (None, 70)

    def test_window_end_without_mc_sar_is_quiet(self, timing,
                                                organization, context):
        policy = DreamRMintPolicy(context, t_rh=2000, window=3)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        controller.explicit_sample(0, 50, 0)
        policy.states[0].can = 3  # expired, but MC-SAR empty
        policy.states[0].san = 99
        controller.service(0, 70, 10 ** 6)
        assert subchannel.stats.mitigation_commands == 0
        assert subchannel.banks[0].dar.row == 50  # still waiting

    def test_group_mc_sars_all_drain(self, timing, organization, context):
        policy = DreamRMintPolicy(context, t_rh=2000, window=3)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        policy.states[0].mc_sar = 11
        policy.states[4].mc_sar = 22   # same DRFMsb position
        policy.states[1].mc_sar = 33   # different position
        policy.states[0].can = 3
        policy.states[0].san = 99
        controller.service(0, 70, 0)
        assert subchannel.banks[0].dar.row == 11
        assert subchannel.banks[4].dar.row == 22
        assert policy.states[1].mc_sar == 33  # untouched

    def test_uses_atm_adjusted_window(self, context):
        policy = DreamRMintPolicy(context, t_rh=2000)
        assert policy.window == 99  # Table 4 with ATM

    def test_atm_triggers_drain_for_hot_dar_row(self, timing,
                                                organization, context):
        policy = DreamRMintPolicy(context, t_rh=2000, window=50,
                                  atm_threshold=3)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        # Stage a DAR row under ATM watch, then hammer it.
        controller.explicit_sample(0, 40, 0)
        policy.atm.arm(0, 40)
        finish = 10 ** 6
        for _ in range(5):
            finish = controller.service(0, 41, finish)  # conflict filler
            finish = controller.service(0, 40, finish)
        assert policy.atm.triggers >= 1
        assert any((0, 40) in event.mitigated_rows
                   for event in subchannel.mitigation_log)

    def test_rate_limited_window_capacity(self, context):
        policy = DreamRMintPolicy(context, t_rh=500, rate_limited=True)
        assert policy.rmaq is not None
        assert policy.rmaq[0].capacity >= 6

    def test_factory_and_summary(self, context):
        policy = dream_r_mint_factory(2000)(context)
        assert policy.name == "mint-dream-r"
        assert "rmaq_skips" in policy.summary()
