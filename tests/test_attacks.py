"""Unit tests for the attack-pattern generators."""

import numpy as np
import pytest

from repro.sim.config import SystemConfig
from repro.workloads.attacks import (as_trace, blacksmith, circular,
                                     double_sided, gang_dos_rows,
                                     hammer_trace, rmaq_abuse,
                                     single_sided)


class TestBasicPatterns:
    def test_single_sided(self):
        pattern = single_sided(42, 10)
        assert len(pattern) == 10
        assert (pattern == 42).all()

    def test_double_sided_alternates(self):
        pattern = double_sided(1, 2, 6)
        assert pattern.tolist() == [1, 2, 1, 2, 1, 2]

    def test_circular_repeats(self):
        pattern = circular([1, 2, 3], 7)
        assert pattern.tolist() == [1, 2, 3, 1, 2, 3, 1]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            single_sided(1, 0)
        with pytest.raises(ValueError):
            circular([], 5)


class TestRmaqAbuse:
    def test_structure(self):
        rows = list(range(5))
        pattern = rmaq_abuse(rows, extra_on_target=10, rounds=1)
        window = len(rows)
        # Phase 1: target hammered for a full window.
        assert (pattern[:window] == 0).all()
        # Phase 2: the free extra activations.
        assert (pattern[window:window + 10] == 0).all()
        # Phase 3: circular over the remaining rows.
        tail = pattern[window + 10:]
        assert set(np.unique(tail)) == {1, 2, 3, 4}

    def test_rounds_multiply_length(self):
        rows = list(range(4))
        one = rmaq_abuse(rows, extra_on_target=8, rounds=1)
        three = rmaq_abuse(rows, extra_on_target=8, rounds=3)
        assert len(three) == 3 * len(one)

    def test_requires_filler_rows(self):
        with pytest.raises(ValueError):
            rmaq_abuse([1], extra_on_target=5, rounds=1)


class TestBlacksmith:
    def test_intensities_respected(self):
        pattern = blacksmith([1, 2], intensities=[3, 1],
                             phase_offsets=[0, 0], activations=40)
        counts = np.bincount(pattern, minlength=3)
        # Row 1 gets 3x the slots of row 2 in every period of 4.
        assert counts[1] == 30
        assert counts[2] == 10

    def test_period_repeats(self):
        pattern = blacksmith([5, 6], intensities=[1, 1],
                             phase_offsets=[0, 1], activations=8)
        assert pattern[:2].tolist() == pattern[2:4].tolist()

    def test_phase_shifts_order(self):
        early = blacksmith([5, 6], [1, 1], [0, 1], 2)
        late = blacksmith([5, 6], [1, 1], [1, 0], 2)
        assert early.tolist() == [5, 6]
        assert late.tolist() == [6, 5]

    def test_validation(self):
        with pytest.raises(ValueError, match="align"):
            blacksmith([1], [1, 2], [0], 10)
        with pytest.raises(ValueError, match="at least one"):
            blacksmith([], [], [], 10)
        with pytest.raises(ValueError, match="positive"):
            blacksmith([1], [0], [0], 10)

    def test_non_uniform_schedule_still_bounded_by_dream(self):
        # The TRR-breaking pattern does not faze counting defenses.
        from repro.analysis.harness import AttackHarness
        from repro.core.dream_c import dream_c_factory

        pattern = blacksmith([10, 12, 14], intensities=[8, 2, 1],
                             phase_offsets=[0, 3, 7], activations=4_000)
        harness = AttackHarness(dream_c_factory(500), seed=3)
        result = harness.run(pattern, bank=0)
        assert result.max_unmitigated <= 500


class TestGangDoS:
    def test_round_robin_over_gang(self):
        gang = {0: [10], 1: [20], 2: [30]}
        accesses = gang_dos_rows(gang, 7)
        assert accesses == [(0, 10), (1, 20), (2, 30),
                            (0, 10), (1, 20), (2, 30), (0, 10)]

    def test_rejects_empty_gang(self):
        with pytest.raises(ValueError):
            gang_dos_rows({}, 5)


class TestTraceWrapping:
    def test_as_trace(self):
        system = SystemConfig.baseline(64)
        trace = as_trace("attack", [(0, 1), (1, 2)], system, subchannel=1,
                         gap_ps=5)
        assert trace.name == "attack"
        assert trace.subchannel.tolist() == [1, 1]
        assert trace.bank.tolist() == [0, 1]
        assert trace.gap_ps.tolist() == [5, 5]

    def test_range_validation(self):
        system = SystemConfig.baseline(64)
        with pytest.raises(ValueError, match="exceed"):
            as_trace("bad", [(999, 1)], system)
        with pytest.raises(ValueError, match="exceed"):
            as_trace("bad", [(0, 10 ** 9)], system)

    def test_hammer_trace(self):
        system = SystemConfig.baseline(64)
        trace = hammer_trace("h", single_sided(3, 4), bank=2,
                             system=system)
        assert trace.bank.tolist() == [2, 2, 2, 2]
        assert trace.row.tolist() == [3, 3, 3, 3]
