"""Integration tests for the sweep executor: parallelism, memoisation,
caching and the telemetry fallback.

The guarantee under test throughout: execution mode (serial, pooled,
memoised, cached) never changes a single simulated number.
"""

import json

import pytest

from repro.exec import runtime as exec_runtime
from repro.exec.cache import RunCache
from repro.exec.executor import Cell, SweepExecutor, cell_fingerprint
from repro.experiments.common import (DesignSpec, series_rows,
                                      sweep_cells, sweep_designs)
from repro.mc.mitigation import coupled_para_factory
from repro.mc.policy import NoMitigation, no_mitigation_factory
from repro.obs import Telemetry
from repro.obs import runtime as obs_runtime
from repro.sim.config import SimConfig, SystemConfig
from repro.workloads.builder import clear_cache
from repro.workloads.profiles import profiles_for


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture
def workloads():
    return profiles_for(names=["mcf"])


@pytest.fixture
def designs():
    return [DesignSpec("none", no_mitigation_factory()),
            DesignSpec("para", coupled_para_factory(2000))]


def _series_json(series) -> str:
    return json.dumps(series_rows(series), sort_keys=True)


def _sweep(designs, small_system, sim, workloads, executor=None):
    with exec_runtime.activated(executor):
        return sweep_designs(designs, small_system, sim,
                             workloads=workloads)


class TestCells:
    def test_canonical_order_baseline_first(self, small_system, small_sim,
                                            designs):
        two = profiles_for(names=["mcf", "add"])
        cells = sweep_cells(designs, small_system, small_sim, two)
        names = [cell.policy_name for cell in cells]
        assert names == ["none", "none", "para",
                         "none", "none", "para"]
        assert [cell.workload.name for cell in cells[:3]] == ["mcf"] * 3

    def test_system_override_only_affects_run_system(self, small_sim,
                                                     workloads):
        system = SystemConfig.baseline(refs_per_window=64, num_cores=2)
        prac = SystemConfig.prac(64, num_cores=2)
        specs = [DesignSpec("prac", no_mitigation_factory(), system=prac)]
        cells = sweep_cells(specs, system, small_sim, workloads)
        assert cells[1].trace_system == system
        assert cells[1].run_system == prac

    def test_spec_cells_fingerprint_and_closures_do_not(self, small_system,
                                                        small_sim,
                                                        workloads):
        specced = Cell(workload=workloads[0], trace_system=small_system,
                       run_system=small_system, sim=small_sim,
                       policy=no_mitigation_factory(), policy_name="none")
        bare = Cell(workload=workloads[0], trace_system=small_system,
                    run_system=small_system, sim=small_sim,
                    policy=lambda context: NoMitigation(),
                    policy_name="closure")
        assert cell_fingerprint(specced) is not None
        assert cell_fingerprint(bare) is None


class TestDeterminism:
    def test_parallel_results_byte_identical_to_serial(self, small_system,
                                                       small_sim, designs,
                                                       workloads):
        serial = _sweep(designs, small_system, small_sim, workloads)
        with SweepExecutor(jobs=2) as executor:
            parallel = _sweep(designs, small_system, small_sim, workloads,
                              executor)
        assert _series_json(parallel) == _series_json(serial)

    def test_cached_results_byte_identical(self, tmp_path, small_system,
                                           small_sim, designs, workloads):
        with SweepExecutor(cache=RunCache(tmp_path)) as cold:
            first = _sweep(designs, small_system, small_sim, workloads,
                           cold)
        with SweepExecutor(cache=RunCache(tmp_path)) as warm:
            second = _sweep(designs, small_system, small_sim, workloads,
                            warm)
        assert _series_json(second) == _series_json(first)
        assert warm.stats.computed == 0

    def test_closure_designs_still_work(self, small_system, small_sim,
                                        workloads):
        closure = [DesignSpec("closure",
                              lambda context: NoMitigation())]
        with SweepExecutor(jobs=2) as executor:
            series = _sweep(closure, small_system, small_sim, workloads,
                            executor)
        assert executor.stats.inline > 0
        assert series["closure"].average_slowdown == \
            pytest.approx(0.0, abs=0.1)


class TestReuse:
    def test_baseline_memoised_across_experiments(self, small_system,
                                                  small_sim, designs,
                                                  workloads):
        with SweepExecutor() as executor:
            _sweep(designs, small_system, small_sim, workloads, executor)
            computed_first = executor.stats.computed
            _sweep(designs, small_system, small_sim, workloads, executor)
        assert computed_first == 3  # baseline + 2 designs
        assert executor.stats.computed == computed_first
        assert executor.stats.memo_hits >= 3

    def test_warm_cache_hits_without_recompute(self, tmp_path,
                                               small_system, small_sim,
                                               designs, workloads):
        with SweepExecutor(cache=RunCache(tmp_path)) as cold:
            _sweep(designs, small_system, small_sim, workloads, cold)
        assert cold.cache.stats.stores == 3
        assert cold.cache.stats.hits == 0
        with SweepExecutor(cache=RunCache(tmp_path)) as warm:
            _sweep(designs, small_system, small_sim, workloads, warm)
        assert warm.cache.stats.hits == 3
        assert warm.cache.stats.misses == 0
        assert warm.stats.computed == 0

    def test_changed_seed_misses_cache(self, tmp_path, small_system,
                                       designs, workloads):
        cache_dir = tmp_path
        with SweepExecutor(cache=RunCache(cache_dir)) as cold:
            _sweep(designs, small_system,
                   SimConfig(requests_per_core=1_500, seed=7),
                   workloads, cold)
        with SweepExecutor(cache=RunCache(cache_dir)) as reseeded:
            _sweep(designs, small_system,
                   SimConfig(requests_per_core=1_500, seed=8),
                   workloads, reseeded)
        assert reseeded.cache.stats.hits == 0
        assert reseeded.stats.computed == 3

    def test_changed_policy_args_miss_cache(self, tmp_path, small_system,
                                            small_sim, workloads):
        with SweepExecutor(cache=RunCache(tmp_path)) as cold:
            _sweep([DesignSpec("para", coupled_para_factory(2000))],
                   small_system, small_sim, workloads, cold)
        with SweepExecutor(cache=RunCache(tmp_path)) as warm:
            _sweep([DesignSpec("para", coupled_para_factory(4000))],
                   small_system, small_sim, workloads, warm)
        # Baseline hits; the retuned design must not.
        assert warm.cache.stats.hits == 1
        assert warm.stats.computed == 1

    def test_changed_system_misses_cache(self, tmp_path, small_sim,
                                         designs, workloads):
        with SweepExecutor(cache=RunCache(tmp_path)) as cold:
            _sweep(designs,
                   SystemConfig.baseline(refs_per_window=64, num_cores=2),
                   small_sim, workloads, cold)
        with SweepExecutor(cache=RunCache(tmp_path)) as warm:
            _sweep(designs,
                   SystemConfig.baseline(refs_per_window=32, num_cores=2),
                   small_sim, workloads, warm)
        assert warm.cache.stats.hits == 0
        assert warm.stats.computed == 3

    def test_corrupt_entry_recomputed(self, tmp_path, small_system,
                                      small_sim, designs, workloads):
        with SweepExecutor(cache=RunCache(tmp_path)) as cold:
            reference = _sweep(designs, small_system, small_sim,
                               workloads, cold)
        for entry in tmp_path.rglob("*.json"):
            entry.write_text("garbage{")
        with SweepExecutor(cache=RunCache(tmp_path)) as warm:
            recovered = _sweep(designs, small_system, small_sim,
                               workloads, warm)
        assert warm.cache.stats.corrupt == 3
        assert warm.stats.computed == 3
        assert _series_json(recovered) == _series_json(reference)


class TestTelemetryCapture:
    def _instrumented(self, designs, small_system, small_sim, workloads,
                      executor=None):
        telemetry = Telemetry(journal_memory=True)
        with obs_runtime.activated(telemetry):
            series = _sweep(designs, small_system, small_sim, workloads,
                            executor)
        return series, telemetry

    def test_parallel_cached_sweep_stores_artifacts(self, tmp_path,
                                                    small_system,
                                                    small_sim, designs,
                                                    workloads):
        with SweepExecutor(jobs=2, cache=RunCache(tmp_path)) as executor:
            series, telemetry = self._instrumented(
                designs, small_system, small_sim, workloads, executor)
        assert executor.cache.stats.stores == 3
        assert len(list(tmp_path.rglob("*.obs.json"))) == 3
        assert "para" in series
        assert telemetry.registry.counter("sim.runs").value == 3

    def test_parallel_results_match_plain(self, small_system, small_sim,
                                          designs, workloads):
        plain = _sweep(designs, small_system, small_sim, workloads)
        with SweepExecutor(jobs=2) as executor:
            instrumented, _ = self._instrumented(
                designs, small_system, small_sim, workloads, executor)
        assert _series_json(instrumented) == _series_json(plain)

    def test_merged_telemetry_identical_across_modes(self, tmp_path,
                                                     small_system,
                                                     small_sim, designs,
                                                     workloads):
        def merged(executor=None):
            _, telemetry = self._instrumented(
                designs, small_system, small_sim, workloads, executor)
            snapshot = telemetry.snapshot()
            return (json.dumps(snapshot["metrics"], sort_keys=True),
                    json.dumps(telemetry.journal.records, default=str))

        serial = merged()
        with SweepExecutor(jobs=2) as pooled:
            parallel = merged(pooled)
        with SweepExecutor(cache=RunCache(tmp_path)) as cold_exec:
            cold = merged(cold_exec)
        with SweepExecutor(cache=RunCache(tmp_path)) as warm_exec:
            warm = merged(warm_exec)
        assert warm_exec.stats.computed == 0
        assert parallel == serial
        assert cold == serial
        assert warm == serial

    def test_cache_without_artifact_recomputes(self, tmp_path,
                                               small_system, small_sim,
                                               designs, workloads):
        # Populate the cache with a telemetry-blind run...
        with SweepExecutor(cache=RunCache(tmp_path)) as blind:
            _sweep(designs, small_system, small_sim, workloads, blind)
        assert not list(tmp_path.rglob("*.obs.json"))
        # ...then an instrumented run must recompute (and backfill).
        with SweepExecutor(cache=RunCache(tmp_path)) as warm:
            _, telemetry = self._instrumented(
                designs, small_system, small_sim, workloads, warm)
        assert warm.stats.computed == 3
        assert len(list(tmp_path.rglob("*.obs.json"))) == 3
        assert telemetry.registry.counter("sim.runs").value == 3


class TestRuntime:
    def test_activated_scopes_the_ambient_executor(self):
        executor = SweepExecutor()
        assert exec_runtime.active() is None
        with exec_runtime.activated(executor):
            assert exec_runtime.active() is executor
        assert exec_runtime.active() is None

    def test_activated_none_is_a_noop(self):
        with exec_runtime.activated(None):
            assert exec_runtime.active() is None

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepExecutor(jobs=0)
