"""Unit tests for the content-addressed run cache."""

import dataclasses
import json

from repro.exec.cache import RunCache
from repro.exec.fingerprint import CACHE_SCHEMA_VERSION
from repro.sim.results import RunResult

FP = "ab" + "0" * 62
OTHER_FP = "cd" + "1" * 62


def sample_result(**overrides) -> RunResult:
    fields = dict(
        workload="mcf",
        policy="none",
        finish_times_ps=[1_000, 2_000],
        end_time_ps=2_000,
        requests_completed=2,
        activations=2,
        row_hits=0,
        row_conflicts=0,
        mitigation_commands=0,
        rows_mitigated=0,
        average_rlp=0.0,
        bus_busy_ps=100,
        subchannels=2,
        policy_summaries=[{"activations": 2.0}],
    )
    fields.update(overrides)
    return RunResult(**fields)


class TestRoundTrip:
    def test_get_before_put_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.get(FP) is None
        assert cache.stats.misses == 1

    def test_put_then_get_round_trips_exactly(self, tmp_path):
        cache = RunCache(tmp_path)
        result = sample_result()
        cache.put(FP, result, key={"cell": "demo"})
        cached = cache.get(FP)
        assert cached == result
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1

    def test_entries_fan_out_by_prefix(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(FP, sample_result())
        path = cache.path_for(FP)
        assert path.exists()
        assert path.parent.name == FP[:2]

    def test_entry_is_readable_json_with_key(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(FP, sample_result(), key={"workload": "mcf"})
        entry = json.loads(cache.path_for(FP).read_text())
        assert entry["schema"] == CACHE_SCHEMA_VERSION
        assert entry["fingerprint"] == FP
        assert entry["key"] == {"workload": "mcf"}

    def test_distinct_fingerprints_distinct_entries(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(FP, sample_result(policy="none"))
        cache.put(OTHER_FP, sample_result(policy="mint"))
        assert cache.get(FP).policy == "none"
        assert cache.get(OTHER_FP).policy == "mint"


class TestCorruption:
    def _corrupt(self, tmp_path, text: str) -> RunCache:
        cache = RunCache(tmp_path)
        path = cache.path_for(FP)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return cache

    def test_truncated_entry_is_discarded(self, tmp_path):
        cache = self._corrupt(tmp_path, '{"schema": 1, "resu')
        assert cache.get(FP) is None
        assert cache.stats.corrupt == 1
        assert not cache.path_for(FP).exists()

    def test_wrong_schema_is_discarded(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(FP, sample_result())
        path = cache.path_for(FP)
        entry = json.loads(path.read_text())
        entry["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.get(FP) is None
        assert cache.stats.corrupt == 1

    def test_fingerprint_mismatch_is_discarded(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(FP, sample_result())
        entry = json.loads(cache.path_for(FP).read_text())
        other = RunCache(tmp_path)
        path = other.path_for(OTHER_FP)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(entry))
        assert other.get(OTHER_FP) is None
        assert other.stats.corrupt == 1

    def test_missing_result_fields_discarded(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(FP, sample_result())
        path = cache.path_for(FP)
        entry = json.loads(path.read_text())
        del entry["result"]["workload"]
        path.write_text(json.dumps(entry))
        assert cache.get(FP) is None
        assert cache.stats.corrupt == 1

    def test_corrupt_entry_recovers_on_next_put(self, tmp_path):
        cache = self._corrupt(tmp_path, "not json at all")
        assert cache.get(FP) is None
        cache.put(FP, sample_result())
        assert cache.get(FP) == sample_result()

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(FP, sample_result())
        leftovers = [p for p in cache.path_for(FP).parent.iterdir()
                     if p.suffix == ".tmp"]
        assert leftovers == []


class TestEntryShape:
    def test_result_payload_matches_dataclass_fields(self, tmp_path):
        cache = RunCache(tmp_path)
        result = sample_result()
        cache.put(FP, result)
        entry = json.loads(cache.path_for(FP).read_text())
        expected = {f.name for f in dataclasses.fields(RunResult)}
        assert set(entry["result"]) == expected
