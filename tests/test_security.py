"""Unit tests for the analytic security models (Appendices A/B)."""

import math

import pytest

from repro.core.security import (PAPER_TABLE7_PENALTY, dream_r_mint_threshold,
                                 gamma_tail, mint_window_dream_r,
                                 mint_window_with_atm,
                                 para_delay_failure_factor,
                                 para_exponent_dream_r,
                                 para_probability_dream_r,
                                 para_probability_with_atm,
                                 revised_parameters, rmaq_threshold_penalty)


class TestParaGammaAnalysis:
    def test_gamma_tail_formula(self):
        # Equation 1: P(z >= T) = (1 + pT) e^{-pT}.
        p, t = 0.01, 2000
        assert gamma_tail(p, t) == pytest.approx(
            (1 + p * t) * math.exp(-p * t))

    def test_failure_factor_at_design_point(self):
        # (1 + pT) = 21 at pT = 20: the paper quotes ~20x.
        assert para_delay_failure_factor(20.0) == pytest.approx(21.0)

    def test_exponent_solves_target(self):
        x = para_exponent_dream_r()
        assert (1 + x) * math.exp(-x) == pytest.approx(math.exp(-20),
                                                       rel=1e-9)

    def test_revised_probability_near_paper(self):
        # Paper: p = 1/85 at T_RH = 2000 (we solve exactly: ~1/86).
        p = para_probability_dream_r(2000)
        assert 1 / 90 < p < 1 / 80

    def test_revision_is_an_increase(self):
        assert para_probability_dream_r(2000) > 1 / 100

    def test_with_atm_near_coupled(self):
        # Paper Table 4: ATM keeps p at ~1/99.
        p = para_probability_with_atm(2000)
        assert 1 / 100 < p <= 1 / 99


class TestMintDelayAnalysis:
    def test_dream_r_window(self):
        # Paper: W = 97 at T_RH = 2000 (20.5 activations per window).
        assert mint_window_dream_r(2000) == 97

    def test_with_atm(self):
        # Paper Table 4: W = 99 with ATM.
        assert mint_window_with_atm(2000) == 99

    def test_design_threshold(self):
        assert dream_r_mint_threshold(100) == 2000

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            mint_window_dream_r(10)


class TestRmaqPenalty:
    @pytest.mark.parametrize("window", sorted(PAPER_TABLE7_PENALTY))
    def test_matches_paper_within_rounding(self, window):
        ours = rmaq_threshold_penalty(window)
        paper = PAPER_TABLE7_PENALTY[window]
        assert abs(ours - paper) <= 2

    def test_vanishes_for_large_windows(self):
        assert rmaq_threshold_penalty(45) == 0
        assert rmaq_threshold_penalty(100) == 0

    def test_monotone_decreasing(self):
        penalties = [rmaq_threshold_penalty(w) for w in range(25, 50, 5)]
        assert penalties == sorted(penalties, reverse=True)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            rmaq_threshold_penalty(0)


class TestRevisedParameters:
    def test_table4_row(self):
        params = revised_parameters(2000)
        assert params.para_p_coupled == pytest.approx(1 / 100)
        assert params.mint_w_coupled == 100
        assert params.mint_w_dream_r == 97
        assert params.mint_w_with_atm == 99

    def test_describe_mentions_values(self):
        text = revised_parameters(2000).describe()
        assert "1/100" in text
        assert "W=100" in text
        assert "97" in text

    def test_ordering_invariant(self):
        # Coupled <= ATM <= no-ATM mitigation frequency; window reversed.
        for t_rh in (1000, 2000, 4000):
            params = revised_parameters(t_rh)
            assert params.para_p_coupled <= params.para_p_with_atm <= \
                params.para_p_dream_r
            assert params.mint_w_dream_r <= params.mint_w_with_atm <= \
                params.mint_w_coupled
