"""Tests for the motivation experiment module."""

import pytest

from repro.experiments import motivation


class TestDecoyPattern:
    def test_shape(self):
        pattern = motivation._decoy_pattern(rounds=3)
        # Per round: 4 decoys x 3 + 2 targets x 2 = 16 accesses.
        assert len(pattern) == 3 * 16
        assert pattern[:3] == [100, 100, 100]
        assert pattern[12:14] == [10, 10]

    def test_decoys_dominate(self):
        pattern = motivation._decoy_pattern(rounds=10)
        decoy_share = sum(1 for row in pattern if row >= 100) / len(pattern)
        assert decoy_share == pytest.approx(0.75)


class TestTrrBypassExperiment:
    def test_runs_and_shows_the_story(self):
        result = motivation.run_trr_bypass(quick=True)
        by_key = {(r["pattern"], r["defense"]): r for r in result.rows}
        assert len(result.rows) == 9  # 3 patterns x 3 defenses
        # Undefended double-sided flips; TRR stops it.
        assert by_key[("double-sided", "none")]["bit_flips"] > 0
        assert by_key[("double-sided", "trr")]["bit_flips"] == 0
        # The decoy pattern bypasses TRR; DREAM-R holds.
        assert by_key[("decoy-shadow", "trr")]["bit_flips"] > 0
        assert by_key[("decoy-shadow", "mint-dream-r")]["bit_flips"] == 0

    def test_outcome_fields(self):
        result = motivation.run_trr_bypass(quick=True)
        for row in result.rows:
            assert {"pattern", "defense", "peak_streak", "mitigations",
                    "bit_flips"} <= set(row)


class TestPracExtrinsicExperiment:
    def test_runs_with_expected_rows(self):
        result = motivation.run_prac_extrinsic(quick=True)
        defenses = [row["defense"] for row in result.rows]
        assert defenses == ["none", "prac-moat", "mint-dream-r"]

    def test_attack_forces_mitigations(self):
        result = motivation.run_prac_extrinsic(quick=True)
        rows = {row["defense"]: row for row in result.rows}
        assert rows["prac-moat"]["mitigations"] > 0
        assert rows["mint-dream-r"]["mitigations"] > 0
        assert rows["none"]["slowdown_factor"] == pytest.approx(1.0)

    def test_factors_bounded(self):
        result = motivation.run_prac_extrinsic(quick=True)
        for row in result.rows:
            assert row["slowdown_factor"] < 3.0
