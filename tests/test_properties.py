"""Property-based tests (hypothesis) for core data structures/invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dream_c import GangMapper
from repro.core.rmaq import RATE_LIMIT_TREFI, RecentMitigationQueue
from repro.core.storage import dream_c_config
from repro.cpu.llc import SetAssociativeCache
from repro.cpu.metrics import slowdown_percent, weighted_speedup
from repro.dram.address import MOPMapper
from repro.dram.device import Organization
from repro.dram.timing import DDR5Timing
from repro.sim.engine import EventQueue
from repro.trackers.abacus import AbacusTable
from repro.trackers.graphene import MisraGriesTable
from repro.trackers.mint import MintWindow

_ORG = Organization.scaled(64)
_MAPPER = MOPMapper(_ORG)


class TestMOPMapping:
    @given(line=st.integers(min_value=0,
                            max_value=_MAPPER.total_lines - 1))
    def test_roundtrip(self, line):
        assert _MAPPER.line_of(_MAPPER.map_line(line)) == line

    @given(line=st.integers(min_value=0,
                            max_value=_MAPPER.total_lines - 1))
    def test_coordinates_in_range(self, line):
        loc = _MAPPER.map_line(line)
        assert 0 <= loc.subchannel < _ORG.subchannels
        assert 0 <= loc.bank < _ORG.banks
        assert 0 <= loc.row < _ORG.rows_per_bank
        assert 0 <= loc.col < _ORG.cols_per_row

    @given(line=st.integers(min_value=0,
                            max_value=_MAPPER.total_lines - 5))
    def test_chunk_locality(self, line):
        # Lines within the same MOP chunk share bank and row.
        base = (line // 4) * 4
        locs = [_MAPPER.map_line(base + i) for i in range(4)]
        assert len({(l.subchannel, l.bank, l.row) for l in locs}) == 1


class TestGangMapperProperties:
    @given(t_rh=st.sampled_from([125, 250, 500, 1000]),
           seed=st.integers(min_value=0, max_value=2 ** 31),
           randomized=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_bijection(self, t_rh, seed, randomized):
        config = dream_c_config(t_rh, rows_per_bank=256)
        mapper = GangMapper(config, randomized,
                            np.random.default_rng(seed))
        bank = seed % 32
        gangs = [mapper.gang_of(bank, row) for row in range(256)]
        counts = np.bincount(gangs, minlength=mapper.total_entries)
        assert (counts == mapper.slices).all()

    @given(t_rh=st.sampled_from([125, 250, 500]),
           seed=st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=30, deadline=None)
    def test_rows_of_inverse(self, t_rh, seed):
        config = dream_c_config(t_rh, rows_per_bank=256)
        mapper = GangMapper(config, True, np.random.default_rng(seed))
        bank, gang = seed % 32, seed % mapper.total_entries
        rows = mapper.rows_of(bank, gang)
        assert len(rows) == mapper.slices
        assert all(mapper.gang_of(bank, row) == gang for row in rows)


class TestMisraGriesProperties:
    @given(rows=st.lists(st.integers(min_value=0, max_value=30),
                         min_size=1, max_size=400))
    @settings(max_examples=50, deadline=None)
    def test_estimate_error_bounded_by_spill(self, rows):
        table = MisraGriesTable(0, entries=8, threshold=10 ** 6)
        true_counts: dict[int, int] = {}
        for row in rows:
            table.observe(0, row)
            true_counts[row] = true_counts.get(row, 0) + 1
        for row, true in true_counts.items():
            estimate = table.estimated_count(row)
            assert estimate <= true + table.spill
            assert estimate >= true - table.spill

    @given(noise=st.lists(st.integers(min_value=100, max_value=200),
                          min_size=0, max_size=150),
           threshold=st.integers(min_value=5, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_heavy_hitter_always_flagged(self, noise, threshold):
        # A row with > threshold activations must demand mitigation when
        # the table is sized for the total activation volume.
        hot_acts = threshold + 1
        total = hot_acts + len(noise)
        entries = -(-total // threshold) + 1
        table = MisraGriesTable(0, entries=entries, threshold=threshold)
        demands = []
        stream = [7] * hot_acts + noise
        for row in stream:
            demands.extend(table.observe(0, row))
        assert any(d.row == 7 for d in demands)


class TestMintWindowProperties:
    @given(window=st.integers(min_value=1, max_value=50),
           windows=st.integers(min_value=1, max_value=20),
           seed=st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=50, deadline=None)
    def test_exactly_one_selection_per_window(self, window, windows, seed):
        machine = MintWindow(window, np.random.default_rng(seed))
        for _ in range(windows):
            selections = sum(machine.observe(row)
                             for row in range(window))
            assert selections == 1
            assert machine.roll_over() is not None


class TestAbacusProperties:
    @given(accesses=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=7)),
        min_size=1, max_size=400))
    @settings(max_examples=50, deadline=None)
    def test_counter_never_exceeds_threshold(self, accesses):
        table = AbacusTable(rows=8, num_banks=4, threshold=5)
        for bank, row in accesses:
            table.observe(bank, row)
            assert (table.counters < 5).all()


class TestEventQueueProperties:
    @given(times=st.lists(st.integers(min_value=0, max_value=10 ** 9),
                          min_size=1, max_size=200))
    def test_pops_sorted(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(t, t)
        popped = [t for t, _ in queue.drain()]
        assert popped == sorted(times)


class TestRmaqProperties:
    @given(inserts=st.lists(
        st.tuples(st.integers(min_value=0, max_value=10),
                  st.integers(min_value=0, max_value=10 ** 8)),
        min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_contains_implies_within_horizon(self, inserts):
        t_refi = 3_900_000
        queue = RecentMitigationQueue(4, t_refi)
        inserts = sorted(inserts, key=lambda pair: pair[1])
        history: dict[int, int] = {}
        for address, time in inserts:
            queue.insert(address, time)
            history[address] = time
        now = inserts[-1][1]
        for address, last in history.items():
            if queue.contains(address, now):
                # Live entries were inserted within the epoch horizon.
                assert (now // t_refi) - (last // t_refi) <= \
                    RATE_LIMIT_TREFI

    @given(count=st.integers(min_value=1, max_value=50))
    def test_capacity_respected(self, count):
        queue = RecentMitigationQueue(4, 3_900_000)
        for i in range(count):
            queue.insert(i, 0)
        assert len(queue) <= 4


class TestLLCProperties:
    @given(lines=st.lists(st.integers(min_value=0, max_value=500),
                          min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_bounded_and_hit_after_access(self, lines):
        cache = SetAssociativeCache(size_bytes=64 * 4 * 8, ways=4)
        for line in lines:
            cache.access(line)
            assert cache.contains(line)
        for lru in cache._sets:
            assert len(lru) <= cache.ways


class TestMetricsProperties:
    @given(times=st.lists(st.integers(min_value=1, max_value=10 ** 9),
                          min_size=1, max_size=16))
    def test_identity_run_scores_zero(self, times):
        assert abs(slowdown_percent(times, times)) < 1e-9
        assert weighted_speedup(times, times) == len(times)

    @given(base=st.lists(st.integers(min_value=1, max_value=10 ** 6),
                         min_size=1, max_size=8),
           factor=st.integers(min_value=1, max_value=10))
    def test_slower_runs_never_negative(self, base, factor):
        slower = [t * factor for t in base]
        assert slowdown_percent(base, slower) >= -1e-9


class TestTimingProperties:
    @given(divisor=st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 256]))
    def test_scaling_preserves_duty_cycle(self, divisor):
        scaled = DDR5Timing.scaled(8192 // divisor)
        assert scaled.refresh_duty_cycle == \
            DDR5Timing.jedec().refresh_duty_cycle
        scaled.validate()
