"""Unit/integration tests for the simulation runner and results."""

import pytest

from repro.mc.policy import no_mitigation_factory
from repro.sim.config import SimConfig
from repro.sim.results import ComparisonResult
from repro.sim.runner import run_comparison, run_simulation
from repro.workloads.builder import build_traces


@pytest.fixture
def traces(small_system, small_sim):
    return build_traces("mcf", small_system, small_sim, calibrate=False)


class TestRunSimulation:
    def test_completes_budget(self, small_system, small_sim, traces):
        result = run_simulation(small_system, traces, small_sim)
        expected = small_system.num_cores * small_sim.requests_per_core
        assert result.requests_completed == expected
        assert result.end_time_ps > 0
        assert all(t > 0 for t in result.finish_times_ps)

    def test_deterministic(self, small_system, small_sim, traces):
        a = run_simulation(small_system, traces, small_sim)
        b = run_simulation(small_system, traces, small_sim)
        assert a.finish_times_ps == b.finish_times_ps
        assert a.activations == b.activations

    def test_counts_consistent(self, small_system, small_sim, traces):
        result = run_simulation(small_system, traces, small_sim)
        accesses = result.activations + result.row_hits
        assert accesses == result.requests_completed
        assert 0 < result.row_hit_rate < 1
        assert 0 < result.bus_utilization < 1

    def test_policy_label_recorded(self, small_system, small_sim, traces):
        result = run_simulation(small_system, traces, small_sim,
                                no_mitigation_factory(), "baseline-check")
        assert result.policy == "baseline-check"
        assert len(result.policy_summaries) == 2  # one per sub-channel

    def test_trace_count_validated(self, small_system, small_sim, traces):
        with pytest.raises(ValueError, match="expected"):
            run_simulation(small_system, traces[:1], small_sim)


class TestRunComparison:
    def test_no_mitigation_is_near_zero_slowdown(self, small_system,
                                                 small_sim, traces):
        comparison = run_comparison(small_system, traces, small_sim,
                                    no_mitigation_factory(), "none")
        assert comparison.slowdown_percent == pytest.approx(0.0, abs=0.01)
        assert comparison.normalized_performance == pytest.approx(
            1.0, abs=0.001)

    def test_reuses_provided_baseline(self, small_system, small_sim,
                                      traces):
        baseline = run_simulation(small_system, traces, small_sim)
        comparison = run_comparison(small_system, traces, small_sim,
                                    no_mitigation_factory(), "none",
                                    baseline=baseline)
        assert comparison.baseline is baseline


class TestRunResultProperties:
    def test_describe(self, small_system, small_sim, traces):
        result = run_simulation(small_system, traces, small_sim)
        text = result.describe()
        assert "mcf" in text
        assert "bw=" in text

    def test_act_rate(self, small_system, small_sim, traces):
        result = run_simulation(small_system, traces, small_sim)
        expected = result.activations / (result.end_time_ps / 1000)
        assert result.act_rate_per_ns == pytest.approx(expected)

    def test_comparison_describe(self, small_system, small_sim, traces):
        comparison = run_comparison(small_system, traces, small_sim,
                                    no_mitigation_factory(), "none")
        assert "slowdown=" in comparison.describe()
