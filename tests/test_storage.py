"""Unit tests for the storage calculators (Table 6 and comparisons)."""

import pytest

from repro.core.storage import (DreamCConfig, compare_storage,
                                counter_bits, dream_c_config,
                                vertical_factor)


class TestVerticalFactor:
    def test_table6_scaling(self):
        assert vertical_factor(125) == 1
        assert vertical_factor(250) == 2
        assert vertical_factor(500) == 4
        assert vertical_factor(1000) == 8

    def test_rejects_below_base(self):
        with pytest.raises(ValueError):
            vertical_factor(100)


class TestDreamCConfig:
    @pytest.mark.parametrize("t_rh,gang,drfms,kb", [
        (125, 32, 1, 3.0),
        (250, 64, 2, 1.75),
        (500, 128, 4, 1.0),
        (1000, 256, 8, 0.5625),
    ])
    def test_table6_rows(self, t_rh, gang, drfms, kb):
        config = dream_c_config(t_rh)
        assert config.gang_size == gang
        assert config.drfms_per_mitigation == drfms
        assert config.sram_kb_per_bank() == pytest.approx(kb, rel=0.01)

    def test_tracker_threshold_is_half(self):
        assert dream_c_config(500).tracker_threshold == 250

    def test_counter_bits(self):
        assert counter_bits(125) == 6
        assert counter_bits(250) == 7
        assert counter_bits(500) == 8
        assert counter_bits(1000) == 9

    def test_mask_storage_68_bytes(self):
        # 32 masks x 17 bits = 68 bytes per sub-channel (Section 5.4).
        assert dream_c_config(125).mask_bits() == 68 * 8

    def test_storage_multiplier(self):
        base = dream_c_config(125)
        doubled = dream_c_config(125, storage_multiplier=2)
        assert doubled.dct_entries == 2 * base.dct_entries
        assert doubled.sram_kb_per_bank() == pytest.approx(
            2 * base.sram_kb_per_bank())

    def test_scaled_rows(self):
        config = dream_c_config(500, rows_per_bank=1024)
        assert config.dct_entries == 256

    def test_dct_entries_default_equals_rows_for_v1(self):
        # "By default, the number of entries in DCT is equal to the
        # number of rows in a single bank" (Section 5.4, V = 1).
        assert dream_c_config(125).dct_entries == 128 * 1024


class TestComparisons:
    def test_graphene_ratio_at_500(self):
        # Paper headline: 8x lower storage than Graphene at T_RH = 500.
        comparison = compare_storage(500)
        assert comparison.graphene_ratio == pytest.approx(8.0, rel=0.05)

    def test_abacus_ratio_at_125(self):
        # Paper headline: 6.3x lower storage than ABACuS at T_RH = 125.
        comparison = compare_storage(125)
        assert comparison.abacus_ratio == pytest.approx(6.33, rel=0.05)

    def test_dream_c_always_smallest(self):
        for t_rh in (125, 250, 500, 1000):
            comparison = compare_storage(t_rh)
            assert comparison.dream_c_kb < comparison.graphene_kb
            assert comparison.dream_c_kb < comparison.abacus_kb
