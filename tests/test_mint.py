"""Unit tests for the MINT tracker components."""

import numpy as np
import pytest

from repro.trackers.mint import (MintWindow, threshold_for_window,
                                 window_for_threshold)


class TestParameterDerivation:
    def test_paper_operating_point(self):
        # T_RH = 2000 -> W = 100 (Appendix B: T_RH = 20 * W).
        assert window_for_threshold(2000) == 100

    def test_inverse(self):
        assert threshold_for_window(100) == 2000

    def test_rejects_tiny_threshold(self):
        with pytest.raises(ValueError):
            window_for_threshold(10)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            threshold_for_window(0)


class TestWindowMachine:
    def test_selects_exactly_one_per_window(self):
        window = MintWindow(10, np.random.default_rng(1))
        selections = sum(window.observe(row) for row in range(10))
        assert selections == 1
        assert window.expired

    def test_selected_row_captured(self):
        window = MintWindow(10, np.random.default_rng(1))
        for row in range(10):
            if window.observe(row + 100):
                expected = row + 100
        assert window.roll_over() == expected

    def test_observe_past_expiry_raises(self):
        window = MintWindow(2, np.random.default_rng(1))
        window.observe(1)
        window.observe(2)
        with pytest.raises(RuntimeError, match="expired"):
            window.observe(3)

    def test_roll_over_before_expiry_raises(self):
        window = MintWindow(5, np.random.default_rng(1))
        with pytest.raises(RuntimeError, match="not expired"):
            window.roll_over()

    def test_roll_over_resets(self):
        window = MintWindow(3, np.random.default_rng(1))
        for row in range(3):
            window.observe(row)
        window.roll_over()
        assert window.can == 0
        assert not window.expired
        assert window.selected_row is None
        assert window.windows_completed == 1

    def test_san_uniform_over_window(self):
        rng = np.random.default_rng(2)
        window = MintWindow(10, rng)
        sans = []
        for _ in range(2000):
            sans.append(window.san)
            for row in range(10):
                window.observe(row)
            window.roll_over()
        counts = np.bincount(sans, minlength=10)
        assert counts.min() > 100  # roughly uniform

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            MintWindow(0, np.random.default_rng(1))


class TestInterSelectionDistances:
    def test_triangular_shape(self):
        window = MintWindow(100, np.random.default_rng(3))
        distances = window.inter_selection_distances(500_000)
        assert np.mean(distances) == pytest.approx(100, rel=0.05)
        # Triangular on (0, 2W): std = W / sqrt(6) ~ 0.408 W.
        assert np.std(distances) == pytest.approx(100 / np.sqrt(6),
                                                  rel=0.1)

    def test_bounded_by_two_windows(self):
        window = MintWindow(100, np.random.default_rng(3))
        distances = window.inter_selection_distances(100_000)
        assert distances.min() > -100  # sanity
        assert distances.max() < 200

    def test_fewer_short_gaps_than_para(self):
        window = MintWindow(100, np.random.default_rng(3))
        distances = window.inter_selection_distances(500_000)
        short = np.mean(distances < 50)
        assert short < 0.15  # triangular CDF at W/2 is 1/8
