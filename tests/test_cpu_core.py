"""Unit tests for the closed-loop core model."""

import numpy as np
import pytest

from repro.cpu.core import Core
from repro.workloads.trace import MemoryTrace


def _trace(length=10, gap=100):
    return MemoryTrace(
        name="unit",
        subchannel=np.zeros(length, dtype=np.int8),
        bank=np.arange(length, dtype=np.int16) % 4,
        row=np.arange(length, dtype=np.int64),
        gap_ps=np.full(length, gap, dtype=np.int64),
    )


class TestFetch:
    def test_fetch_returns_request_and_gap(self):
        core = Core(0, _trace(), budget=5, mlp=2)
        request, gap = core.fetch(slot=0)
        assert request.core == 0
        assert request.slot == 0
        assert request.index == 0
        assert gap == 100

    def test_fetch_decodes_coordinates(self):
        core = Core(0, _trace(), budget=5, mlp=1)
        request, _ = core.fetch(0)
        assert (request.subchannel, request.bank, request.row) == (0, 0, 0)

    def test_budget_exhaustion(self):
        core = Core(0, _trace(length=3), budget=2, mlp=1)
        assert core.fetch(0) is not None
        assert core.fetch(0) is not None
        assert core.fetch(0) is None

    def test_trace_wraps(self):
        core = Core(0, _trace(length=3), budget=7, mlp=1)
        indices = [core.fetch(0)[0].index for _ in range(7)]
        assert indices == [0, 1, 2, 0, 1, 2, 0]


class TestCompletion:
    def test_finish_time_recorded_on_last(self):
        core = Core(0, _trace(), budget=3, mlp=1)
        for _ in range(3):
            core.fetch(0)
        core.complete(10)
        core.complete(20)
        assert core.finish_time_ps is None
        core.complete(30)
        assert core.finish_time_ps == 30
        assert core.done


class TestValidation:
    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            Core(0, _trace(), budget=0, mlp=1)

    def test_rejects_bad_mlp(self):
        with pytest.raises(ValueError):
            Core(0, _trace(), budget=1, mlp=0)
