"""Batched backend through :class:`~repro.exec.executor.SweepExecutor`.

The executor must produce byte-identical results whatever the backend
(``scalar`` / ``batched`` / ``auto``), serial or pooled, with batched
fingerprints keyed separately from scalar ones, and a member that dies
inside a batch failing alone while its batch-mates are cached.
"""

import pytest

from tests import golden_engine
from repro.exec import faults
from repro.exec.cache import RunCache
from repro.exec.executor import Cell, SweepExecutor, cell_fingerprint
from repro.exec.resilience import CellPolicy, SweepFailure
from repro.sim.config import SimConfig
from repro.workloads.profiles import profile

REQUESTS = 400


def _cells(designs=("none", "mint-drfmsb"), seeds=(1, 2),
           workloads=("mcf",)):
    system = golden_engine._system()
    grid = golden_engine.designs()
    cells = []
    for workload in workloads:
        for design in designs:
            for seed in seeds:
                sim = SimConfig(requests_per_core=REQUESTS, seed=seed)
                cells.append(Cell(workload=profile(workload),
                                  trace_system=system,
                                  run_system=system, sim=sim,
                                  policy=grid[design],
                                  policy_name=design))
    return cells


def _jsons(results):
    return [result.to_json() for result in results]


@pytest.fixture(scope="module")
def scalar_reference():
    with SweepExecutor() as executor:
        return _jsons(executor.run_cells(_cells()))


class TestBackendIdentity:
    @pytest.mark.parametrize("backend,jobs", [("batched", 1),
                                              ("batched", 2),
                                              ("auto", 1)])
    def test_results_byte_identical(self, backend, jobs,
                                    scalar_reference):
        with SweepExecutor(jobs=jobs, backend=backend) as executor:
            got = _jsons(executor.run_cells(_cells()))
        assert got == scalar_reference

    def test_batched_counts_in_stats(self):
        with SweepExecutor(backend="batched") as executor:
            executor.run_cells(_cells())
            assert executor.stats.batched == len(_cells())
            assert "batched=" in executor.stats.describe()

    def test_auto_batches_only_policy_free_groups(self):
        cells = _cells(designs=("none", "mint-drfmsb"), seeds=(1, 2, 3, 4))
        with SweepExecutor(backend="auto") as executor:
            executor.run_cells(cells)
            # 4 policy-free baselines batch; 4 mint cells stay scalar.
            assert executor.stats.batched == 4
            assert executor.stats.computed == 8

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SweepExecutor(backend="gpu")

    def test_timeout_disables_batching(self):
        """A per-attempt timeout cannot be enforced inside a batch, so
        the executor silently falls back to scalar dispatch."""
        cells = _cells(designs=("none",), seeds=(1, 2, 3, 4))
        with SweepExecutor(backend="batched",
                           policy=CellPolicy(timeout_s=120)) as executor:
            executor.run_cells(cells)
            assert executor.stats.batched == 0
            assert executor.stats.computed == len(cells)


class TestBackendCaching:
    def test_batched_results_cached_under_batched_key(self, tmp_path):
        cells = _cells(designs=("none",), seeds=(1, 2))
        with SweepExecutor(cache=RunCache(tmp_path / "cache"),
                           backend="batched") as executor:
            first = _jsons(executor.run_cells(cells))
        with SweepExecutor(cache=RunCache(tmp_path / "cache"),
                           backend="batched") as executor:
            second = _jsons(executor.run_cells(cells))
            assert executor.stats.computed == 0  # warm cache served all
        assert first == second

    def test_scalar_cache_not_shared_with_batched(self, tmp_path):
        """Batched runs are keyed separately: a warm scalar cache can
        never mask a batched-engine identity regression."""
        cells = _cells(designs=("none",), seeds=(1,))
        with SweepExecutor(cache=RunCache(tmp_path / "cache")) as executor:
            executor.run_cells(cells)
        with SweepExecutor(cache=RunCache(tmp_path / "cache"),
                           backend="batched") as executor:
            executor.run_cells(cells)
            assert executor.stats.computed == len(cells)

    def test_memo_serves_repeated_batched_cells(self):
        cells = _cells(designs=("none",), seeds=(1, 2))
        with SweepExecutor(backend="batched") as executor:
            executor.run_cells(cells)
            executor.run_cells(cells)
            assert executor.stats.computed == len(cells)
            assert executor.stats.memo_hits == len(cells)

    def test_duplicate_cells_computed_once_per_batch(self):
        cells = _cells(designs=("none",), seeds=(1,))
        with SweepExecutor(backend="batched") as executor:
            results = executor.run_cells(cells * 3)
            assert executor.stats.computed == 1
            assert len({r.to_json() for r in results}) == 1


class TestBatchFaultIsolation:
    def test_crashing_member_fails_alone(self):
        cells = _cells(designs=("none",), seeds=(1, 2, 3, 4))
        fps = [cell_fingerprint(cell, backend="batched")
               for cell in cells]
        victim = fps[1]
        faults.install(faults.FaultPlan.parse(f"crash:{victim[:12]}:99"))
        try:
            with SweepExecutor(backend="batched",
                               policy=CellPolicy(retries=1)) as executor:
                with pytest.raises(SweepFailure) as excinfo:
                    executor.run_cells(cells)
                assert len(excinfo.value.failures) == 1
                assert excinfo.value.failures[0].fingerprint == victim
                # Batch-mates survived and are memoised.
                for fp in fps:
                    assert (fp in executor._memo) == (fp != victim)
        finally:
            faults.install(None)

    def test_crash_once_recovers_via_scalar_retry(self):
        cells = _cells(designs=("none",), seeds=(1, 2, 3))
        fps = [cell_fingerprint(cell, backend="batched")
               for cell in cells]
        faults.install(faults.FaultPlan.parse(f"crash:{fps[0][:12]}:1"))
        try:
            with SweepExecutor(backend="batched") as executor:
                results = executor.run_cells(cells)
                assert executor.stats.retries >= 1
                assert executor.stats.failed == 0
        finally:
            faults.install(None)
        with SweepExecutor() as executor:
            reference = executor.run_cells(cells)
        assert _jsons(results) == _jsons(reference)

    def test_corrupt_member_recovers_alone(self):
        cells = _cells(designs=("none",), seeds=(1, 2, 3))
        fps = [cell_fingerprint(cell, backend="batched")
               for cell in cells]
        faults.install(faults.FaultPlan.parse(f"corrupt:{fps[2][:12]}:1"))
        try:
            with SweepExecutor(backend="batched") as executor:
                results = executor.run_cells(cells)
                assert executor.stats.failed == 0
                assert executor.stats.retries >= 1
        finally:
            faults.install(None)
        with SweepExecutor() as executor:
            reference = executor.run_cells(cells)
        assert _jsons(results) == _jsons(reference)


class TestBackendTelemetry:
    def test_merged_telemetry_identical_across_backends(self):
        import json
        from repro.obs import Telemetry
        from repro.obs import runtime as obs_runtime

        outputs = []
        for backend, jobs in (("scalar", 1), ("batched", 1),
                              ("batched", 2)):
            telemetry = Telemetry(journal_memory=True,
                                  sample_every_refi=4)
            with obs_runtime.activated(telemetry):
                with SweepExecutor(jobs=jobs,
                                   backend=backend) as executor:
                    results = executor.run_cells(_cells())
            lines = [json.dumps(record, sort_keys=True)
                     for record in telemetry.journal.records]
            outputs.append((_jsons(results), lines,
                            telemetry.snapshot()["metrics"]))
        assert outputs[0] == outputs[1] == outputs[2]
