"""Unit tests for the adversarial attack harness."""

import pytest

from repro.analysis.harness import AttackHarness
from repro.mc.mitigation import coupled_para_factory
from repro.mc.policy import no_mitigation_factory
from repro.workloads.attacks import double_sided, single_sided


class TestUnprotectedBaseline:
    def test_counts_grow_unbounded(self):
        harness = AttackHarness(no_mitigation_factory())
        result = harness.run(single_sided(7, 200), bank=0)
        assert result.max_unmitigated == 200
        assert result.max_unmitigated_row == (0, 7)
        assert result.mitigations == 0

    def test_every_access_activates(self):
        harness = AttackHarness(no_mitigation_factory())
        harness.run(single_sided(7, 50), bank=0)
        assert harness.subchannel.banks[0].stats.activations == 50

    def test_double_sided_tracks_both(self):
        harness = AttackHarness(no_mitigation_factory())
        result = harness.run(double_sided(1, 2, 100), bank=0)
        assert result.peak_for(0, 1) == 50
        assert result.peak_for(0, 2) == 50


class TestMitigationAccounting:
    def test_mitigation_resets_streak(self):
        # Deterministic PARA (p = 1): every activation is mitigated, so
        # the streak can never exceed ~1.
        factory = coupled_para_factory(2000)

        def always(context):
            policy = factory(context)
            policy.probability = 1.0
            return policy

        harness = AttackHarness(always)
        result = harness.run(single_sided(7, 100), bank=0)
        assert result.max_unmitigated <= 2
        assert result.mitigations >= 99

    def test_state_persists_across_runs(self):
        harness = AttackHarness(no_mitigation_factory())
        harness.run(single_sided(7, 30), bank=0)
        result = harness.run(single_sided(7, 30), bank=0)
        assert result.max_unmitigated == 60

    def test_time_advances(self):
        harness = AttackHarness(no_mitigation_factory())
        harness.run(single_sided(7, 10), bank=0)
        assert harness.now_ps > 0
        assert harness.last_finish_ps >= harness.now_ps or \
            harness.pipeline_step_ps is None


class TestPipelinedMode:
    def test_pipelined_attacker_is_faster(self):
        serial = AttackHarness(no_mitigation_factory())
        serial.run([(b, 7) for b in range(8)] * 50)
        piped = AttackHarness(no_mitigation_factory())
        piped.pipeline_step_ps = piped.timing.t_bus
        piped.run([(b, 7) for b in range(8)] * 50)
        assert piped.last_finish_ps < serial.now_ps
