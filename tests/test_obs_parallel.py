"""End-to-end determinism of telemetry under every execution mode.

The tentpole guarantee: a sweep run serially, fanned over workers,
served from a warm cache, or resumed from a checkpoint produces
**byte-identical** merged telemetry — the deterministic ``metrics``
section, the journal records and the timeline — because each cell's
snapshot is captured where the cell executes and merged in the fixed
submission order.
"""

import json

import pytest

from repro.exec import runtime as exec_runtime
from repro.exec.cache import RunCache
from repro.exec.executor import SweepExecutor
from repro.exec.resilience import SweepCheckpoint
from repro.experiments.common import DesignSpec, sweep_designs
from repro.mc.mitigation import coupled_para_factory
from repro.mc.policy import no_mitigation_factory
from repro.obs import Telemetry
from repro.obs import runtime as obs_runtime
from repro.workloads.builder import clear_cache
from repro.workloads.profiles import profiles_for


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture
def workloads():
    return profiles_for(names=["mcf"])


@pytest.fixture
def designs():
    return [DesignSpec("none", no_mitigation_factory()),
            DesignSpec("para", coupled_para_factory(2000))]


#: Cells in the sweep: shared baseline + one per design.
CELLS = 3


def _merged(designs, small_system, small_sim, workloads, executor=None):
    """Run one instrumented sweep; return its comparable telemetry."""
    telemetry = Telemetry(journal_memory=True, sample_every_refi=2)
    with obs_runtime.activated(telemetry), \
            exec_runtime.activated(executor):
        sweep_designs(designs, small_system, small_sim,
                      workloads=workloads)
    return {
        "metrics": json.dumps(telemetry.snapshot()["metrics"],
                              sort_keys=True),
        "journal": json.dumps(telemetry.journal.records, default=str),
        "timeline": json.dumps(
            [sample.time_ps for sample in telemetry.timeline.samples]),
        "telemetry": telemetry,
    }


class TestByteIdenticalAcrossModes:
    def test_all_modes_match_serial(self, tmp_path, small_system,
                                    small_sim, designs, workloads):
        serial = _merged(designs, small_system, small_sim, workloads)
        with SweepExecutor(jobs=2) as pooled:
            parallel = _merged(designs, small_system, small_sim,
                               workloads, pooled)
        cache_dir = tmp_path / "runcache"
        with SweepExecutor(cache=RunCache(cache_dir)) as cold_exec:
            cold = _merged(designs, small_system, small_sim, workloads,
                           cold_exec)
        with SweepExecutor(cache=RunCache(cache_dir)) as warm_exec:
            warm = _merged(designs, small_system, small_sim, workloads,
                           warm_exec)
        assert warm_exec.stats.computed == 0
        for key in ("metrics", "journal", "timeline"):
            assert parallel[key] == serial[key], key
            assert cold[key] == serial[key], key
            assert warm[key] == serial[key], key

    def test_resume_matches_serial_without_double_counting(
            self, tmp_path, small_system, small_sim, designs, workloads):
        serial = _merged(designs, small_system, small_sim, workloads)
        cache = RunCache(tmp_path / "runcache")
        checkpoint = SweepCheckpoint(cache.checkpoint_path())
        with SweepExecutor(cache=cache,
                           checkpoint=checkpoint) as cold_exec:
            _merged(designs, small_system, small_sim, workloads,
                    cold_exec)
        resume_cache = RunCache(tmp_path / "runcache")
        resume_checkpoint = SweepCheckpoint(
            resume_cache.checkpoint_path(), resume=True)
        with SweepExecutor(cache=resume_cache,
                           checkpoint=resume_checkpoint) as resumed_exec:
            resumed = _merged(designs, small_system, small_sim,
                              workloads, resumed_exec)
        assert resumed_exec.stats.resumed == CELLS
        for key in ("metrics", "journal", "timeline"):
            assert resumed[key] == serial[key], key
        # Satellite guarantee: a resumed sweep counts every cell exactly
        # once — no double-counted runs, no duplicated journal records
        # or timeline samples.
        telemetry = resumed["telemetry"]
        assert telemetry.registry.counter("sim.runs").value == CELLS
        kinds = telemetry.journal.kinds()
        assert kinds["run_start"] == CELLS
        assert kinds["summary"] == CELLS
        assert len(telemetry.timeline.samples) == \
            len(serial["telemetry"].timeline.samples)

    def test_run_result_json_unchanged_by_telemetry(self, small_system,
                                                    small_sim, designs,
                                                    workloads):
        def results(telemetry):
            from repro.experiments.common import sweep_cells
            cells = sweep_cells(designs, small_system, small_sim,
                                workloads)
            with obs_runtime.activated(telemetry):
                with SweepExecutor(jobs=2) as executor:
                    return [result.to_json()
                            for result in executor.run_cells(cells)]

        plain = results(None)
        instrumented = results(Telemetry(journal_memory=True))
        assert instrumented == plain
