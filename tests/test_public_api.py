"""Public-API surface tests.

A downstream user programs against ``repro``'s top-level names; these
tests pin the exported surface and a few usage contracts so refactors
cannot silently break adopters.
"""

import inspect
from pathlib import Path

import pytest

import repro

SNAPSHOT = Path(__file__).parent / "data" / "public_api.txt"


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_sorted_and_unique(self):
        assert list(repro.__all__) == sorted(set(repro.__all__))

    def test_surface_matches_snapshot(self):
        # The snapshot in tests/data/public_api.txt is the reviewed
        # public surface.  A mismatch means an export was added or
        # removed: if that is intentional, regenerate the file with
        #   PYTHONPATH=src python -c "import repro; \
        #       print('\n'.join(sorted(repro.__all__)))" \
        #       > tests/data/public_api.txt
        # and call the change out in the PR description.
        snapshot = SNAPSHOT.read_text(encoding="utf-8").split()
        assert sorted(repro.__all__) == snapshot, (
            "public API drifted from tests/data/public_api.txt; "
            "regenerate the snapshot if the change is intentional")

    def test_lazy_names_listed_in_dir(self):
        listing = dir(repro)
        for name in ("RunOptions", "SweepExecutor", "run_experiment",
                     "exec_runtime", "obs_runtime", "Telemetry"):
            assert name in listing, name

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.does_not_exist

    def test_version(self):
        assert repro.__version__ == "2.0.0"

    def test_core_design_entry_points(self):
        for name in ("dream_r_para_factory", "dream_r_mint_factory",
                     "dream_c_factory", "coupled_para_factory",
                     "coupled_mint_factory", "graphene_factory",
                     "abacus_factory", "moat_factory"):
            assert callable(getattr(repro, name))

    def test_simulation_entry_points(self):
        assert callable(repro.run_simulation)
        assert callable(repro.run_comparison)
        assert callable(repro.build_traces)

    def test_twenty_two_profiles_exported(self):
        assert len(repro.PROFILES) == 22


class TestFactoryContracts:
    def test_factories_take_threshold_first(self):
        # Every mitigation factory accepts the Rowhammer threshold as
        # its first positional argument.
        for name in ("dream_r_para_factory", "dream_r_mint_factory",
                     "dream_c_factory", "coupled_para_factory",
                     "coupled_mint_factory", "graphene_factory",
                     "abacus_factory", "moat_factory"):
            factory = getattr(repro, name)
            first = next(iter(
                inspect.signature(factory).parameters.values()))
            assert first.name == "t_rh", name

    def test_factories_produce_bindable_policies(self, context):
        for name in ("dream_r_para_factory", "dream_r_mint_factory",
                     "dream_c_factory", "graphene_factory",
                     "abacus_factory", "moat_factory"):
            policy = getattr(repro, name)(500)(context)
            assert hasattr(policy, "before_activate")
            assert policy.name


class TestDocstrings:
    def test_every_public_module_documented(self):
        import pkgutil

        packages = [repro]
        seen = set()
        while packages:
            package = packages.pop()
            assert package.__doc__, package.__name__
            if not hasattr(package, "__path__"):
                continue
            for info in pkgutil.iter_modules(package.__path__):
                full = f"{package.__name__}.{info.name}"
                if full in seen:
                    continue
                seen.add(full)
                module = __import__(full, fromlist=["_"])
                assert module.__doc__, full
                if info.ispkg:
                    packages.append(module)

    def test_top_level_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj):
                assert obj.__doc__, name


class TestReadmeQuickstart:
    def test_quickstart_snippet_behaviour(self, small_sim):
        # The README's quickstart claims coupled MINT >> DREAM-R and
        # RLP near the maximum; verify on a small run.
        from repro import (Command, ComparisonResult, SimConfig,
                           SystemConfig, build_traces,
                           coupled_mint_factory, dream_r_mint_factory,
                           run_simulation)
        from repro.workloads.builder import clear_cache

        clear_cache()
        system = SystemConfig.baseline(refs_per_window=32)
        sim = SimConfig(requests_per_core=4_000, seed=1)
        traces = build_traces("mcf", system, sim)
        baseline = run_simulation(system, traces, sim)
        coupled = run_simulation(
            system, traces, sim,
            coupled_mint_factory(2000, Command.DRFM_SB), "mint")
        dream = run_simulation(system, traces, sim,
                               dream_r_mint_factory(2000),
                               "mint-dream-r")
        assert ComparisonResult(baseline, dream).slowdown_percent < \
            ComparisonResult(baseline, coupled).slowdown_percent
        assert dream.average_rlp > 5.0
        clear_cache()
