"""Unit tests for DREAM-C (gang tracking, Section 5)."""

import numpy as np
import pytest

from repro.core.dream_c import DreamCPolicy, GangMapper, dream_c_factory
from repro.core.storage import dream_c_config
from repro.dram.commands import Command
from repro.dram.subchannel import SubChannel
from repro.mc.controller import SubChannelController
from repro.mc.policy import PolicyContext


def make_controller(timing, organization, policy):
    subchannel = SubChannel(0, timing, organization.banks,
                            organization.banks_per_group,
                            record_mitigations=True)
    controller = SubChannelController(subchannel, timing, policy)
    return controller, subchannel


class TestGangMapper:
    def _mapper(self, t_rh=500, randomized=True, rows=1024, groups=1):
        config = dream_c_config(t_rh, rows_per_bank=rows)
        return GangMapper(config, randomized, np.random.default_rng(1),
                          bank_groups=groups)

    def test_set_associative_is_identity(self):
        mapper = self._mapper(t_rh=125, randomized=False)
        assert mapper.gang_of(0, 42) == 42
        assert mapper.gang_of(31, 42) == 42

    def test_randomized_breaks_bank_correlation(self):
        mapper = self._mapper(t_rh=125, randomized=True)
        gangs = {mapper.gang_of(bank, 42) for bank in range(32)}
        assert len(gangs) > 8  # masks differ across banks

    def test_bijection_per_bank(self):
        mapper = self._mapper(t_rh=500, rows=1024)  # V=4, 256 entries
        for bank in (0, 7, 31):
            gangs = [mapper.gang_of(bank, row) for row in range(1024)]
            counts = np.bincount(gangs, minlength=mapper.total_entries)
            assert (counts == mapper.slices).all()

    def test_rows_of_inverts_gang_of(self):
        mapper = self._mapper(t_rh=500, rows=1024)
        for bank in (0, 13):
            for gang in (0, 100, 255):
                for row in mapper.rows_of(bank, gang):
                    assert mapper.gang_of(bank, row) == gang

    def test_gang_size_matches_config(self):
        mapper = self._mapper(t_rh=250, rows=1024)
        assert mapper.gang_size == 64  # 32 banks x V=2

    def test_gang_rows_by_bank(self):
        mapper = self._mapper(t_rh=125, rows=1024)
        membership = mapper.gang_rows_by_bank(5)
        assert len(membership) == 32
        assert all(len(rows) == 1 for rows in membership.values())

    def test_bank_groups_partition_dct(self):
        mapper = self._mapper(t_rh=125, rows=1024, groups=2)
        assert mapper.total_entries == 2048
        low = mapper.gang_of(0, 10)
        high = mapper.gang_of(16, 10)
        assert low < 1024 <= high
        assert mapper.gang_size == 16  # half the banks per gang

    def test_rows_of_foreign_group_is_empty(self):
        mapper = self._mapper(t_rh=125, rows=1024, groups=2)
        assert mapper.rows_of(16, 0) == []  # bank 16 is in group 1

    def test_rejects_non_power_of_two(self):
        config = dream_c_config(125, rows_per_bank=1024)
        object.__setattr__(config, "rows_per_bank", 1000)
        with pytest.raises(ValueError):
            GangMapper(config, True, np.random.default_rng(1))


class TestDreamCPolicy:
    def test_counts_below_threshold(self, timing, organization, context):
        policy = DreamCPolicy(context, t_rh=500)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        now = 0
        for i in range(20):
            now = controller.service(0, i, now)
        assert subchannel.stats.mitigation_commands == 0
        assert policy.dct.sum() == 20

    def test_threshold_triggers_gang_mitigation(self, timing, organization,
                                                context):
        policy = DreamCPolicy(context, t_rh=500)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        gang = policy.mapper.gang_of(0, 7)
        policy.dct[gang] = policy.threshold
        controller.service(0, 7, 0)
        # V = 4 rounds of DRFMab for T_RH = 500.
        assert subchannel.stats.mitigation_commands == 4
        assert all(event.command is Command.DRFM_AB
                   for event in subchannel.mitigation_log)
        assert policy.dct[gang] == 1

    def test_mitigation_covers_whole_gang(self, timing, organization,
                                          context):
        policy = DreamCPolicy(context, t_rh=500)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        gang = policy.mapper.gang_of(0, 7)
        policy.dct[gang] = policy.threshold
        controller.service(0, 7, 0)
        mitigated = {pair for event in subchannel.mitigation_log
                     for pair in event.mitigated_rows}
        expected = {(bank, row)
                    for bank, rows in
                    policy.mapper.gang_rows_by_bank(gang).items()
                    for row in rows}
        assert mitigated == expected
        assert len(mitigated) == policy.config.gang_size

    def test_set_associative_hot_page_heats_one_counter(self, timing,
                                                        organization,
                                                        context):
        # MOP stripes a page to the same RowID across banks; with
        # set-associative grouping every stripe access lands on one gang.
        policy = DreamCPolicy(context, t_rh=500, randomized=False)
        controller, _ = make_controller(timing, organization, policy)
        now = 0
        for bank in range(32):
            now = controller.service(bank, 42, now)
        gang = policy.mapper.gang_of(0, 42)
        assert policy.dct[gang] == 32

    def test_randomized_spreads_hot_page(self, timing, organization,
                                         context):
        policy = DreamCPolicy(context, t_rh=500, randomized=True)
        controller, _ = make_controller(timing, organization, policy)
        now = 0
        for bank in range(32):
            now = controller.service(bank, 42, now)
        assert policy.dct.max() <= 4  # mask collisions only

    def test_staggered_reset_clears_whole_table_per_window(
            self, timing, organization, context):
        policy = DreamCPolicy(context, t_rh=500)
        policy.dct[:] = 5
        policy._staggered_reset(timing.t_refw)
        assert policy.dct.sum() == 0

    def test_staggered_reset_is_incremental(self, timing, organization,
                                            context):
        policy = DreamCPolicy(context, t_rh=500)
        policy.dct[:] = 5
        policy._staggered_reset(timing.t_refi)
        cleared = int((policy.dct == 0).sum())
        assert 0 < cleared < len(policy.dct)
        assert cleared == pytest.approx(
            len(policy.dct) / timing.refs_per_window, abs=1)

    def test_rate_limit_skips_back_to_back(self, timing, organization,
                                           context):
        policy = DreamCPolicy(context, t_rh=500, rate_limited=True)
        controller, subchannel = make_controller(timing, organization,
                                                 policy)
        gang = policy.mapper.gang_of(0, 7)
        policy.dct[gang] = policy.threshold
        finish = controller.service(0, 7, 0)
        rounds_after_first = subchannel.stats.mitigation_commands
        policy.dct[gang] = policy.threshold  # immediately hot again
        other_row = next(row for row in policy.mapper.rows_of(0, gang)
                         if row != 7)
        controller.service(0, other_row, finish)
        # Second mitigation suppressed by the RMAQ.
        assert subchannel.stats.mitigation_commands == rounds_after_first
        assert policy.stats.samples_skipped_rate_limit == 1

    def test_summary_fields(self, context):
        policy = dream_c_factory(500)(context)
        summary = policy.summary()
        assert {"drfm_rounds", "dct_entries", "max_counter"} <= \
            set(summary)

    def test_factory_names(self, context):
        assert dream_c_factory(500, randomized=True)(context).name == \
            "dream-c-rand"
        assert dream_c_factory(500, randomized=False)(context).name == \
            "dream-c-assoc"
        assert dream_c_factory(
            125, storage_multiplier=2)(context).name == "dream-c-rand-2x"

    def test_rejects_bad_multiplier(self, context):
        with pytest.raises(ValueError):
            DreamCPolicy(context, t_rh=500, storage_multiplier=0)
