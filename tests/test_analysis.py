"""Unit tests for the analysis modules (RLP, selection, DoS, slowdown)."""

import numpy as np
import pytest

from repro.analysis.dos import analyze_dos, mitigation_block_ps
from repro.analysis.rlp import RLPStats, sampling_delays_ps, summarize
from repro.analysis.selection import (distance_statistics,
                                      monte_carlo_selections)
from repro.analysis.slowdown import SlowdownSeries, format_table
from repro.dram.commands import Command
from repro.dram.subchannel import MitigationEvent
from repro.dram.timing import DDR5Timing
from repro.sim.results import ComparisonResult, RunResult


def _event(time, rows, blocked=8, command=Command.DRFM_SB):
    return MitigationEvent(time_ps=time, command=command, trigger_bank=0,
                           blocked_banks=blocked,
                           mitigated_rows=tuple(rows))


class TestRLP:
    def test_summarize(self):
        events = [_event(0, [(0, 1)]),
                  _event(100, [(0, 2), (4, 3), (8, 4)])]
        stats = summarize(events)
        assert stats.commands == 2
        assert stats.rows_mitigated == 4
        assert stats.average == pytest.approx(2.0)
        assert stats.max_rlp == 3
        assert stats.wasted_bank_stalls == 7 + 5

    def test_efficiency(self):
        stats = RLPStats(commands=1, rows_mitigated=2, max_rlp=2,
                         wasted_bank_stalls=6)
        assert stats.efficiency == pytest.approx(0.25)

    def test_empty(self):
        stats = summarize([])
        assert stats.average == 0.0
        assert stats.efficiency == 0.0

    def test_sampling_delays(self):
        events = [_event(1000, [(0, 1), (4, 2)])]
        delays = sampling_delays_ps(events, {(0, 1): 400, (4, 2): 900})
        assert delays == [600, 100]

    def test_sampling_delays_without_times(self):
        assert sampling_delays_ps([_event(0, [(0, 1)])]) == []


class TestSelectionAnalysis:
    def test_monte_carlo_shape(self):
        result = monte_carlo_selections(100, 1000, banks=4)
        assert len(result["para"]) == 4
        assert len(result["mint"]) == 4
        # MINT selects exactly one row per window.
        assert all(len(p) == 10 for p in result["mint"])

    def test_distance_statistics_contrast(self):
        stats = distance_statistics(100, activations=200_000)
        para, mint = stats["para"], stats["mint"]
        # Same mean spacing, very different spread (Section 4.7).
        assert para.mean == pytest.approx(mint.mean, rel=0.1)
        assert para.std > 2 * mint.std
        assert para.short_fraction > 2 * mint.short_fraction

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            monte_carlo_selections(0, 100, 1)


class TestDoS:
    def test_paper_numbers_at_125(self):
        analysis = analyze_dos(125)
        # Paper: 62 ACTs in ~213 ns; block ~411 ns; ~3x reduction.
        assert analysis.activations_per_round == 62
        assert analysis.attack_time_ps == pytest.approx(213_000, rel=0.02)
        assert 2.5 < analysis.throughput_factor < 3.5

    def test_block_scales_with_vertical(self):
        timing = DDR5Timing.jedec()
        assert mitigation_block_ps(timing, vertical=4) == \
            4 * mitigation_block_ps(timing, vertical=1)

    def test_describe(self):
        text = analyze_dos(125).describe()
        assert "62" in text
        assert "x" in text


def _comparison(workload, base_times, mit_times, rlp=2.0):
    def result(policy, times):
        return RunResult(
            workload=workload, policy=policy, finish_times_ps=times,
            end_time_ps=max(times), requests_completed=10,
            activations=5, row_hits=5, row_conflicts=0,
            mitigation_commands=1, rows_mitigated=2, average_rlp=rlp,
            bus_busy_ps=100, subchannels=2)
    return ComparisonResult(result("none", base_times),
                            result("x", mit_times))


class TestSlowdownSeries:
    def test_average(self):
        series = SlowdownSeries("x")
        series.add(_comparison("a", [100], [110]))
        series.add(_comparison("b", [100], [130]))
        assert series.average_slowdown == pytest.approx(
            ((1 - 100 / 110) + (1 - 100 / 130)) / 2 * 100)

    def test_worst_case(self):
        series = SlowdownSeries("x")
        series.add(_comparison("a", [100], [110]))
        series.add(_comparison("b", [100], [150]))
        workload, value = series.worst_case
        assert workload == "b"
        assert value > 30

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SlowdownSeries("x").average_slowdown

    def test_row_ordering(self):
        series = SlowdownSeries("x")
        series.add(_comparison("a", [100], [110]))
        series.add(_comparison("b", [100], [120]))
        row = series.row(["b", "a"])
        assert row[0] > row[1]

    def test_format_table(self):
        series = SlowdownSeries("x")
        series.add(_comparison("a", [100], [110]))
        text = format_table([series])
        assert "AVERAGE" in text
        assert "a" in text

    def test_format_table_rejects_empty(self):
        with pytest.raises(ValueError):
            format_table([])
