"""Unit tests for the Table 3 activation-census machinery."""

import pytest

from repro.experiments.table3 import ActivationCensusPolicy, WindowHistogram
from repro.mc.policy import PolicyContext


class TestWindowHistogram:
    def test_single_window_buckets(self):
        histogram = WindowHistogram()
        counts = {(0, 1): 1, (0, 2): 4, (0, 3): 5, (1, 9): 10}
        histogram.add_window(counts, total_rows=10)
        act0, act14, act5 = histogram.percentages(10)
        assert act0 == pytest.approx(60.0)
        assert act14 == pytest.approx(20.0)
        assert act5 == pytest.approx(20.0)

    def test_average_acts(self):
        histogram = WindowHistogram()
        histogram.add_window({(0, 1): 5, (0, 2): 5}, total_rows=10)
        assert histogram.avg_acts_per_row(10) == pytest.approx(1.0)

    def test_accumulates_across_windows(self):
        histogram = WindowHistogram()
        histogram.add_window({(0, 1): 1}, total_rows=4)
        histogram.add_window({}, total_rows=4)
        act0, act14, _ = histogram.percentages(4)
        assert act0 == pytest.approx(87.5)  # 7 of 8 row-windows empty
        assert act14 == pytest.approx(12.5)

    def test_empty_histogram(self):
        histogram = WindowHistogram()
        assert histogram.percentages(10) == (100.0, 0.0, 0.0)
        assert histogram.avg_acts_per_row(10) == 0.0


class TestCensusPolicy:
    def _policy(self, timing, organization):
        context = PolicyContext(
            subchannel=0,
            num_banks=organization.banks,
            banks_per_group=organization.banks_per_group,
            rows_per_bank=organization.rows_per_bank,
            timing=timing,
            seed=1,
        )
        return ActivationCensusPolicy(context)

    def test_counts_per_row(self, timing, organization):
        policy = self._policy(timing, organization)
        for _ in range(3):
            policy.before_activate(0, 7, 0)
        policy.before_activate(1, 7, 0)
        policy.close_partial_window()
        assert policy.histogram.acts == 4
        # Two distinct (bank, row) keys touched.
        touched = (policy.total_rows
                   - policy.histogram.rows_act0 / policy.histogram.windows)
        assert touched == 2

    def test_window_boundary_snapshots(self, timing, organization):
        policy = self._policy(timing, organization)
        policy.before_activate(0, 7, 0)
        # Crossing the window boundary folds the first window in.
        policy.before_activate(0, 8, timing.t_refw + 1)
        assert policy.histogram.windows == 1
        policy.close_partial_window()  # no-op: a full window exists
        assert policy.histogram.windows == 1

    def test_never_mitigates(self, timing, organization):
        policy = self._policy(timing, organization)
        assert policy.before_activate(0, 7, 0) is False
