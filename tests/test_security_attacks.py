"""End-to-end security tests: adversarial patterns vs real policies.

Each test hammers a fully wired mitigation policy (banks, DARs, REF,
DRFM) through the attack harness and checks the defense's exposure bound:
the maximum single-sided activation streak any row accumulates without
mitigation.  Counter-based designs have deterministic bounds; randomized
designs are checked against bounds their failure math puts at astronomically
unlikely levels (fixed seeds keep the runs reproducible).
"""

import pytest

from repro.analysis.harness import AttackHarness
from repro.core.dream_c import DreamCPolicy, dream_c_factory
from repro.core.dream_r import dream_r_mint_factory, dream_r_para_factory
from repro.dram.commands import Command
from repro.mc.mitigation import coupled_mint_factory, coupled_para_factory
from repro.trackers.abacus import abacus_factory
from repro.trackers.graphene import graphene_factory
from repro.trackers.prac import moat_factory
from repro.workloads.attacks import circular, single_sided


class TestCoupledTrackers:
    def test_para_bounds_single_row_hammer(self):
        # PARA p = 1/100: a 1500-act unmitigated epoch has probability
        # e^-15; with a fixed seed this never happens.
        harness = AttackHarness(coupled_para_factory(2000), seed=11)
        result = harness.run(single_sided(7, 12_000), bank=0)
        assert result.max_unmitigated < 1500
        assert result.mitigations > 50

    def test_para_nrr_equivalent_protection(self):
        harness = AttackHarness(
            coupled_para_factory(2000, Command.NRR), seed=11)
        result = harness.run(single_sided(7, 12_000), bank=0)
        assert result.max_unmitigated < 1500

    def test_mint_guarantees_selection_per_window(self):
        # A continuously hammered row is selected in every window, so the
        # streak is bounded by ~2 windows (selection position varies).
        harness = AttackHarness(coupled_mint_factory(2000), seed=11)
        result = harness.run(single_sided(7, 10_000), bank=0)
        assert result.max_unmitigated < 3 * 100

    def test_mint_circular_pattern(self):
        # The most stressful MINT pattern: W unique rows round-robin.
        harness = AttackHarness(coupled_mint_factory(2000), seed=11)
        rows = circular(list(range(100)), 30_000)
        result = harness.run(rows, bank=0)
        # Each row gets 300 activations; mitigation spreads over rows but
        # no row may approach the 40W single-sided bound.
        assert result.max_unmitigated < 4000


class TestDreamR:
    def test_para_dream_r_with_atm(self):
        harness = AttackHarness(dream_r_para_factory(2000), seed=13)
        result = harness.run(single_sided(7, 12_000), bank=0)
        assert result.max_unmitigated < 1500
        assert result.mitigations > 20

    def test_atm_caps_delay_exposure(self):
        # Deterministic selection (p = 1): the row enters the DAR, then
        # ATM must force the DRFM within ATM-TH further activations.
        def factory(context):
            policy = dream_r_para_factory(2000)(context)
            policy.probability = 1.0
            return policy

        harness = AttackHarness(factory, seed=13)
        result = harness.run(single_sided(7, 500), bank=0)
        atm_threshold = harness.policy.atm.threshold
        assert result.max_unmitigated <= atm_threshold + 2

    def test_mint_dream_r_single_row(self):
        harness = AttackHarness(dream_r_mint_factory(2000), seed=13)
        result = harness.run(single_sided(7, 10_000), bank=0)
        # Decoupled MINT mitigates a hammered row at least every ~2
        # windows; ATM caps the tail.
        assert result.max_unmitigated < 3 * 99

    def test_mint_dream_r_multi_bank(self):
        harness = AttackHarness(dream_r_mint_factory(2000), seed=13)
        pattern = [(bank, 7) for bank in range(8) for _ in range(4)]
        harness.run(pattern * 400)
        result = harness.result()
        assert result.max_unmitigated < 3 * 99

    def test_rate_limited_never_remitigates_within_horizon(self):
        harness = AttackHarness(
            dream_r_mint_factory(500, rate_limited=True), seed=13)
        harness.run(circular(list(range(24)), 20_000), bank=0)
        last_mitigated: dict[tuple[int, int], int] = {}
        horizon = 2 * harness.timing.t_refi
        for event in harness.subchannel.mitigation_log:
            for bank, row in event.mitigated_rows:
                key = (bank, row)
                if key in last_mitigated:
                    assert event.time_ps - last_mitigated[key] >= horizon
                last_mitigated[key] = event.time_ps


class TestCounterTrackers:
    def test_graphene_deterministic_bound(self):
        harness = AttackHarness(graphene_factory(1000), seed=17)
        result = harness.run(single_sided(7, 5_000), bank=0)
        # Misra-Gries mitigates every T_TH = 500 activations; the
        # periodic reset can at most double the streak.
        assert result.max_unmitigated <= 2 * 500 + 2

    def test_dream_c_deterministic_bound(self):
        harness = AttackHarness(dream_c_factory(500), seed=17)
        result = harness.run(single_sided(7, 3_000), bank=0)
        # The gang counter trips every T_TH = 250; a staggered reset in
        # between can at most double the exposure -> never exceeds T_RH.
        assert result.max_unmitigated <= 500

    def test_dream_c_gang_attack_bound(self):
        harness = AttackHarness(dream_c_factory(500), seed=17)
        policy = harness.policy
        assert isinstance(policy, DreamCPolicy)
        rows = policy.mapper.rows_of(0, 5)
        result = harness.run(circular(rows, 4_000), bank=0)
        assert result.max_unmitigated <= 500

    def test_abacus_bound(self):
        harness = AttackHarness(abacus_factory(500), seed=17)
        result = harness.run(single_sided(7, 3_000), bank=0)
        assert result.max_unmitigated <= 2 * 250 + 2

    def test_moat_bound(self):
        harness = AttackHarness(moat_factory(500), seed=17)
        result = harness.run(single_sided(7, 3_000), bank=0)
        assert result.max_unmitigated <= 2 * 250 + 2


class TestRelativeStrength:
    def test_higher_threshold_means_fewer_mitigations(self):
        low = AttackHarness(coupled_para_factory(1000), seed=19)
        high = AttackHarness(coupled_para_factory(4000), seed=19)
        pattern = single_sided(7, 8_000)
        low_result = low.run(pattern, bank=0)
        high_result = high.run(pattern, bank=0)
        assert low_result.mitigations > high_result.mitigations
