"""Deployment planning: pick and sanity-check a mitigation configuration.

A system vendor adopting DRFM-based mitigation has to choose a design
point: which tracker, at which Rowhammer threshold, with what storage and
what expected overhead class.  This module turns the paper's design
space into a checkable plan:

* :func:`plan_deployment` recommends a design for a target threshold
  following the paper's guidance (randomized DREAM-R for thresholds the
  slowdown budget tolerates; DREAM-C below that; explicit storage and
  rate-limit hardware),
* :func:`validate_deployment` audits any (design, threshold, knob)
  combination and returns actionable findings instead of letting an
  insecure or nonsensical configuration run silently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.atm import DEFAULT_ATM_THRESHOLD, ActiveTargetMonitor
from repro.core.rmaq import capacity_for_window, storage_bits
from repro.core.security import (mint_window_with_atm,
                                 para_probability_with_atm,
                                 rmaq_threshold_penalty)
from repro.core.storage import BASE_GANG_THRESHOLD, dream_c_config
from repro.trackers.mint import THRESHOLD_PER_WINDOW


class Design(enum.Enum):
    """Deployable mitigation designs."""

    DREAM_R_PARA = "dream-r-para"
    DREAM_R_MINT = "dream-r-mint"
    DREAM_C = "dream-c"


class Severity(enum.Enum):
    """Finding severity."""

    ERROR = "error"      # configuration is insecure or unbuildable
    WARNING = "warning"  # works, but a better point exists
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One audit finding."""

    severity: Severity
    message: str


@dataclass
class DeploymentPlan:
    """A validated design point with its derived parameters."""

    design: Design
    t_rh: int
    parameters: dict = field(default_factory=dict)
    sram_bytes_per_bank: float = 0.0
    expected_overhead_class: str = ""
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the plan has no error-level findings."""
        return not any(finding.severity is Severity.ERROR
                       for finding in self.findings)

    def describe(self) -> str:
        """Multi-line human-readable plan summary."""
        lines = [
            f"design: {self.design.value} @ T_RH={self.t_rh}",
            f"SRAM per bank: {self.sram_bytes_per_bank:.0f} bytes",
            f"expected overhead: {self.expected_overhead_class}",
        ]
        for key, value in self.parameters.items():
            lines.append(f"  {key} = {value}")
        for finding in self.findings:
            lines.append(f"[{finding.severity.value}] {finding.message}")
        return "\n".join(lines)


#: Paper-derived average slowdown classes for DREAM-R (MINT), Figure 10.
_MINT_OVERHEAD_CLASSES = (
    (4000, "~1% (negligible)"),
    (2000, "~2% (low)"),
    (1000, "~4% (low)"),
    (500, "~8% (moderate)"),
)


def _overhead_class(t_rh: int) -> str:
    for threshold, label in _MINT_OVERHEAD_CLASSES:
        if t_rh >= threshold:
            return label
    return "high (prefer DREAM-C at this threshold)"


def validate_deployment(design: Design, t_rh: int,
                        atm_threshold: int = DEFAULT_ATM_THRESHOLD,
                        rate_limited: bool = True) -> DeploymentPlan:
    """Audit one design point; never raises for in-range but poor choices.

    Returns a plan whose ``findings`` list errors (insecure /
    unbuildable), warnings (works, better point exists) and notes.
    """
    plan = DeploymentPlan(design=design, t_rh=t_rh)
    if t_rh < 1:
        plan.findings.append(Finding(
            Severity.ERROR, "T_RH must be positive"))
        return plan

    if design is Design.DREAM_C:
        _validate_dream_c(plan, t_rh, rate_limited)
    elif design is Design.DREAM_R_MINT:
        _validate_mint(plan, t_rh, atm_threshold, rate_limited)
    else:
        _validate_para(plan, t_rh, atm_threshold, rate_limited)
    return plan


def _validate_dream_c(plan: DeploymentPlan, t_rh: int,
                      rate_limited: bool) -> None:
    if t_rh < BASE_GANG_THRESHOLD:
        plan.findings.append(Finding(
            Severity.ERROR,
            f"DREAM-C configurations start at T_RH="
            f"{BASE_GANG_THRESHOLD} (Table 6); below that no gang size "
            "keeps the DRFMab rate acceptable"))
        return
    config = dream_c_config(t_rh)
    plan.parameters = {
        "gang_size": config.gang_size,
        "vertical": config.vertical,
        "dct_entries": config.dct_entries,
        "tracker_threshold": config.tracker_threshold,
        "drfmab_per_mitigation": config.drfms_per_mitigation,
    }
    plan.sram_bytes_per_bank = config.sram_kb_per_bank() * 1024
    plan.expected_overhead_class = (
        "~8% at 125, ~5% at 250, ~3% at 500, <1% at 1000 (Fig 15/17)")
    if config.drfms_per_mitigation > 8:
        plan.findings.append(Finding(
            Severity.WARNING,
            f"{config.drfms_per_mitigation} back-to-back DRFMab per "
            "mitigation; consider capping vertical sharing"))
    if not rate_limited:
        plan.findings.append(Finding(
            Severity.WARNING,
            "JEDEC rate limit not enforced; add the 18-entry "
            "sub-channel RMAQ (45 bytes) for spec compliance"))


def _validate_mint(plan: DeploymentPlan, t_rh: int, atm_threshold: int,
                   rate_limited: bool) -> None:
    if t_rh < THRESHOLD_PER_WINDOW + atm_threshold // 2:
        plan.findings.append(Finding(
            Severity.ERROR,
            f"T_RH={t_rh} is below what MINT+ATM can tolerate; "
            "use DREAM-C"))
        return
    window = mint_window_with_atm(t_rh, atm_threshold)
    plan.parameters = {"window": window, "atm_threshold": atm_threshold}
    plan.sram_bytes_per_bank = (
        ActiveTargetMonitor.storage_bits_per_bank(
            threshold=atm_threshold) / 8.0)
    plan.expected_overhead_class = _overhead_class(t_rh)
    if rate_limited:
        capacity = capacity_for_window(window)
        penalty = rmaq_threshold_penalty(window)
        plan.parameters["rmaq_entries"] = capacity
        plan.sram_bytes_per_bank += storage_bits(capacity) / 8.0
        if penalty:
            plan.findings.append(Finding(
                Severity.WARNING,
                f"RMAQ filtering raises the tolerated threshold by "
                f"~{penalty}; provision T_RH margin or enlarge the "
                "window"))
    if t_rh < 500:
        plan.findings.append(Finding(
            Severity.WARNING,
            "below T_RH=500 DREAM-C has lower overhead than DREAM-R "
            "(Figure 19)"))


def _validate_para(plan: DeploymentPlan, t_rh: int, atm_threshold: int,
                   rate_limited: bool) -> None:
    try:
        probability = para_probability_with_atm(t_rh, atm_threshold)
    except ValueError as error:
        plan.findings.append(Finding(Severity.ERROR, str(error)))
        return
    plan.parameters = {"probability": probability,
                       "atm_threshold": atm_threshold}
    plan.sram_bytes_per_bank = (
        ActiveTargetMonitor.storage_bits_per_bank(
            threshold=atm_threshold) / 8.0)
    plan.expected_overhead_class = _overhead_class(t_rh) + \
        " (PARA runs ~2x MINT's overhead, Fig 10)"
    plan.findings.append(Finding(
        Severity.INFO,
        "MINT-based DREAM-R has lower slowdown and simpler rate-limit "
        "hardware than PARA-based (Section 6.1 footnote)"))
    if rate_limited:
        plan.findings.append(Finding(
            Severity.WARNING,
            "rate-limit tracking for PARA needs tens of RMAQ entries "
            "(many samples per 2*tREFI); prefer DREAM-R (MINT)"))


def plan_deployment(t_rh: int,
                    slowdown_budget_percent: float = 5.0) -> DeploymentPlan:
    """Recommend a design point for a target threshold and budget.

    Follows the paper's guidance: DREAM-R (MINT) wherever its expected
    overhead fits the budget (negligible SRAM); DREAM-C below that
    (1-3 KB/bank SRAM, near-zero slowdown at moderate thresholds).
    """
    mint_overhead = {4000: 1.1, 2000: 2.1, 1000: 4.2, 500: 8.4}
    fits = any(t_rh >= threshold and overhead <= slowdown_budget_percent
               for threshold, overhead in mint_overhead.items())
    if fits:
        return validate_deployment(Design.DREAM_R_MINT, t_rh)
    return validate_deployment(Design.DREAM_C, t_rh)
