"""Active Target-Row Monitoring (ATM, Section 4.4).

DREAM-R delays the DRFM after a row is sampled, so an attacker could land
extra activations on the sampled row while it waits in the DAR (or in the
MC-SAR for MINT).  Instead of revising the tracker parameters to absorb
that window (17% more mitigations for PARA), ATM actively watches the
row awaiting mitigation: the MC keeps a copy of the sampled row and a
small counter per bank, increments the counter on every activation of
that row, and force-issues the DRFM once the counter exceeds ``ATM-TH``
(20 by default).  This caps the unmitigated-activation exposure of the
delay at ATM-TH, letting DREAM-R keep parameters essentially equal to the
coupled design (Table 4).  Cost: ~3 bytes of SRAM per bank.
"""

from __future__ import annotations

#: Default ATM trigger threshold used throughout the paper.
DEFAULT_ATM_THRESHOLD = 20


class ActiveTargetMonitor:
    """Per-bank monitor of the row awaiting a delayed DRFM.

    Each bank has a single monitor slot (the hardware budget is one row
    register and a 5-bit counter per bank).  The slot keeps the **oldest**
    pending row: arming an occupied slot with a different row is ignored,
    because the row that has been waiting longest has the largest delay
    exposure — it keeps its monitor until its mitigation disarms the
    slot.  (A newer pending row is additionally bounded by its own
    window-end mitigation, per the Appendix B analysis.)
    """

    def __init__(self, num_banks: int,
                 threshold: int = DEFAULT_ATM_THRESHOLD) -> None:
        if num_banks < 1:
            raise ValueError("num_banks must be positive")
        if threshold < 1:
            raise ValueError("threshold must be positive")
        self.num_banks = num_banks
        self.threshold = threshold
        self._rows: list[int | None] = [None] * num_banks
        self._counts = [0] * num_banks
        self.triggers = 0

    def arm(self, bank: int, row: int) -> bool:
        """Monitor ``row`` in ``bank`` if the slot is free (or same row).

        Returns whether the row is now monitored.  Re-arming the same
        row restarts its counter (a fresh sampling of the row means a
        fresh mitigation is pending).
        """
        current = self._rows[bank]
        if current is not None and current != row:
            return False
        self._rows[bank] = row
        self._counts[bank] = 0
        return True

    def disarm(self, bank: int) -> None:
        """Stop monitoring ``bank`` (its pending row was mitigated)."""
        self._rows[bank] = None
        self._counts[bank] = 0

    def monitored_row(self, bank: int) -> int | None:
        """The row currently monitored in ``bank`` (or ``None``)."""
        return self._rows[bank]

    def count(self, bank: int) -> int:
        """Activations seen on the monitored row of ``bank``."""
        return self._counts[bank]

    def observe(self, bank: int, row: int) -> bool:
        """Record one activation; returns ``True`` when ATM must trigger.

        A trigger means the monitored row has received more than
        ``threshold`` activations while awaiting its DRFM; the caller must
        issue the mitigation immediately (and then disarm the mitigated
        banks).
        """
        if self._rows[bank] != row:
            return False
        self._counts[bank] += 1
        if self._counts[bank] > self.threshold:
            self.triggers += 1
            return True
        return False

    @staticmethod
    def storage_bits_per_bank(row_bits: int = 17,
                              threshold: int = DEFAULT_ATM_THRESHOLD) -> int:
        """SRAM bits per bank (row copy + counter + valid); ~3 bytes."""
        counter_bits = max(1, (threshold).bit_length())
        return row_bits + counter_bits + 1
