"""DREAM-R: delayed-DRFM mitigation for randomized trackers (Section 4).

The coupled baselines issue a DRFM immediately after sampling, so when
the command stalls 8 banks only ~1 of them has a valid DAR (RLP ~ 1).
DREAM-R **decouples** sampling from mitigation: a sampled row sits in the
DAR until the tracker selects a *second* row for the same bank, and only
then — because the DAR must be freed — is the DRFM issued.  The delay
gives the other banks of the DRFMsb group time to populate their own
DARs, so one command mitigates several rows (RLP 3.2 for PARA, 7.5 for
MINT) and the DRFM rate drops proportionally.

Two policies implement the paper's Listings 1 and 2:

* :class:`DreamRParaPolicy` — PARA with implicit sampling only.  The
  tracker check happens *before* the ACT; if the ACT is selected and the
  DAR is full, the DRFM goes out first, then the ACT, then Pre+Sample.
* :class:`DreamRMintPolicy` — MINT with both sampling modes.  A selected
  activation implicit-samples straight into a free DAR; if the DAR is
  busy the row is buffered in the per-bank **MC-SAR**.  At window end a
  pending MC-SAR forces the DRFMsb, after which the MC-SARs of all banks
  in the DRFMsb group are explicit-sampled into the freed DARs.

Both run with **ATM** (Section 4.4) by default, bounding the activations
a sampled row can absorb while waiting, and optionally with the **RMAQ**
rate-limit filter (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.atm import DEFAULT_ATM_THRESHOLD, ActiveTargetMonitor
from repro.core.rmaq import RecentMitigationQueue, capacity_for_window
from repro.core.security import (mint_window_with_atm,
                                 para_probability_with_atm)
from repro.dram.commands import Command
from repro.exec.spec import spec_factory
from repro.mc.policy import (MitigationPolicy, PolicyContext, PolicyFactory)


class DreamRParaPolicy(MitigationPolicy):
    """DREAM-R with PARA tracking (Listing 1): decoupled, implicit-only.

    Per activation (the tracker check runs before the ACT):

    1. not selected — the ACT proceeds; if a DAR is pending, this
       activation happens under the shadow of the delayed DRFM;
    2. selected, DAR free — ACT, then Pre+Sample into the DAR (no DRFM);
    3. selected, DAR full — DRFMsb first (freeing 8 DARs), then ACT and
       Pre+Sample.
    """

    def __init__(self, context: PolicyContext, t_rh: int,
                 atm_threshold: int = DEFAULT_ATM_THRESHOLD,
                 probability: float | None = None,
                 rmaq_capacity: int | None = None) -> None:
        super().__init__()
        if t_rh < 1:
            raise ValueError("t_rh must be positive")
        self.t_rh = t_rh
        self.probability = (probability if probability is not None
                            else para_probability_with_atm(t_rh,
                                                           atm_threshold))
        self._rng = context.rng()
        self.atm = ActiveTargetMonitor(context.num_banks, atm_threshold)
        self.rmaq: list[RecentMitigationQueue] | None = None
        if rmaq_capacity is not None:
            self.rmaq = [
                RecentMitigationQueue(rmaq_capacity, context.timing.t_refi)
                for _ in range(context.num_banks)
            ]
        self.name = "para-dream-r"

    def _issue_drfm(self, bank: int, now_ps: int) -> None:
        event = self.port.issue(Command.DRFM_SB, bank, now_ps)
        self.record_event(event)
        for mitigated_bank, row in event.mitigated_rows:
            self.atm.disarm(mitigated_bank)
            if self.rmaq is not None:
                # Refresh the rate-limit window from the *mitigation*
                # time: the JEDEC limit spaces victim refreshes, and the
                # delayed DRFM can land well after sampling.
                self.rmaq[mitigated_bank].insert(row, now_ps)

    def before_activate(self, bank: int, row: int, now_ps: int) -> bool:
        self.stats.activations_observed += 1
        if self.atm.observe(bank, row):
            # The sampled row is being hammered while waiting: force the
            # DRFM now so its exposure stays capped at ATM-TH.
            self._issue_drfm(bank, now_ps)
        if self._rng.random() >= self.probability:
            return False
        if self.rmaq is not None and self.rmaq[bank].contains(row, now_ps):
            self.stats.samples_skipped_rate_limit += 1
            return False
        self.stats.selections += 1
        if self.port.dar(bank).valid:
            self._issue_drfm(bank, now_ps)
        return True

    def on_sampled(self, bank: int, row: int, now_ps: int) -> None:
        self.atm.arm(bank, row)
        if self.rmaq is not None:
            self.rmaq[bank].insert(row, now_ps)

    def summary(self) -> dict[str, float]:
        data = super().summary()
        data["atm_triggers"] = self.atm.triggers
        data["rmaq_skips"] = self.stats.samples_skipped_rate_limit
        return data


@dataclass
class _MintBankState:
    """Per-bank MINT window state for DREAM-R."""

    can: int = 0
    san: int = 0
    mc_sar: int | None = None


class DreamRMintPolicy(MitigationPolicy):
    """DREAM-R with MINT tracking (Listing 2): decoupled, dual sampling.

    Selections within a window implicit-sample into a free DAR (sampling
    itself creates no timing channel); with a busy DAR the selected row
    waits in the per-bank MC-SAR.  At the end of a window with a pending
    MC-SAR, the bank issues the DRFMsb (mitigating all valid DARs of its
    bank group) and then explicit-samples every pending MC-SAR of the
    group into the freed DARs.  Because all banks of a group see similar
    activation rates, their windows expire nearly together and the DRFM
    almost always finds 8 valid DARs — the RLP ~ 7.5 of Table 5.
    """

    def __init__(self, context: PolicyContext, t_rh: int,
                 atm_threshold: int = DEFAULT_ATM_THRESHOLD,
                 window: int | None = None,
                 rate_limited: bool = False) -> None:
        super().__init__()
        self.t_rh = t_rh
        self.window = window if window is not None else \
            mint_window_with_atm(t_rh, atm_threshold)
        self._rng = context.rng()
        self._num_banks = context.num_banks
        self._banks_per_group = context.banks_per_group
        self.states = [
            _MintBankState(san=int(self._rng.integers(self.window)))
            for _ in range(context.num_banks)
        ]
        self.atm = ActiveTargetMonitor(context.num_banks, atm_threshold)
        self.rmaq: list[RecentMitigationQueue] | None = None
        if rate_limited:
            capacity = capacity_for_window(self.window)
            self.rmaq = [
                RecentMitigationQueue(capacity, context.timing.t_refi)
                for _ in range(context.num_banks)
            ]
        self.name = "mint-dream-r"

    def _group_banks(self, bank: int) -> range:
        position = bank % self._banks_per_group
        return range(position, self._num_banks, self._banks_per_group)

    def _drain_group(self, bank: int, now_ps: int) -> None:
        """DRFMsb for ``bank``'s group, then explicit-sample its MC-SARs."""
        event = self.port.issue(Command.DRFM_SB, bank, now_ps)
        self.record_event(event)
        for mitigated_bank, row in event.mitigated_rows:
            self.atm.disarm(mitigated_bank)
            if self.rmaq is not None:
                # Rate-limit horizon restarts at the mitigation itself.
                self.rmaq[mitigated_bank].insert(row, now_ps)
        for member in self._group_banks(bank):
            state = self.states[member]
            if state.mc_sar is None:
                continue
            self.port.explicit_sample(member, state.mc_sar, now_ps)
            self.atm.arm(member, state.mc_sar)
            if self.rmaq is not None:
                self.rmaq[member].insert(state.mc_sar, now_ps)
            state.mc_sar = None

    def before_activate(self, bank: int, row: int, now_ps: int) -> bool:
        self.stats.activations_observed += 1
        state = self.states[bank]
        if self.atm.observe(bank, row):
            self._drain_group(bank, now_ps)
        if state.can >= self.window:
            # Window end: a pending MC-SAR forces the delayed DRFM.
            state.can = 0
            state.san = int(self._rng.integers(self.window))
            if state.mc_sar is not None:
                self._drain_group(bank, now_ps)
        sample_after = False
        if state.can == state.san:
            if self.rmaq is not None and \
                    self.rmaq[bank].contains(row, now_ps):
                self.stats.samples_skipped_rate_limit += 1
            else:
                self.stats.selections += 1
                if not self.port.dar(bank).valid:
                    sample_after = True  # implicit sampling
                else:
                    state.mc_sar = row
                    self.atm.arm(bank, row)
        state.can += 1
        return sample_after

    def on_sampled(self, bank: int, row: int, now_ps: int) -> None:
        self.atm.arm(bank, row)
        if self.rmaq is not None:
            self.rmaq[bank].insert(row, now_ps)

    def summary(self) -> dict[str, float]:
        data = super().summary()
        data["atm_triggers"] = self.atm.triggers
        data["rmaq_skips"] = self.stats.samples_skipped_rate_limit
        return data


@spec_factory
def dream_r_para_factory(t_rh: int,
                         atm_threshold: int = DEFAULT_ATM_THRESHOLD,
                         rmaq_capacity: int | None = None) -> PolicyFactory:
    """Factory for :class:`DreamRParaPolicy` (Figure 9 configurations)."""
    return lambda context: DreamRParaPolicy(
        context, t_rh, atm_threshold, rmaq_capacity=rmaq_capacity)


@spec_factory
def dream_r_mint_factory(t_rh: int,
                         atm_threshold: int = DEFAULT_ATM_THRESHOLD,
                         rate_limited: bool = False) -> PolicyFactory:
    """Factory for :class:`DreamRMintPolicy` (Figure 9/19 configurations)."""
    return lambda context: DreamRMintPolicy(
        context, t_rh, atm_threshold, rate_limited=rate_limited)
