"""Recent-Mitigated-Address-Queue (RMAQ, Section 6).

JEDEC's DRFM specification rate-limits mitigation: a row may receive a
victim refresh at most once per 2*tREFI (bounding transitive /
Half-Double style attacks through the victim rows).  DREAM honours the
limit with a small FIFO per bank (per sub-channel for DREAM-C, keyed by
GroupID): every sampled address is inserted with a tREFI epoch tag, a
selection that hits a live entry is *skipped*, and entries older than two
tREFI expire.

Capacity follows the paper: with at most 75 activations per tREFI, a
MINT window of ``W`` can select a given bank's rows at most
``ceil(150 / W)`` times in two tREFI, so that many entries suffice
(6 / 3 / 2 entries for W = 25 / 50 / 100; 5-15 bytes of SRAM per bank).
"""

from __future__ import annotations

import math
from collections import deque

#: Maximum activations one bank can receive per tREFI (paper, Section 6.1).
MAX_ACTS_PER_TREFI = 75

#: Rate-limit horizon in tREFI units (one mitigation per 2*tREFI).
RATE_LIMIT_TREFI = 2

#: Bits per RMAQ entry: 17-bit row + 2-bit tREFI id + valid (Section 6.1).
ENTRY_BITS = 20


def capacity_for_window(window: int) -> int:
    """RMAQ entries needed for a MINT window of ``window`` activations."""
    if window < 1:
        raise ValueError("window must be positive")
    return max(1, math.ceil(
        RATE_LIMIT_TREFI * MAX_ACTS_PER_TREFI / window))


def storage_bits(capacity: int) -> int:
    """Total SRAM bits of one RMAQ (``capacity`` x 20-bit entries)."""
    return capacity * ENTRY_BITS


class RecentMitigationQueue:
    """FIFO of recently sampled/mitigated addresses with tREFI aging.

    Addresses are opaque integers: row IDs for DREAM-R, group IDs for
    DREAM-C.  Entries expire once the current tREFI epoch is more than
    :data:`RATE_LIMIT_TREFI` past their insertion epoch.
    """

    def __init__(self, capacity: int, t_refi_ps: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if t_refi_ps < 1:
            raise ValueError("t_refi_ps must be positive")
        self.capacity = capacity
        self.t_refi_ps = t_refi_ps
        self._entries: deque[tuple[int, int]] = deque()  # (address, epoch)
        self.hits = 0

    def _epoch(self, now_ps: int) -> int:
        return now_ps // self.t_refi_ps

    def _expire(self, now_ps: int) -> None:
        horizon = self._epoch(now_ps) - RATE_LIMIT_TREFI
        while self._entries and self._entries[0][1] < horizon:
            self._entries.popleft()

    def insert(self, address: int, now_ps: int) -> None:
        """Record a sampled/mitigated address (refreshing its epoch).

        An address already in the queue is moved to the tail with the new
        epoch rather than duplicated, so capacity counts distinct
        addresses; the oldest entry drops if the queue is full.
        """
        self._expire(now_ps)
        for entry in list(self._entries):
            if entry[0] == address:
                self._entries.remove(entry)
                break
        if len(self._entries) >= self.capacity:
            self._entries.popleft()
        self._entries.append((address, self._epoch(now_ps)))

    def contains(self, address: int, now_ps: int) -> bool:
        """Whether ``address`` was sampled within the last two tREFI."""
        self._expire(now_ps)
        found = any(entry == address for entry, _ in self._entries)
        if found:
            self.hits += 1
        return found

    def __len__(self) -> int:
        return len(self._entries)

    def storage_bits(self) -> int:
        """SRAM bits of this queue."""
        return storage_bits(self.capacity)
