"""Storage accounting: DREAM-C configurations (Table 6) and comparisons.

DREAM-C's storage win comes from sharing one counter across a *gang* of
rows that a DRFMab (or several back-to-back DRFMabs) can mitigate
together.  With vertical sharing the gang holds ``V`` rows from each of
the 32 banks (gang size 32V), the DREAM-Counter-Table shrinks to
``rows_per_bank / V`` entries, and one mitigation issues ``V`` DRFMab
commands.  The paper's Table 6:

=====  =========  ==========  =============  =============
T_RH   gang size  # DRFMab    DREAM-C SRAM   Graphene CAM
125    32         1           3 KB/bank      29.3 KB/bank
250    64         2           1.75 KB/bank   15.2 KB/bank
500    128        4           1 KB/bank      7.9 KB/bank
1000   256        8           0.56 KB/bank   4.1 KB/bank
=====  =========  ==========  =============  =============
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.trackers import abacus, graphene
from repro.trackers.base import tracker_threshold

#: Rows per bank at full system size (Table 2).
FULL_SIZE_ROWS_PER_BANK = 128 * 1024

#: Banks per sub-channel (DDR5).
SUBCHANNEL_BANKS = 32

#: Row-address width (128K rows).
ROW_ADDRESS_BITS = 17

#: Baseline T_RH at which a plain 32-row gang suffices (Table 6 row 1).
BASE_GANG_THRESHOLD = 125


def vertical_factor(t_rh: int) -> int:
    """Rows per bank sharing one counter (the paper's Table 6 scaling).

    Doubles each time the threshold doubles above 125 — a gang of 32V
    rows needs V DRFMab commands per mitigation, which stays affordable
    because mitigations get rarer as the threshold rises.
    """
    if t_rh < BASE_GANG_THRESHOLD:
        raise ValueError(
            f"DREAM-C configurations start at T_RH={BASE_GANG_THRESHOLD}")
    return max(1, t_rh // BASE_GANG_THRESHOLD)


def counter_bits(t_rh: int) -> int:
    """Bits per DCT counter (counts to the tracker threshold)."""
    return max(1, math.ceil(math.log2(tracker_threshold(t_rh) + 1)))


@dataclass(frozen=True)
class DreamCConfig:
    """A DREAM-C configuration: one row of the paper's Table 6.

    Attributes
    ----------
    t_rh:
        Target Rowhammer threshold.
    vertical:
        Rows per bank sharing a counter (V); gang size is ``32 * V``.
    dct_entries:
        Entries in the DREAM-Counter-Table (``rows_per_bank / V``).
    rows_per_bank / num_banks:
        System shape the config was computed for.
    """

    t_rh: int
    vertical: int
    dct_entries: int
    rows_per_bank: int = FULL_SIZE_ROWS_PER_BANK
    num_banks: int = SUBCHANNEL_BANKS

    @property
    def gang_size(self) -> int:
        """Rows sharing one counter (Table 6 'Gang Size')."""
        return self.num_banks * self.vertical

    @property
    def drfms_per_mitigation(self) -> int:
        """Back-to-back DRFMab commands per mitigation (Table 6)."""
        return self.vertical

    @property
    def tracker_threshold(self) -> int:
        """DCT trigger threshold (T_RH / 2)."""
        return tracker_threshold(self.t_rh)

    @property
    def counter_bits(self) -> int:
        """Bits per DCT counter."""
        return counter_bits(self.t_rh)

    def dct_bits(self) -> int:
        """Total DCT bits per sub-channel."""
        return self.dct_entries * self.counter_bits

    def mask_bits(self) -> int:
        """Random-mask SRAM per sub-channel (32V masks of 17 bits)."""
        return self.num_banks * self.vertical * ROW_ADDRESS_BITS

    def sram_kb_per_bank(self) -> float:
        """DCT SRAM per bank in KiB (Table 6 'DREAM-C (SRAM/Bank)')."""
        return self.dct_bits() / 8.0 / 1024.0 / self.num_banks

    def sram_kb_per_subchannel(self) -> float:
        """DCT SRAM per sub-channel in KiB."""
        return self.dct_bits() / 8.0 / 1024.0


def dream_c_config(t_rh: int,
                   rows_per_bank: int = FULL_SIZE_ROWS_PER_BANK,
                   num_banks: int = SUBCHANNEL_BANKS,
                   storage_multiplier: int = 1,
                   vertical: int | None = None) -> DreamCConfig:
    """Build the Table 6 configuration for ``t_rh``.

    ``storage_multiplier`` scales the number of DCT entries (the paper's
    "DREAM-C (2x storage)" variants in Figure 17 and Appendix C).
    ``vertical`` overrides the Table 6 vertical-sharing factor for
    design-space exploration (gang size = 32 * vertical).
    """
    if vertical is None:
        vertical = vertical_factor(t_rh)
    elif vertical < 1:
        raise ValueError("vertical must be positive")
    entries = (rows_per_bank // vertical) * storage_multiplier
    if entries < 1:
        raise ValueError("configuration yields an empty DCT")
    return DreamCConfig(
        t_rh=t_rh,
        vertical=vertical,
        dct_entries=entries,
        rows_per_bank=rows_per_bank,
        num_banks=num_banks,
    )


@dataclass(frozen=True)
class StorageComparison:
    """Storage of every tracker at one threshold (KB per bank)."""

    t_rh: int
    dream_c_kb: float
    graphene_kb: float
    abacus_kb: float

    @property
    def graphene_ratio(self) -> float:
        """Graphene storage over DREAM-C (the paper's headline 8x)."""
        return self.graphene_kb / self.dream_c_kb

    @property
    def abacus_ratio(self) -> float:
        """ABACuS storage over DREAM-C (the paper's 6.3x at T=125)."""
        return self.abacus_kb / self.dream_c_kb


def compare_storage(t_rh: int) -> StorageComparison:
    """Full-size storage comparison at ``t_rh`` (Tables 1/6, Figure 17)."""
    config = dream_c_config(t_rh)
    return StorageComparison(
        t_rh=t_rh,
        dream_c_kb=config.sram_kb_per_bank(),
        graphene_kb=graphene.storage_kb_per_bank(t_rh),
        abacus_kb=abacus.storage_kb_per_bank(t_rh),
    )
