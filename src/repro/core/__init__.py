"""DREAM: the paper's primary contribution.

DREAM-R (delayed-DRFM for randomized trackers), DREAM-C (gang-tracking
counters), ATM, RMAQ, the analytic security models and the storage
calculators.
"""

from repro.core.atm import DEFAULT_ATM_THRESHOLD, ActiveTargetMonitor
from repro.core.deployment import (DeploymentPlan, Design, Finding,
                                   Severity, plan_deployment,
                                   validate_deployment)
from repro.core.dream_c import (DREAM_C_RMAQ_ENTRIES, DreamCPolicy,
                                GangMapper, dream_c_factory)
from repro.core.dream_r import (DreamRMintPolicy, DreamRParaPolicy,
                                dream_r_mint_factory, dream_r_para_factory)
from repro.core.rmaq import (MAX_ACTS_PER_TREFI, RATE_LIMIT_TREFI,
                             RecentMitigationQueue, capacity_for_window)
from repro.core.security import (PAPER_TABLE7_PENALTY, RevisedParameters,
                                 dream_r_mint_threshold, gamma_tail,
                                 mint_window_dream_r, mint_window_with_atm,
                                 para_delay_failure_factor,
                                 para_exponent_dream_r,
                                 para_probability_dream_r,
                                 para_probability_with_atm,
                                 revised_parameters, rmaq_threshold_penalty)
from repro.core.storage import (DreamCConfig, StorageComparison,
                                compare_storage, dream_c_config,
                                vertical_factor)

__all__ = [
    "ActiveTargetMonitor",
    "DEFAULT_ATM_THRESHOLD",
    "DREAM_C_RMAQ_ENTRIES",
    "DeploymentPlan",
    "Design",
    "DreamCConfig",
    "DreamCPolicy",
    "DreamRMintPolicy",
    "DreamRParaPolicy",
    "Finding",
    "GangMapper",
    "MAX_ACTS_PER_TREFI",
    "PAPER_TABLE7_PENALTY",
    "RATE_LIMIT_TREFI",
    "RecentMitigationQueue",
    "RevisedParameters",
    "Severity",
    "StorageComparison",
    "capacity_for_window",
    "compare_storage",
    "dream_c_config",
    "dream_c_factory",
    "dream_r_mint_factory",
    "dream_r_mint_threshold",
    "dream_r_para_factory",
    "gamma_tail",
    "mint_window_dream_r",
    "mint_window_with_atm",
    "para_delay_failure_factor",
    "para_exponent_dream_r",
    "para_probability_dream_r",
    "para_probability_with_atm",
    "plan_deployment",
    "revised_parameters",
    "rmaq_threshold_penalty",
    "validate_deployment",
    "vertical_factor",
]
