"""DREAM-C: gang-tracking counter tracker using DRFMab RLP (Section 5).

DREAM-C exploits the fact that a single DRFMab mitigates one row in every
bank: it shares **one counter** across a gang of rows (one per bank, or
``V`` per bank with vertical sharing) that are always mitigated together,
cutting tracker SRAM by 32-256x versus per-row counting.

The two grouping functions of Section 5.2 are both implemented:

* **set-associative** — gang = the same RowID in every bank.  Because
  MOP stripes a hot page over all banks at the same RowID, hot pages
  create hot counters and frequent DRFMabs (the 14.4% slowdown of
  Figure 15 top).
* **randomized** — each bank contributes the row whose ID XORs (with a
  per-bank boot-time random mask) to the gang index.  Hot rows of
  different banks land in different gangs, the expected gang count stays
  near the sum of ~32 *random* rows (< 32 per window for the paper's
  workloads), and DRFMabs become rare (2.6% at T_RH = 500).

Operation per ACT: index the DREAM-Counter-Table (DCT); below the
tracker threshold, increment; at the threshold, run ``V`` mitigation
rounds (explicit sampling of one gang row into every bank's DAR, then a
DRFMab) and restart the counter at 1.  The DCT is reset *staggered*: a
slice of entries clears at each REF so the mitigation load never bunches
at window boundaries (Section 5.4).

The **DREAM-C (2x storage)** variants of Figure 17 and Appendix C double
the DCT by splitting the banks into independent halves, each with its own
table — gangs shrink to one row per bank of the half, halving the number
of benign rows that share (and heat) a counter.
"""

from __future__ import annotations

import numpy as np

from repro.core.rmaq import RecentMitigationQueue
from repro.core.storage import DreamCConfig, dream_c_config
from repro.dram.commands import Command
from repro.exec.spec import spec_factory
from repro.mc.policy import MitigationPolicy, PolicyContext, PolicyFactory

#: Sub-channel-level RMAQ entries for DREAM-C (Section 6.3: at most
#: 9 DRFMab rounds fit in one tREFI, so 18 cover the 2*tREFI horizon).
DREAM_C_RMAQ_ENTRIES = 18


class GangMapper:
    """Row <-> gang mapping with per-bank (and per-slice) XOR masks.

    The row space of each bank is split into ``V`` slices of
    ``entries_per_group`` rows; slice ``j`` of bank ``b`` is permuted by
    ``masks[b, j]`` so that a gang contains row
    ``j * entries + (g XOR masks[b, j])`` of every bank in the gang's
    bank group — ``V`` rows per bank, a bijection overall.
    Set-associative grouping is the all-zero-mask special case.

    With ``bank_groups > 1`` (the 2x-storage variant) the banks split
    into independent groups, each owning a contiguous region of the DCT.
    """

    def __init__(self, config: DreamCConfig, randomized: bool,
                 rng: np.random.Generator, bank_groups: int = 1) -> None:
        if config.num_banks % bank_groups:
            raise ValueError("bank_groups must divide the bank count")
        entries = config.rows_per_bank // config.vertical
        if entries < 1:
            raise ValueError("vertical factor exceeds rows per bank")
        if entries & (entries - 1):
            raise ValueError("entries per group must be a power of two "
                             "for the XOR grouping function")
        self.config = config
        self.bank_groups = bank_groups
        self.banks_per_gang = config.num_banks // bank_groups
        self.entries = entries
        self.total_entries = entries * bank_groups
        self.slices = config.vertical
        self.randomized = randomized
        if randomized:
            self.masks = rng.integers(
                entries, size=(config.num_banks, self.slices),
                dtype=np.int64)
        else:
            self.masks = np.zeros((config.num_banks, self.slices),
                                  dtype=np.int64)

    def group_of_bank(self, bank: int) -> int:
        """Bank-group index of ``bank``."""
        return bank // self.banks_per_gang

    def gang_of(self, bank: int, row: int) -> int:
        """DCT index of ``row`` in ``bank``."""
        slice_index = row // self.entries
        local = (row % self.entries) ^ int(self.masks[bank, slice_index])
        return self.group_of_bank(bank) * self.entries + local

    def gang_banks(self, gang: int) -> range:
        """Banks contributing rows to ``gang``."""
        group = gang // self.entries
        start = group * self.banks_per_gang
        return range(start, start + self.banks_per_gang)

    def rows_of(self, bank: int, gang: int) -> list[int]:
        """All rows of ``bank`` belonging to ``gang`` (one per slice)."""
        if self.group_of_bank(bank) != gang // self.entries:
            return []
        local = gang % self.entries
        return [
            j * self.entries + (local ^ int(self.masks[bank, j]))
            for j in range(self.slices)
        ]

    def gang_rows_by_bank(self, gang: int) -> dict[int, list[int]]:
        """Full gang membership: bank -> rows (used by attacks/tests)."""
        return {bank: self.rows_of(bank, gang)
                for bank in self.gang_banks(gang)}

    @property
    def gang_size(self) -> int:
        """Rows per gang (32V at 1x storage, 16V at 2x)."""
        return self.banks_per_gang * self.slices


class DreamCPolicy(MitigationPolicy):
    """The DREAM-C mitigation policy for one sub-channel."""

    def __init__(self, context: PolicyContext, t_rh: int,
                 randomized: bool = True, storage_multiplier: int = 1,
                 rate_limited: bool = False,
                 vertical: int | None = None) -> None:
        super().__init__()
        if storage_multiplier < 1:
            raise ValueError("storage_multiplier must be positive")
        self.t_rh = t_rh
        self.config = dream_c_config(
            t_rh, rows_per_bank=context.rows_per_bank,
            num_banks=context.num_banks,
            storage_multiplier=storage_multiplier,
            vertical=vertical)
        self.mapper = GangMapper(self.config, randomized, context.rng(),
                                 bank_groups=storage_multiplier)
        self.threshold = self.config.tracker_threshold
        self.dct = np.zeros(self.mapper.total_entries, dtype=np.int32)
        self._timing = context.timing
        # Staggered reset: total_entries / refs_per_window entries per REF.
        self._entries_per_ref = (self.mapper.total_entries
                                 / context.timing.refs_per_window)
        self._next_ref_ps = context.timing.t_refi
        self._reset_cursor = 0.0
        self.rmaq: RecentMitigationQueue | None = None
        if rate_limited:
            self.rmaq = RecentMitigationQueue(DREAM_C_RMAQ_ENTRIES,
                                              context.timing.t_refi)
        self.drfm_rounds = 0
        kind = "rand" if randomized else "assoc"
        suffix = f"-{storage_multiplier}x" if storage_multiplier > 1 else ""
        self.name = f"dream-c-{kind}{suffix}"

    # ------------------------------------------------------------------
    def _staggered_reset(self, now_ps: int) -> None:
        """Clear the per-REF slice(s) of the DCT due by ``now_ps``."""
        entries = self.mapper.total_entries
        while self._next_ref_ps <= now_ps:
            self._next_ref_ps += self._timing.t_refi
            start = int(self._reset_cursor)
            self._reset_cursor += self._entries_per_ref
            stop = int(self._reset_cursor)
            if stop > start:
                for index in range(start, stop):
                    self.dct[index % entries] = 0
            if self._reset_cursor >= entries:
                self._reset_cursor -= entries

    def _mitigate_gang(self, gang: int, trigger_bank: int,
                       now_ps: int) -> None:
        """Run the V mitigation rounds for ``gang``.

        Each round explicit-samples one gang row into the DAR of every
        bank of the gang's bank group (ACTs paced at tRRD on the command
        bus) and issues a DRFMab.
        """
        start = now_ps
        local = gang % self.mapper.entries
        for j in range(self.mapper.slices):
            ready = start
            for position, bank in enumerate(self.mapper.gang_banks(gang)):
                row = (j * self.mapper.entries
                       + (local ^ int(self.mapper.masks[bank, j])))
                at = start + position * self._timing.t_rrd
                ready = max(ready, self.port.explicit_sample(bank, row, at))
            event = self.port.issue(Command.DRFM_AB, trigger_bank, ready)
            self.record_event(event)
            self.drfm_rounds += 1
            start = ready + self._timing.t_drfm_ab

    # ------------------------------------------------------------------
    def before_activate(self, bank: int, row: int, now_ps: int) -> bool:
        self.stats.activations_observed += 1
        self._staggered_reset(now_ps)
        gang = self.mapper.gang_of(bank, row)
        if self.dct[gang] >= self.threshold:
            if self.rmaq is not None and self.rmaq.contains(gang, now_ps):
                # Rate limit: skip this round; the counter stays pinned
                # and the mitigation retries once the entry expires.
                self.stats.samples_skipped_rate_limit += 1
                return False
            self.stats.selections += 1
            self._mitigate_gang(gang, bank, now_ps)
            if self.rmaq is not None:
                self.rmaq.insert(gang, now_ps)
            self.dct[gang] = 1  # the triggering ACT counts
        else:
            self.dct[gang] += 1
        return False

    def summary(self) -> dict[str, float]:
        data = super().summary()
        data["drfm_rounds"] = self.drfm_rounds
        data["dct_entries"] = self.mapper.total_entries
        data["max_counter"] = int(self.dct.max()) if len(self.dct) else 0
        return data


@spec_factory
def dream_c_factory(t_rh: int, randomized: bool = True,
                    storage_multiplier: int = 1,
                    rate_limited: bool = False,
                    vertical: int | None = None) -> PolicyFactory:
    """Factory for :class:`DreamCPolicy` (Figure 15/17/19/22 configs)."""
    return lambda context: DreamCPolicy(
        context, t_rh, randomized=randomized,
        storage_multiplier=storage_multiplier, rate_limited=rate_limited,
        vertical=vertical)
