"""Analytic security models for DREAM-R (Appendices A and B, Tables 4/7).

DREAM-R delays the DRFM after sampling, so activations can land on the
sampled row before it is mitigated.  This module quantifies the impact
and produces the re-architected tracker parameters:

* **PARA (Appendix A)** — the activations between mitigation->sampling
  (X) and sampling->DRFM (Y) are both exponential(p); their sum is
  Gamma(2, p), whose tail ``(1 + pT) e^(-pT)`` is ``(1 + pT)`` ~ 20x
  worse than coupled PARA's ``e^(-pT)``.  The revised probability p'
  solves ``(1 + p'T) e^(-p'T) = e^(-20)``, i.e. ``p' T ~ 23.5`` —
  a ~17% increase (p = 1/100 -> 1/85 at T_RH = 2000).
* **MINT (Appendix B)** — the delayed DRFM adds up to W unmitigated
  activations single-sided, so the tolerated double-sided threshold
  grows from 20W to 20.5W; meeting a target T_RH needs W = T_RH / 20.5
  (W = 100 -> 97 at T_RH = 2000).
* **ATM (Section 4.4)** — with Active Target-row Monitoring the delay
  exposure is capped at ATM-TH activations (single-sided), so the
  parameters only shrink by ATM-TH/2 double-sided: p = 1/99 and W = 99
  at T_RH = 2000 (Table 4).
* **RMAQ (Section 6.2, Table 7)** — the rate-limit filter lets an
  attacker land up to 150 extra single-sided activations on a row that
  cannot be re-sampled, but only the 1/W chance that this row is the
  failing one matters; the tolerated-threshold penalty is
  ``max(0, 75 - W ln(W) / 2)``, nonzero only below W ~ 43.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.optimize import brentq

from repro.core.atm import DEFAULT_ATM_THRESHOLD
from repro.core.rmaq import MAX_ACTS_PER_TREFI, RATE_LIMIT_TREFI
from repro.trackers.mint import THRESHOLD_PER_WINDOW, window_for_threshold
from repro.trackers.para import MTTF_EXPONENT, probability_for_threshold

#: MINT threshold-per-window under delayed DRFM (20.5 x W, Appendix B).
DREAM_R_THRESHOLD_PER_WINDOW = 20.5


def para_delay_failure_factor(p_times_t: float) -> float:
    """Failure-rate inflation of delayed DRFM over coupled PARA.

    The Gamma(2, p) tail is ``(1 + pT) e^(-pT)``; relative to the
    exponential tail ``e^(-pT)`` the failure rate grows by ``1 + pT``
    (about 21x at the paper's operating point pT = 20).
    """
    if p_times_t <= 0:
        raise ValueError("p*T must be positive")
    return 1.0 + p_times_t


def gamma_tail(p: float, t: float) -> float:
    """P(X + Y >= t) for X, Y ~ Exp(p): the Appendix A Equation 1."""
    return (1.0 + p * t) * math.exp(-p * t)


def para_exponent_dream_r(mttf_exponent: float = MTTF_EXPONENT) -> float:
    """Solve ``(1 + x) e^(-x) = e^(-mttf_exponent)`` for x = p'T."""
    target = math.exp(-mttf_exponent)
    return brentq(lambda x: (1.0 + x) * math.exp(-x) - target,
                  mttf_exponent, 4.0 * mttf_exponent)


def para_probability_dream_r(t_rh: int,
                             mttf_exponent: float = MTTF_EXPONENT) -> float:
    """Revised PARA probability under delayed DRFM without ATM.

    At T_RH = 2000 this returns ~1/85 (a ~17% increase over 1/100).
    """
    if t_rh < 1:
        raise ValueError("t_rh must be positive")
    return para_exponent_dream_r(mttf_exponent) / t_rh


def para_probability_with_atm(
        t_rh: int, atm_threshold: int = DEFAULT_ATM_THRESHOLD) -> float:
    """PARA probability under DREAM-R with ATM (Table 4: 1/99 at 2K).

    ATM caps the sampling->DRFM exposure at ``atm_threshold`` single-sided
    activations (``atm_threshold / 2`` double-sided), so PARA only needs
    to cover a threshold reduced by that amount.
    """
    effective = t_rh - atm_threshold // 2
    return probability_for_threshold(effective)


def mint_window_dream_r(t_rh: int) -> int:
    """Revised MINT window under delayed DRFM without ATM (97 at 2K)."""
    window = int(t_rh / DREAM_R_THRESHOLD_PER_WINDOW)
    if window < 1:
        raise ValueError(f"T_RH={t_rh} is below what DREAM-R MINT tolerates")
    return window


def mint_window_with_atm(
        t_rh: int, atm_threshold: int = DEFAULT_ATM_THRESHOLD) -> int:
    """MINT window under DREAM-R with ATM (Table 4: 99 at 2K)."""
    return window_for_threshold(t_rh - atm_threshold // 2)


def dream_r_mint_threshold(window: int) -> int:
    """Design-target T_RH of DREAM-R (MINT) for a window (Table 7 row 1)."""
    if window < 1:
        raise ValueError("window must be positive")
    return THRESHOLD_PER_WINDOW * window


def rmaq_threshold_penalty(window: int) -> int:
    """Increase in tolerated T_RH caused by RMAQ filtering (Table 7).

    The attacker can land ``2 * MAX_ACTS_PER_TREFI`` extra single-sided
    activations on the filtered row, but gains only if that row (1 of W)
    is the failing one; with MINT's per-activation failure exponent
    ``lambda ~ 1/W`` the net double-sided penalty is
    ``max(0, 75 - W ln(W) / 2)`` — matching the paper's Table 7 within
    rounding (36/25/14/2 -> 35/24/13/1 at W = 25/30/35/40, 0 above).
    """
    if window < 1:
        raise ValueError("window must be positive")
    extra = RATE_LIMIT_TREFI * MAX_ACTS_PER_TREFI
    penalty_ss = extra - window * math.log(window)
    return max(0, round(penalty_ss / 2.0))


#: Paper's Table 7 reference values: window -> T_RH penalty with RMAQ.
PAPER_TABLE7_PENALTY = {25: 36, 30: 25, 35: 14, 40: 2, 45: 0, 50: 0, 100: 0}


@dataclass(frozen=True)
class RevisedParameters:
    """One row of the paper's Table 4 for a target threshold."""

    t_rh: int
    para_p_coupled: float
    para_p_dream_r: float
    para_p_with_atm: float
    mint_w_coupled: int
    mint_w_dream_r: int
    mint_w_with_atm: int

    def describe(self) -> str:
        """Render the row the way the paper's Table 4 does."""
        return (
            f"T_RH={self.t_rh}: PARA p=1/{math.floor(1 / self.para_p_coupled)} "
            f"-> 1/{math.floor(1 / self.para_p_dream_r)} "
            f"(ATM: 1/{math.floor(1 / self.para_p_with_atm)}); "
            f"MINT W={self.mint_w_coupled} -> {self.mint_w_dream_r} "
            f"(ATM: {self.mint_w_with_atm})")


def revised_parameters(
        t_rh: int,
        atm_threshold: int = DEFAULT_ATM_THRESHOLD) -> RevisedParameters:
    """Compute the full Table 4 row for ``t_rh``."""
    return RevisedParameters(
        t_rh=t_rh,
        para_p_coupled=probability_for_threshold(t_rh),
        para_p_dream_r=para_probability_dream_r(t_rh),
        para_p_with_atm=para_probability_with_atm(t_rh, atm_threshold),
        mint_w_coupled=window_for_threshold(t_rh),
        mint_w_dream_r=mint_window_dream_r(t_rh),
        mint_w_with_atm=mint_window_with_atm(t_rh, atm_threshold),
    )
