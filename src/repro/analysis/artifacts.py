"""Unified artifact loading for the CLI subcommands.

Every analyzer subcommand (``stats``, ``trace``, ``spans``, ``bench``)
— and the service client commands (``jobs``, ``submit``) — consumes an
artifact that can be missing, malformed, or written by a newer build.
Historically each subcommand grew its own exit-2 handling; this module
is the single taxonomy they all share now:

* loaders raise :class:`ArtifactError` with a ready-to-print message
  (no traceback, no prefix);
* the CLI renders every such error identically — ``error: <message>``
  on stderr, exit code 2;
* artifacts carrying a *newer* schema version than this build always
  say so and name the fix ("upgrade repro").

Exit-code contract for subcommands consuming artifacts:

* ``0`` — artifact loaded and the command succeeded;
* ``1`` — artifact loaded but the command's own check failed (empty
  journal, regression found, job failed);
* ``2`` — the artifact itself is unusable (missing / invalid / newer
  schema) or the sweep service is unreachable.
"""

from __future__ import annotations


class ArtifactError(Exception):
    """An artifact (file or service endpoint) the CLI cannot use.

    ``str(error)`` is the complete, user-facing message; the CLI prints
    it as ``error: <message>`` and exits with :attr:`exit_code`.
    """

    #: The taxonomy's exit code for unusable artifacts.
    exit_code = 2


def load_journal_records(path: str) -> list[dict]:
    """Load a JSONL journal for ``stats``/``trace``.

    Raises :class:`ArtifactError` when the file is unreadable, not
    valid JSONL, or written by a newer journal schema.
    """
    from repro.obs.journal import (SCHEMA_VERSION, load_journal,
                                   unsupported_schema)

    try:
        records = load_journal(path)
    except OSError as error:
        raise ArtifactError(
            f"cannot read journal {path}: {error}") from None
    except ValueError as error:
        raise ArtifactError(
            f"{path} is not a valid JSONL journal: {error}") from None
    newest = unsupported_schema(records)
    if newest is not None:
        raise ArtifactError(
            f"{path} uses journal schema v{newest}, newer than the "
            f"supported v{SCHEMA_VERSION}; upgrade repro to read this "
            f"journal")
    return records


def load_spans_doc(path: str):
    """Load a spans document for ``spans``.

    Raises :class:`ArtifactError` on unreadable/malformed/newer-schema
    files (the underlying loader's messages already follow the
    taxonomy, including the "upgrade repro" hint).
    """
    from repro.analysis.spans import SpansFormatError, load_spans

    try:
        return load_spans(path)
    except SpansFormatError as error:
        raise ArtifactError(str(error)) from None


def load_spans_url(url: str):
    """Fetch and decode a remote spans document for ``spans --url``.

    ``url`` is the service's ``/v1/jobs/<id>/spans`` endpoint.  HTTP
    errors surface the server's ``{"error": ...}`` detail; transport
    errors and malformed documents follow the same taxonomy as the
    file loader, so ``repro spans`` behaves identically on both inputs.
    """
    import json
    import urllib.error
    import urllib.request

    from repro.analysis.spans import SpansFormatError, decode_spans

    if not url.startswith(("http://", "https://")):
        raise ArtifactError(f"--url must be an http(s) URL, got {url!r}")
    try:
        with urllib.request.urlopen(url) as response:
            payload = response.read()
    except urllib.error.HTTPError as error:
        detail = ""
        try:
            body = json.loads(error.read())
            if isinstance(body, dict):
                detail = body.get("error", "")
        except ValueError:
            pass
        raise ArtifactError(
            f"service answered {error.code} for {url}"
            + (f": {detail}" if detail else "")) from None
    except (OSError, urllib.error.URLError) as error:
        raise ArtifactError(f"cannot fetch {url}: {error}") from None
    try:
        doc = json.loads(payload)
    except ValueError as error:
        raise ArtifactError(
            f"{url} did not return valid JSON: {error}") from None
    try:
        return decode_spans(doc, source="GET /v1/jobs/<id>/spans")
    except SpansFormatError as error:
        raise ArtifactError(str(error)) from None


def load_access_records(path: str) -> list[dict]:
    """Load a service access log (JSONL) for ``stats --access-log``.

    Raises :class:`ArtifactError` when the file is unreadable, a line
    is not a JSON object of kind ``access``, or a record carries a
    newer schema version than this build writes.
    """
    import json

    from repro.service.server import ACCESS_LOG_SCHEMA_VERSION

    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        raise ArtifactError(
            f"cannot read access log {path}: {error}") from None
    records = []
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            raise ArtifactError(
                f"{path} is not a valid JSONL access log "
                f"(line {line_no}: {error})") from None
        if not isinstance(record, dict) or record.get("kind") != "access":
            raise ArtifactError(
                f"{path} line {line_no} is not an access record; "
                f"expected a file written by repro serve --access-log")
        version = record.get("v")
        if isinstance(version, int) and \
                version > ACCESS_LOG_SCHEMA_VERSION:
            raise ArtifactError(
                f"{path} uses access-log schema v{version}, newer than "
                f"the supported v{ACCESS_LOG_SCHEMA_VERSION}; upgrade "
                f"repro to read this log")
        records.append(record)
    return records


def load_bench_metrics(results_dir: str) -> dict:
    """Collect current benchmark snapshot metrics for ``bench record``.

    Raises :class:`ArtifactError` when no snapshots exist under
    ``results_dir``.
    """
    from repro.analysis import regression

    metrics = regression.collect_metrics(results_dir)
    if not metrics:
        raise ArtifactError(f"no benchmark snapshots found under "
                            f"{results_dir!r}")
    return metrics


def run_bench_check(results_dir: str, history: str,
                    threshold_pct: float):
    """Run the benchmark-regression gate for ``bench check``.

    Raises :class:`ArtifactError` when the snapshots or the history
    ledger are missing (the regression module's message carries the
    seeding hint).
    """
    from repro.analysis import regression

    try:
        return regression.run_check(results_dir, history,
                                    threshold_pct=threshold_pct)
    except FileNotFoundError as error:
        raise ArtifactError(str(error)) from None
