"""Unified artifact loading for the CLI subcommands.

Every analyzer subcommand (``stats``, ``trace``, ``spans``, ``bench``)
— and the service client commands (``jobs``, ``submit``) — consumes an
artifact that can be missing, malformed, or written by a newer build.
Historically each subcommand grew its own exit-2 handling; this module
is the single taxonomy they all share now:

* loaders raise :class:`ArtifactError` with a ready-to-print message
  (no traceback, no prefix);
* the CLI renders every such error identically — ``error: <message>``
  on stderr, exit code 2;
* artifacts carrying a *newer* schema version than this build always
  say so and name the fix ("upgrade repro").

Exit-code contract for subcommands consuming artifacts:

* ``0`` — artifact loaded and the command succeeded;
* ``1`` — artifact loaded but the command's own check failed (empty
  journal, regression found, job failed);
* ``2`` — the artifact itself is unusable (missing / invalid / newer
  schema) or the sweep service is unreachable.
"""

from __future__ import annotations


class ArtifactError(Exception):
    """An artifact (file or service endpoint) the CLI cannot use.

    ``str(error)`` is the complete, user-facing message; the CLI prints
    it as ``error: <message>`` and exits with :attr:`exit_code`.
    """

    #: The taxonomy's exit code for unusable artifacts.
    exit_code = 2


def load_journal_records(path: str) -> list[dict]:
    """Load a JSONL journal for ``stats``/``trace``.

    Raises :class:`ArtifactError` when the file is unreadable, not
    valid JSONL, or written by a newer journal schema.
    """
    from repro.obs.journal import (SCHEMA_VERSION, load_journal,
                                   unsupported_schema)

    try:
        records = load_journal(path)
    except OSError as error:
        raise ArtifactError(
            f"cannot read journal {path}: {error}") from None
    except ValueError as error:
        raise ArtifactError(
            f"{path} is not a valid JSONL journal: {error}") from None
    newest = unsupported_schema(records)
    if newest is not None:
        raise ArtifactError(
            f"{path} uses journal schema v{newest}, newer than the "
            f"supported v{SCHEMA_VERSION}; upgrade repro to read this "
            f"journal")
    return records


def load_spans_doc(path: str):
    """Load a spans document for ``spans``.

    Raises :class:`ArtifactError` on unreadable/malformed/newer-schema
    files (the underlying loader's messages already follow the
    taxonomy, including the "upgrade repro" hint).
    """
    from repro.analysis.spans import SpansFormatError, load_spans

    try:
        return load_spans(path)
    except SpansFormatError as error:
        raise ArtifactError(str(error)) from None


def load_bench_metrics(results_dir: str) -> dict:
    """Collect current benchmark snapshot metrics for ``bench record``.

    Raises :class:`ArtifactError` when no snapshots exist under
    ``results_dir``.
    """
    from repro.analysis import regression

    metrics = regression.collect_metrics(results_dir)
    if not metrics:
        raise ArtifactError(f"no benchmark snapshots found under "
                            f"{results_dir!r}")
    return metrics


def run_bench_check(results_dir: str, history: str,
                    threshold_pct: float):
    """Run the benchmark-regression gate for ``bench check``.

    Raises :class:`ArtifactError` when the snapshots or the history
    ledger are missing (the regression module's message carries the
    seeding hint).
    """
    from repro.analysis import regression

    try:
        return regression.run_check(results_dir, history,
                                    threshold_pct=threshold_pct)
    except FileNotFoundError as error:
        raise ArtifactError(str(error)) from None
