"""Denial-of-Service analysis of DREAM-C (the paper's Section 5.5).

DRFMab blocks a whole sub-channel, so an attacker who knows (or guesses)
rows of one gang can hammer them to force back-to-back mitigation rounds.
The paper bounds the damage: at T_RH = 125 the attacker needs 62
activations (one tracker threshold) taking ``tRC + 62 * tBUS`` to trigger
one round that blocks the sub-channel for ~411 ns — a worst-case
throughput reduction of about 3x, comparable to ordinary row-buffer-
conflict contention attacks.

This module computes that bound analytically from the timing parameters
and provides the attack-pattern wiring for measuring it in simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import DDR5Timing
from repro.trackers.base import tracker_threshold


@dataclass(frozen=True)
class DoSAnalysis:
    """Worst-case DoS numbers for one DREAM-C configuration."""

    t_rh: int
    activations_per_round: int
    attack_time_ps: int
    mitigation_block_ps: int

    @property
    def round_time_ps(self) -> int:
        """Total time of one attack round (activations + mitigation)."""
        return self.attack_time_ps + self.mitigation_block_ps

    @property
    def throughput_factor(self) -> float:
        """Worst-case slowdown factor of sub-channel throughput."""
        return self.round_time_ps / self.attack_time_ps

    def describe(self) -> str:
        """Render the Section 5.5 argument with this config's numbers."""
        return (
            f"T_RH={self.t_rh}: {self.activations_per_round} ACTs in "
            f"{self.attack_time_ps / 1000:.0f} ns trigger a "
            f"{self.mitigation_block_ps / 1000:.0f} ns mitigation block "
            f"-> throughput reduced {self.throughput_factor:.1f}x")


def mitigation_block_ps(timing: DDR5Timing, vertical: int = 1) -> int:
    """Sub-channel block of one DREAM-C mitigation (V rounds).

    Each round costs the explicit-sampling sweep (32 ACT/Pre+S pairs
    paced at tRRD, bounded by one row cycle for the last bank) plus the
    DRFMab itself — ~411 ns per round with JEDEC timings.
    """
    sampling = 31 * timing.t_rrd + timing.t_rc
    return vertical * (sampling + timing.t_drfm_ab)


def analyze_dos(t_rh: int, timing: DDR5Timing | None = None,
                vertical: int = 1) -> DoSAnalysis:
    """Worst-case DoS analysis for DREAM-C at ``t_rh`` (Section 5.5)."""
    if timing is None:
        timing = DDR5Timing.jedec()
    threshold = tracker_threshold(t_rh)
    # The attacker's fastest round: one ACT to open the first gang row,
    # then threshold back-to-back accesses saturating the data bus.
    attack_time = timing.t_rc + threshold * timing.t_bus
    return DoSAnalysis(
        t_rh=t_rh,
        activations_per_round=threshold,
        attack_time_ps=attack_time,
        mitigation_block_ps=mitigation_block_ps(timing, vertical),
    )
