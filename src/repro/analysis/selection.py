"""Inter-selection distance analysis (the paper's Figure 11).

"Not all randomized trackers are equal" (Section 4.7): PARA's IID
selection makes the activation distance between consecutive selections
geometric/exponential — many short gaps, each of which forces DREAM-R to
issue a DRFM early (the bank's DAR must be freed for the new sample).
MINT's URAND windowed selection yields a triangular distribution on
(0, 2W) centred at W — well-spaced selections, longer DRFM delays, higher
RLP.  This module reproduces the Monte-Carlo experiment: selections over
N activations for a set of banks, plus distribution summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trackers.mint import MintWindow
from repro.trackers.para import ParaSampler


@dataclass(frozen=True)
class DistanceStats:
    """Summary of one tracker's inter-selection distances."""

    tracker: str
    count: int
    mean: float
    std: float
    p10: float
    median: float
    p90: float
    short_fraction: float  # distances below half the mean spacing

    @classmethod
    def from_distances(cls, tracker: str, distances: np.ndarray,
                       nominal_spacing: float) -> "DistanceStats":
        if len(distances) == 0:
            raise ValueError("no distances to summarise")
        return cls(
            tracker=tracker,
            count=len(distances),
            mean=float(np.mean(distances)),
            std=float(np.std(distances)),
            p10=float(np.percentile(distances, 10)),
            median=float(np.percentile(distances, 50)),
            p90=float(np.percentile(distances, 90)),
            short_fraction=float(
                np.mean(distances < nominal_spacing / 2.0)),
        )


def para_selection_positions(probability: float, activations: int,
                             rng: np.random.Generator) -> np.ndarray:
    """Activation indices PARA selects over ``activations`` trials."""
    draws = rng.random(activations) < probability
    return np.flatnonzero(draws)


def mint_selection_positions(window: int, activations: int,
                             rng: np.random.Generator) -> np.ndarray:
    """Activation indices MINT selects over ``activations`` trials."""
    windows = activations // window
    sans = rng.integers(window, size=windows)
    return np.arange(windows) * window + sans


def monte_carlo_selections(window: int, activations: int, banks: int,
                           seed: int = 7) -> dict[str, list[np.ndarray]]:
    """The Figure 11 experiment: selections for PARA and MINT per bank.

    PARA runs with ``p = 1 / window`` so both trackers have the same
    average selection rate.  Returns per-bank selection positions for
    each tracker.
    """
    if window < 1 or activations < window:
        raise ValueError("need at least one full window of activations")
    result: dict[str, list[np.ndarray]] = {"para": [], "mint": []}
    for bank in range(banks):
        rng = np.random.default_rng((seed, bank))
        result["para"].append(
            para_selection_positions(1.0 / window, activations, rng))
        result["mint"].append(
            mint_selection_positions(window, activations, rng))
    return result


def distance_statistics(window: int, activations: int = 200_000,
                        seed: int = 7) -> dict[str, DistanceStats]:
    """Distribution summaries of the inter-selection distances.

    Demonstrates the Section 4.7 contrast: PARA's distances have a std
    close to their mean (exponential) and a large short-gap fraction;
    MINT's cluster around W with std ~ W / sqrt(6) (triangular).
    """
    rng_para = np.random.default_rng((seed, 1))
    rng_mint = np.random.default_rng((seed, 2))
    para = ParaSampler(1.0 / window, rng_para)
    mint = MintWindow(window, rng_mint)
    para_distances = para.inter_selection_distances(activations)
    mint_distances = mint.inter_selection_distances(activations)
    return {
        "para": DistanceStats.from_distances("para", para_distances,
                                             float(window)),
        "mint": DistanceStats.from_distances("mint", mint_distances,
                                             float(window)),
    }
