"""Access-log summarization (the ``repro stats --access-log`` path).

Input is the schema-versioned JSONL request log ``repro serve
--access-log FILE`` appends (one record per served request: method,
path, status, duration_us, job id, wire bytes).  The summary groups
requests by *route* — job ids in the path are folded to ``<id>`` so a
thousand ``GET /v1/jobs/j42`` polls aggregate into one row — and
reports per-route request counts, error counts (status >= 400), p50 /
p95 / max latency and total bytes on the wire.

Percentiles use the nearest-rank method on the sorted duration list:
deterministic, no interpolation, exact for the small-N case an access
log summary usually is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Path segments that look like job ids (everything after /v1/jobs/
#: that is not a known sub-resource) fold to this placeholder.
ID_PLACEHOLDER = "<id>"

#: Known tails of /v1/jobs/<id>/... kept verbatim during folding.
_JOB_TAILS = ("events", "result", "spans")


def normalize_route(method: str, path: str) -> str:
    """Fold job ids so polling loops aggregate into one route.

    ``GET /v1/jobs/j42/events`` → ``GET /v1/jobs/<id>/events``.
    """
    parts = [part for part in path.split("/") if part]
    if len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
        parts[2] = ID_PLACEHOLDER
        parts = [part if index < 3 or part in _JOB_TAILS
                 else ID_PLACEHOLDER
                 for index, part in enumerate(parts)]
    return f"{method} /{'/'.join(parts)}"


def percentile(sorted_values: list[int], fraction: float) -> int:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0
    rank = max(1, -(-len(sorted_values) * fraction // 1))
    return sorted_values[int(rank) - 1]


@dataclass
class RouteSummary:
    """Aggregate of one normalized route."""

    route: str
    requests: int = 0
    errors: int = 0
    bytes_total: int = 0
    durations_us: list[int] = field(default_factory=list)

    def finalize(self) -> dict:
        durations = sorted(self.durations_us)
        return {
            "route": self.route,
            "requests": self.requests,
            "errors": self.errors,
            "bytes": self.bytes_total,
            "p50_us": percentile(durations, 0.50),
            "p95_us": percentile(durations, 0.95),
            "max_us": durations[-1] if durations else 0,
        }


def summarize_access(records: list[dict]) -> dict:
    """Reduce access records to per-route rows plus document totals."""
    routes: dict[str, RouteSummary] = {}
    for record in records:
        route = normalize_route(str(record.get("method", "?")),
                                str(record.get("path", "?")))
        summary = routes.get(route)
        if summary is None:
            summary = routes[route] = RouteSummary(route=route)
        summary.requests += 1
        status = record.get("status")
        if isinstance(status, int) and status >= 400:
            summary.errors += 1
        size = record.get("bytes")
        if isinstance(size, int):
            summary.bytes_total += size
        duration = record.get("duration_us")
        if isinstance(duration, int):
            summary.durations_us.append(duration)
    rows = [routes[route].finalize() for route in sorted(routes)]
    return {
        "requests": sum(row["requests"] for row in rows),
        "errors": sum(row["errors"] for row in rows),
        "bytes": sum(row["bytes"] for row in rows),
        "routes": rows,
    }


def render_access(summary: dict) -> str:
    """Human-readable per-route table (requests desc, then name)."""
    lines = [f"access log: {summary['requests']} requests, "
             f"{summary['errors']} errors, {summary['bytes']} bytes"]
    rows = sorted(summary["routes"],
                  key=lambda row: (-row["requests"], row["route"]))
    if not rows:
        return lines[0]
    width = max(len(row["route"]) for row in rows)
    lines.append(f"  {'route'.ljust(width)}  {'reqs':>6} {'errs':>5} "
                 f"{'p50_us':>8} {'p95_us':>8} {'max_us':>8} "
                 f"{'bytes':>10}")
    for row in rows:
        lines.append(
            f"  {row['route'].ljust(width)}  {row['requests']:>6} "
            f"{row['errors']:>5} {row['p50_us']:>8} {row['p95_us']:>8} "
            f"{row['max_us']:>8} {row['bytes']:>10}")
    return "\n".join(lines)
