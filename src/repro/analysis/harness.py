"""Adversarial attack harness for security evaluation.

Drives a mitigation policy with an explicit attack pattern at maximum
attacker speed and measures the largest number of activations any row
accumulates without being mitigated — the quantity every Rowhammer
guarantee bounds.  The harness runs a real sub-channel controller (banks,
DARs, REF, DRFM) but forces every access to be an activation (the
attacker interleaves conflicting accesses, so row-buffer hits never
absorb the hammer).

Counting is **single-sided**: the per-row activation count.  A
double-sided tolerated threshold ``T_RH`` corresponds to a single-sided
bound of ``2 * T_RH`` (each aggressor contributes half the victim's
disturbance), which is how the security tests translate the paper's
numbers.  REF-driven victim refresh is deliberately ignored — that is
attacker-favourable, making the measured exposure an upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.device import Organization
from repro.dram.disturbance import DisturbanceModel
from repro.dram.subchannel import SubChannel
from repro.dram.timing import DDR5Timing
from repro.mc.controller import SubChannelController
from repro.mc.policy import PolicyContext, PolicyFactory


@dataclass
class AttackResult:
    """Outcome of one attack run."""

    activations: int
    max_unmitigated: int
    max_unmitigated_row: tuple[int, int] | None
    mitigations: int
    rows_mitigated: int
    per_row_peaks: dict[tuple[int, int], int] = field(default_factory=dict)

    def peak_for(self, bank: int, row: int) -> int:
        """Largest unmitigated streak a specific row reached."""
        return self.per_row_peaks.get((bank, row), 0)


class AttackHarness:
    """Hammer a mitigation policy and measure unmitigated exposure."""

    def __init__(self, policy_factory: PolicyFactory,
                 timing: DDR5Timing | None = None,
                 organization: Organization | None = None,
                 seed: int = 99) -> None:
        self.timing = timing if timing is not None else DDR5Timing.scaled(64)
        self.organization = (organization if organization is not None
                             else Organization.scaled(64))
        self.subchannel = SubChannel(
            0, self.timing, self.organization.banks,
            self.organization.banks_per_group, record_mitigations=True)
        context = PolicyContext(
            subchannel=0,
            num_banks=self.organization.banks,
            banks_per_group=self.organization.banks_per_group,
            rows_per_bank=self.organization.rows_per_bank,
            timing=self.timing,
            seed=seed,
        )
        self.policy = policy_factory(context)
        self.controller = SubChannelController(self.subchannel, self.timing,
                                               self.policy)
        self._counts: dict[tuple[int, int], int] = {}
        self._peaks: dict[tuple[int, int], int] = {}
        self._events_seen = 0
        self.now_ps = 0
        self.last_finish_ps = 0
        self.activations = 0
        #: When set, the attacker issues at this fixed pace (e.g. tBUS)
        #: instead of serializing on each access's completion — the
        #: bus-limited pipelining the DoS analysis of Section 5.5 assumes.
        self.pipeline_step_ps: int | None = None
        self.disturbance: DisturbanceModel | None = None

    def attach_disturbance(self, model: DisturbanceModel) -> None:
        """Shadow the run with a victim-disturbance model.

        Every attacker ACT disturbs the aggressor's neighbours; every
        mitigation performs victim refresh; periodic REF clears its row
        slice in every bank.  After the run, ``model.flips`` holds any
        Rowhammer failures the defense let through.
        """
        self.disturbance = model
        rows_per_ref = max(
            1, model.rows_per_bank // self.timing.refs_per_window)

        def on_ref(index: int, _time_ps: int) -> None:
            first = (index % self.timing.refs_per_window) * rows_per_ref
            for bank in range(self.subchannel.num_banks):
                model.on_periodic_refresh(bank, first, rows_per_ref)

        self.controller.refresh.on_ref(on_ref)

    # ------------------------------------------------------------------
    def _absorb_mitigations(self) -> None:
        """Reset counters for every row mitigated since the last check."""
        log = self.subchannel.mitigation_log
        for event in log[self._events_seen:]:
            for bank, row in event.mitigated_rows:
                self._counts[(bank, row)] = 0
                if self.disturbance is not None:
                    self.disturbance.on_mitigation(bank, row,
                                                   event.time_ps)
        self._events_seen = len(log)

    def hammer_one(self, bank: int, row: int) -> None:
        """One attacker activation of ``(bank, row)``."""
        key = (bank, row)
        self._counts[key] = self._counts.get(key, 0) + 1
        if self.disturbance is not None:
            self.disturbance.on_activation(bank, row, self.now_ps)
        finish = self.controller.service(bank, row, self.now_ps)
        if finish > self.last_finish_ps:
            self.last_finish_ps = finish
        if self.pipeline_step_ps is None:
            self.now_ps = finish
        else:
            self.now_ps += self.pipeline_step_ps
        self.activations += 1
        # Attacker forces the row closed so the next access activates.
        target = self.subchannel.banks[bank]
        if target.open_row is not None:
            target.precharge(self.now_ps)
        self._absorb_mitigations()
        peak = self._counts.get(key, 0)
        if peak > self._peaks.get(key, 0):
            self._peaks[key] = peak

    def run(self, pattern: list[tuple[int, int]] | np.ndarray,
            bank: int | None = None) -> AttackResult:
        """Run a full pattern: (bank, row) pairs, or rows with ``bank``.

        Can be called repeatedly; state (counters, time) persists so
        multi-phase attacks compose.
        """
        if bank is not None:
            pairs = [(bank, int(row)) for row in np.asarray(pattern)]
        else:
            pairs = [(int(b), int(r)) for b, r in pattern]
        for pair in pairs:
            self.hammer_one(*pair)
        return self.result()

    def result(self) -> AttackResult:
        """Current attack statistics."""
        if self._peaks:
            worst_key = max(self._peaks, key=self._peaks.__getitem__)
            worst = self._peaks[worst_key]
        else:
            worst_key, worst = None, 0
        return AttackResult(
            activations=self.activations,
            max_unmitigated=worst,
            max_unmitigated_row=worst_key,
            mitigations=self.subchannel.stats.mitigation_commands,
            rows_mitigated=self.subchannel.stats.mitigated_rows,
            per_row_peaks=dict(self._peaks),
        )
