"""Analysis of DRFM/RLP event traces (the ``repro trace`` subcommand).

Input is a JSONL file of journal records — either a full run journal
(``--journal``) or a pure event trace (``--trace``, written by
:meth:`repro.obs.trace.EventTrace.write_jsonl`).  Only two record kinds
matter here:

* ``mitigation`` — one executed mitigation command: realised RLP,
  blocked banks, the command mnemonic, and the valid-DAR count at issue
  time (``dars``);
* ``sample`` — timeline ticks, whose ``rmaq_hits``/``rmaq_skips``
  interval deltas attribute RMAQ behaviour to the run in flight
  (``run_start`` records carry the policy).

The per-policy reduction deliberately reuses
:class:`repro.analysis.rlp.RLPStats` — the exact aggregate the paper's
Table 5 uses and ``tests/test_obs_trace.py`` cross-checks against
:func:`repro.analysis.rlp.summarize` over the sub-channel's raw
:class:`~repro.dram.subchannel.MitigationEvent` log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.charts import bar_chart
from repro.analysis.rlp import RLPStats
from repro.obs.metrics import RLP_BUCKETS


@dataclass
class TraceSummary:
    """Per-policy reduction of a mitigation event trace."""

    policy: str
    events: int = 0
    rows_mitigated: int = 0
    max_rlp: int = 0
    wasted_bank_stalls: int = 0
    #: Per-command counts (``DRFMsb``/``DRFMab``/``NRR`` mnemonics).
    commands: dict = field(default_factory=dict)
    #: RLP histogram over :data:`~repro.obs.metrics.RLP_BUCKETS`
    #: (inclusive upper bounds) plus an overflow bucket.
    rlp_buckets: list = field(
        default_factory=lambda: [0] * (len(RLP_BUCKETS) + 1))
    #: Valid-DAR occupancy at issue, summed over events carrying it.
    dars_total: int = 0
    dars_events: int = 0
    #: RMAQ interval deltas attributed from surrounding sample records.
    rmaq_hits: int = 0
    rmaq_skips: int = 0

    @property
    def stats(self) -> RLPStats:
        """The trace reduced to the aggregate ``analysis/rlp`` uses."""
        return RLPStats(commands=self.events,
                        rows_mitigated=self.rows_mitigated,
                        max_rlp=self.max_rlp,
                        wasted_bank_stalls=self.wasted_bank_stalls)

    @property
    def mean_rlp(self) -> float:
        return self.stats.average

    @property
    def mean_dars(self) -> float:
        """Mean valid-DAR count at issue (0.0 without ``dars`` fields)."""
        return self.dars_total / self.dars_events if self.dars_events \
            else 0.0

    def _observe(self, record: dict) -> None:
        rlp = record.get("rlp", 0)
        self.events += 1
        self.rows_mitigated += rlp
        self.max_rlp = max(self.max_rlp, rlp)
        self.wasted_bank_stalls += max(0, record.get("blocked", 0) - rlp)
        command = record.get("cmd", "?")
        self.commands[command] = self.commands.get(command, 0) + 1
        index = 0
        while index < len(RLP_BUCKETS) and rlp > RLP_BUCKETS[index]:
            index += 1
        self.rlp_buckets[index] += 1
        dars = record.get("dars")
        if dars is not None:
            self.dars_total += dars
            self.dars_events += 1


def analyze_trace(records) -> dict[str, TraceSummary]:
    """Reduce journal/trace records into per-policy summaries.

    ``sample`` records have no policy field of their own; they are
    attributed to the most recent ``run_start``'s policy, which is how
    the journal interleaves them.  In a bare event trace (mitigation
    records only) the RMAQ counters simply stay zero.
    """
    summaries: dict[str, TraceSummary] = {}
    current_policy: str | None = None

    def summary(policy: str) -> TraceSummary:
        entry = summaries.get(policy)
        if entry is None:
            entry = TraceSummary(policy=policy)
            summaries[policy] = entry
        return entry

    for record in records:
        kind = record.get("kind")
        if kind == "run_start":
            current_policy = record.get("policy")
        elif kind == "mitigation":
            summary(record.get("policy", "?"))._observe(record)
        elif kind == "sample" and current_policy is not None:
            entry = summary(current_policy)
            entry.rmaq_hits += record.get("rmaq_hits", 0)
            entry.rmaq_skips += record.get("rmaq_skips", 0)
    return {policy: summaries[policy] for policy in sorted(summaries)}


def render_summary(summary: TraceSummary, width: int = 40) -> str:
    """Human-readable block for one policy's trace summary."""
    stats = summary.stats
    lines = [f"== policy: {summary.policy} =="]
    commands = "  ".join(f"{name}={count}" for name, count
                         in sorted(summary.commands.items()))
    lines.append(f"mitigation commands: {summary.events}  ({commands})")
    lines.append(f"rlp: mean={stats.average:.3f} max={stats.max_rlp} "
                 f"rows={stats.rows_mitigated} "
                 f"efficiency={stats.efficiency:.3f}")
    labels = [f"rlp<={bound}" for bound in RLP_BUCKETS] + ["overflow"]
    items = [(label, float(count)) for label, count
             in zip(labels, summary.rlp_buckets)]
    lines.append(bar_chart(items, width=width, unit=""))
    if summary.dars_events:
        lines.append(f"DAR occupancy at issue: mean "
                     f"{summary.mean_dars:.2f} valid DARs "
                     f"({summary.dars_events} events)")
    rmaq_total = summary.rmaq_hits + summary.rmaq_skips
    if rmaq_total:
        skip_rate = summary.rmaq_skips / rmaq_total
        lines.append(f"RMAQ: hits={summary.rmaq_hits} "
                     f"skips={summary.rmaq_skips} "
                     f"(skip rate {skip_rate:.1%})")
    return "\n".join(lines)


def render_trace(summaries: dict[str, TraceSummary],
                 width: int = 40) -> str:
    """Render every policy's summary, mitigating policies only."""
    blocks = [render_summary(summary, width=width)
              for summary in summaries.values() if summary.events]
    return "\n\n".join(blocks)
