"""Terminal bar charts for experiment results.

The benchmark harness prints tables; these helpers add quick visual
bars for the figure-style experiments (`dream-repro run --chart`), with
no plotting dependencies — pure text, safe for logs.
"""

from __future__ import annotations

#: Width of the bar area in characters.
DEFAULT_WIDTH = 48

#: The glyph used for bars (ASCII-safe).
BAR_CHAR = "#"


def bar_chart(items: list[tuple[str, float]], width: int = DEFAULT_WIDTH,
              unit: str = "%") -> str:
    """Render labelled values as a horizontal bar chart.

    Bars scale to the largest value; zero/negative values render as
    empty bars with their numeric value still shown.
    """
    if not items:
        raise ValueError("at least one item is required")
    if width < 4:
        raise ValueError("width must be at least 4")
    label_width = max(len(label) for label, _ in items)
    peak = max(max(value for _, value in items), 0.0)
    lines = []
    for label, value in items:
        if peak > 0 and value > 0:
            filled = max(1, round(value / peak * width))
        else:
            filled = 0
        bar = BAR_CHAR * filled
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| "
                     f"{value:.2f}{unit}")
    return "\n".join(lines)


def chart_average_row(rows: list[dict], key_column: str,
                      average_key: str = "AVERAGE",
                      width: int = DEFAULT_WIDTH) -> str | None:
    """Chart the AVERAGE row of a sweep-style experiment result.

    Returns ``None`` when the experiment has no AVERAGE row or no
    numeric columns (analytic tables chart nothing).
    """
    average = None
    for row in rows:
        if row.get(key_column) == average_key:
            average = row
            break
    if average is None:
        return None
    items = [(str(name), float(value))
             for name, value in average.items()
             if name != key_column and isinstance(value, (int, float))]
    if not items:
        return None
    return bar_chart(items, width=width)


def chart_result(rows: list[dict],
                 width: int = DEFAULT_WIDTH) -> str | None:
    """Best-effort chart for any experiment result's rows.

    Sweep results chart their AVERAGE row; other shapes chart the first
    numeric column across rows keyed by the first string column.
    """
    if not rows:
        return None
    for key_column in ("workload", "mix"):
        if key_column in rows[0]:
            return chart_average_row(rows, key_column, width=width)
    label_key = None
    value_key = None
    for key, value in rows[0].items():
        if label_key is None and isinstance(value, str):
            label_key = key
        if value_key is None and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            value_key = key
    if label_key is None or value_key is None:
        return None
    items = [(str(row[label_key]), float(row[value_key]))
             for row in rows
             if isinstance(row.get(value_key), (int, float))]
    if not items:
        return None
    return bar_chart(items, width=width, unit="")
