"""Measurement and post-processing: RLP, slowdown, selection, DoS,
attacks, span traces and the benchmark-regression gate."""

from repro.analysis.dos import DoSAnalysis, analyze_dos, mitigation_block_ps
from repro.analysis.failure_rate import (TailComparison,
                                         coupled_tail_comparison,
                                         delay_inflation,
                                         dream_r_tail_comparison,
                                         mint_exposure_bound)
from repro.analysis.harness import AttackHarness, AttackResult
from repro.analysis.regression import (CheckReport, Regression,
                                       append_history, collect_metrics,
                                       run_check)
from repro.analysis.rlp import RLPStats, sampling_delays_ps, summarize
from repro.analysis.selection import (DistanceStats, distance_statistics,
                                      mint_selection_positions,
                                      monte_carlo_selections,
                                      para_selection_positions)
from repro.analysis.slowdown import SlowdownSeries, format_table
from repro.analysis.spans import (CriticalPath, SpansDoc,
                                  WorkerBreakdown, chrome_trace,
                                  critical_path, load_spans,
                                  worker_breakdown)

__all__ = [
    "AttackHarness",
    "AttackResult",
    "CheckReport",
    "CriticalPath",
    "DistanceStats",
    "DoSAnalysis",
    "RLPStats",
    "Regression",
    "SlowdownSeries",
    "SpansDoc",
    "TailComparison",
    "WorkerBreakdown",
    "analyze_dos",
    "append_history",
    "chrome_trace",
    "collect_metrics",
    "coupled_tail_comparison",
    "critical_path",
    "delay_inflation",
    "distance_statistics",
    "dream_r_tail_comparison",
    "format_table",
    "load_spans",
    "mint_selection_positions",
    "mint_exposure_bound",
    "mitigation_block_ps",
    "monte_carlo_selections",
    "para_selection_positions",
    "run_check",
    "sampling_delays_ps",
    "summarize",
    "worker_breakdown",
]
