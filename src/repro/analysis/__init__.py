"""Measurement and post-processing: RLP, slowdown, selection, DoS, attacks."""

from repro.analysis.dos import DoSAnalysis, analyze_dos, mitigation_block_ps
from repro.analysis.failure_rate import (TailComparison,
                                         coupled_tail_comparison,
                                         delay_inflation,
                                         dream_r_tail_comparison,
                                         mint_exposure_bound)
from repro.analysis.harness import AttackHarness, AttackResult
from repro.analysis.rlp import RLPStats, sampling_delays_ps, summarize
from repro.analysis.selection import (DistanceStats, distance_statistics,
                                      mint_selection_positions,
                                      monte_carlo_selections,
                                      para_selection_positions)
from repro.analysis.slowdown import SlowdownSeries, format_table

__all__ = [
    "AttackHarness",
    "AttackResult",
    "DistanceStats",
    "DoSAnalysis",
    "RLPStats",
    "TailComparison",
    "SlowdownSeries",
    "analyze_dos",
    "coupled_tail_comparison",
    "delay_inflation",
    "distance_statistics",
    "dream_r_tail_comparison",
    "format_table",
    "mint_selection_positions",
    "mint_exposure_bound",
    "mitigation_block_ps",
    "monte_carlo_selections",
    "para_selection_positions",
    "sampling_delays_ps",
    "summarize",
]
