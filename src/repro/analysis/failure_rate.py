"""Monte-Carlo failure-rate estimation for the randomized trackers.

Appendix A builds PARA's parameters on the distribution of *epochs* (the
activation gap between consecutive mitigations of a hammered row):

* coupled PARA — epochs are geometric(p); ``P(epoch >= T) ~ e^(-pT)``;
* DREAM-R PARA — the exposure is the *sum of two* geometric intervals
  (mitigation->sampling + sampling->DRFM), Gamma(2, p)-tailed:
  ``P >= T) ~ (1 + pT) e^(-pT)`` — the paper's Equation 1.

This module samples those epoch distributions empirically (driving the
actual sampler logic, not the closed forms) and compares the measured
exceedance probabilities against the analytic models — the numerical
backbone of the Table 4 parameter revision.  MINT's bounded exposure
(no row can exceed ~2 windows unmitigated under continuous hammering)
is validated the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.security import gamma_tail


@dataclass(frozen=True)
class TailComparison:
    """Empirical vs analytic exceedance probability at one threshold."""

    threshold: int
    empirical: float
    analytic: float
    samples: int

    @property
    def ratio(self) -> float:
        """Empirical over analytic (1.0 = perfect model)."""
        if self.analytic == 0:
            return math.inf
        return self.empirical / self.analytic


def sample_coupled_epochs(probability: float, samples: int,
                          rng: np.random.Generator) -> np.ndarray:
    """Epoch lengths of coupled PARA under continuous hammering.

    Each epoch ends when the hammered row is selected (and immediately
    mitigated): geometric with parameter ``probability``.
    """
    if not 0.0 < probability < 1.0:
        raise ValueError("probability must be in (0, 1)")
    return rng.geometric(probability, size=samples)


def sample_dream_r_epochs(probability: float, samples: int,
                          rng: np.random.Generator) -> np.ndarray:
    """Unmitigated exposure of DREAM-R PARA without ATM.

    The hammered row is sampled after X activations and the DRFM goes
    out after another Y (when the bank's next selection arrives): the
    exposure is X + Y with X, Y independent geometric(probability) —
    the paper's Gamma(2, p) analysis.
    """
    first = rng.geometric(probability, size=samples)
    second = rng.geometric(probability, size=samples)
    return first + second


def compare_tail(epochs: np.ndarray, threshold: int,
                 analytic: float) -> TailComparison:
    """Empirical exceedance of ``threshold`` vs an analytic value."""
    empirical = float(np.mean(epochs >= threshold))
    return TailComparison(threshold=threshold, empirical=empirical,
                          analytic=analytic, samples=len(epochs))


def coupled_tail_comparison(probability: float, threshold: int,
                            samples: int = 200_000,
                            seed: int = 5) -> TailComparison:
    """Coupled PARA: empirical vs exponential tail ``e^(-pT)``."""
    rng = np.random.default_rng(seed)
    epochs = sample_coupled_epochs(probability, samples, rng)
    return compare_tail(epochs, threshold,
                        math.exp(-probability * threshold))


def dream_r_tail_comparison(probability: float, threshold: int,
                            samples: int = 200_000,
                            seed: int = 5) -> TailComparison:
    """DREAM-R PARA: empirical vs the Gamma tail of Equation 1."""
    rng = np.random.default_rng(seed)
    epochs = sample_dream_r_epochs(probability, samples, rng)
    return compare_tail(epochs, threshold,
                        gamma_tail(probability, threshold))


def delay_inflation(probability: float, threshold: int,
                    samples: int = 200_000, seed: int = 5) -> float:
    """Measured failure-rate inflation of delayed DRFM over coupled.

    The paper quotes ~20x at the design point ``pT = 20``; this measures
    it empirically as the ratio of the two exceedance probabilities
    (evaluated at a threshold low enough to be sampled reliably).
    """
    coupled = coupled_tail_comparison(probability, threshold, samples,
                                      seed)
    dream = dream_r_tail_comparison(probability, threshold, samples, seed)
    if coupled.empirical == 0:
        raise ValueError("threshold too high to sample the coupled tail; "
                         "reduce it or raise the sample count")
    return dream.empirical / coupled.empirical


def mint_exposure_bound(window: int, hammer_length: int,
                        seed: int = 5) -> int:
    """Largest unmitigated streak of a continuously hammered row (MINT).

    Simulates MINT's per-window selection directly: the hammered row is
    selected in every window (it occupies every slot), and under the
    decoupled DREAM-R flow its mitigation lands by the end of the
    following window, so the streak never exceeds ~2 windows.
    """
    rng = np.random.default_rng(seed)
    windows = hammer_length // window
    sans = rng.integers(window, size=windows)
    # Selection happens at slot SAN of each window; mitigation at the
    # end of the following window.  The longest unmitigated stretch
    # spans from one mitigation to the next.
    mitigation_points = [(k + 2) * window for k in range(windows - 2)]
    longest = 0
    previous = 0
    for point in mitigation_points:
        longest = max(longest, point - previous)
        previous = point
    del sans  # selection positions do not move the window-end mitigation
    return longest
