"""Slowdown aggregation over workload sweeps.

Experiments produce one :class:`~repro.sim.results.ComparisonResult` per
(workload, design) pair; this module reduces them into the per-design
series the paper plots (per-workload bars plus the arithmetic-mean bar
the text quotes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.results import ComparisonResult


@dataclass
class SlowdownSeries:
    """One design's slowdown across a set of workloads."""

    design: str
    slowdowns: dict[str, float] = field(default_factory=dict)
    rlps: dict[str, float] = field(default_factory=dict)

    def add(self, comparison: ComparisonResult) -> None:
        """Record one workload's comparison."""
        workload = comparison.mitigated.workload
        self.slowdowns[workload] = comparison.slowdown_percent
        self.rlps[workload] = comparison.average_rlp

    @property
    def average_slowdown(self) -> float:
        """Arithmetic-mean slowdown (the paper's quoted averages)."""
        if not self.slowdowns:
            raise ValueError("series is empty")
        return sum(self.slowdowns.values()) / len(self.slowdowns)

    @property
    def average_rlp(self) -> float:
        """Mean realised RLP across workloads with mitigations."""
        values = [value for value in self.rlps.values() if value > 0]
        if not values:
            return 0.0
        return sum(values) / len(values)

    @property
    def worst_case(self) -> tuple[str, float]:
        """The workload with the highest slowdown."""
        if not self.slowdowns:
            raise ValueError("series is empty")
        workload = max(self.slowdowns, key=self.slowdowns.__getitem__)
        return workload, self.slowdowns[workload]

    def row(self, workloads: list[str]) -> list[float]:
        """Slowdowns in a fixed workload order (for table rendering)."""
        return [self.slowdowns[name] for name in workloads]


def format_table(series_list: list[SlowdownSeries],
                 workloads: list[str] | None = None) -> str:
    """Render a figure-style table: workloads as rows, designs as columns."""
    if not series_list:
        raise ValueError("at least one series is required")
    if workloads is None:
        workloads = sorted(series_list[0].slowdowns)
    header = ["workload"] + [series.design for series in series_list]
    widths = [max(len(header[0]), max(len(w) for w in workloads))]
    widths += [max(10, len(name)) for name in header[1:]]
    lines = ["  ".join(name.ljust(width)
                       for name, width in zip(header, widths))]
    for workload in workloads:
        cells = [workload.ljust(widths[0])]
        for series, width in zip(series_list, widths[1:]):
            cells.append(f"{series.slowdowns[workload]:.2f}%".rjust(width))
        lines.append("  ".join(cells))
    cells = ["AVERAGE".ljust(widths[0])]
    for series, width in zip(series_list, widths[1:]):
        cells.append(f"{series.average_slowdown:.2f}%".rjust(width))
    lines.append("  ".join(cells))
    return "\n".join(lines)
