"""Analysis of sweep span traces (the ``repro spans`` subcommand).

Input is the JSON document written by ``--spans FILE``
(:meth:`repro.obs.Telemetry.write_spans`): a schema-versioned span
forest plus the run's profiling snapshot.  Three reductions live here:

* **critical path** — the longest dependency chain through the tree.
  Sibling spans are sequential by construction (the tracer lays grafted
  cell subtrees out back to back), so the chain total equals the sweep's
  serialized work: it matches the profiler's phase wall time for a
  serial sweep and measures *total work* (not elapsed wall time) for a
  parallel one.
* **worker breakdown** — per-process attribution of attempt time into
  engine time, trace building and dispatch overhead (pickling, queueing,
  snapshot capture), the figure the ROADMAP's distributed-execution work
  needs to defend DREAM's low-overhead claim end to end.
* **Chrome trace export** — ``trace_event``-format JSON loadable in
  Perfetto (or ``chrome://tracing``): one process track per worker pid
  plus a dispatcher track for sweep/cell merge spans.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.spans import (KIND_ATTEMPT, KIND_ENGINE,
                             SPANS_SCHEMA_VERSION, Span, span_from_doc)

#: Synthetic pid of the dispatcher track (sweep + merge spans that run
#: in the parent but outside any worker attempt).
DISPATCHER_PID = 0


@dataclass
class SpansDoc:
    """Decoded ``--spans`` file: the forest plus profiling context."""

    schema: int
    roots: list[Span]
    profiling: dict = field(default_factory=dict)

    def span_count(self) -> int:
        return sum(1 for root in self.roots for _ in root.walk())

    def cell_count(self) -> int:
        return sum(1 for root in self.roots for span in root.walk()
                   if span.kind == "cell")

    def phase_seconds(self) -> float:
        """Total phase wall time from the embedded profiling snapshot."""
        phases = self.profiling.get("phases", {})
        return sum(entry.get("seconds", 0.0) for entry in phases.values()
                   if isinstance(entry, dict))


class SpansFormatError(ValueError):
    """The spans file is unreadable, malformed, or from the future."""


def load_spans(path: str) -> SpansDoc:
    """Decode a ``--spans`` output file.

    Raises :class:`SpansFormatError` with a self-explanatory message on
    any problem; a schema *newer* than this build gets its own message
    so the fix ("upgrade repro") is obvious, rather than a misleading
    "malformed file".
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise SpansFormatError(f"cannot read spans file: {exc}") from exc
    except ValueError as exc:
        raise SpansFormatError(
            f"spans file is not valid JSON: {exc}") from exc
    return decode_spans(doc, source="--spans FILE")


def decode_spans(doc, source: str = "a spans producer") -> SpansDoc:
    """Decode an already-parsed spans document.

    The shared back half of :func:`load_spans` and the remote
    ``/v1/jobs/<id>/spans`` path — both a local artifact file and the
    service endpoint serve the same schema-versioned document, so both
    validate and decode identically here.  ``source`` names the
    expected producer in the missing-section message.
    """
    if not isinstance(doc, dict) or "spans" not in doc:
        raise SpansFormatError(
            f"not a spans document (missing the 'spans' section); "
            f"expected output of {source}")
    schema = doc.get("schema")
    if not isinstance(schema, int):
        raise SpansFormatError("spans document has no integer 'schema'")
    if schema > SPANS_SCHEMA_VERSION:
        raise SpansFormatError(
            f"spans schema v{schema} is newer than the supported "
            f"v{SPANS_SCHEMA_VERSION}; upgrade repro to read this file")
    span_docs = doc.get("spans")
    if not isinstance(span_docs, list):
        raise SpansFormatError("'spans' section must be a list")
    roots = []
    for index, span_doc in enumerate(span_docs):
        span = span_from_doc(span_doc)
        if span is None:
            raise SpansFormatError(f"malformed span document at "
                                   f"index {index}")
        roots.append(span)
    profiling = doc.get("profiling")
    return SpansDoc(schema=schema, roots=roots,
                    profiling=profiling if isinstance(profiling, dict)
                    else {})


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------
@dataclass
class CriticalPath:
    """The sweep's longest dependency chain."""

    total_s: float
    #: Dominant chain from the root down (one span per depth level).
    steps: list[Span] = field(default_factory=list)


def _chain_total(spans: list[Span]) -> float:
    """Max total duration over a non-overlapping chain of siblings.

    Tracer-produced siblings are already sequential, so this is simply
    their sum; the DP keeps the figure honest for overlapping input
    (e.g. hand-edited or foreign trace files).
    """
    closed = sorted((span for span in spans if span.t1_s is not None),
                    key=lambda span: span.t1_s)
    best: list[float] = []
    for index, span in enumerate(closed):
        prior = max((best[j] for j in range(index)
                     if closed[j].t1_s <= span.t0_s + 1e-9),
                    default=0.0)
        best.append(prior + span.duration_s)
    return max(best, default=0.0)


def critical_path(roots: list[Span]) -> CriticalPath:
    """Total serialized work plus the dominant root-to-leaf chain."""
    total = _chain_total(roots)
    steps: list[Span] = []
    level = roots
    while level:
        closed = [span for span in level if span.t1_s is not None]
        if not closed:
            break
        heaviest = max(closed, key=lambda span: span.duration_s)
        steps.append(heaviest)
        level = heaviest.children
    return CriticalPath(total_s=total, steps=steps)


# ----------------------------------------------------------------------
# Worker breakdown
# ----------------------------------------------------------------------
@dataclass
class WorkerBreakdown:
    """Where one worker process spent its attempt time."""

    pid: int
    cells: int = 0
    busy_s: float = 0.0
    engine_s: float = 0.0
    build_s: float = 0.0

    @property
    def overhead_s(self) -> float:
        """Dispatch overhead: busy time not in the engine or builder
        (policy wiring, snapshot capture, result assembly)."""
        return max(0.0, self.busy_s - self.engine_s - self.build_s)

    @property
    def overhead_pct(self) -> float:
        if self.busy_s <= 0:
            return 0.0
        return 100.0 * self.overhead_s / self.busy_s


def worker_breakdown(roots: list[Span]) -> list[WorkerBreakdown]:
    """Per-pid attempt-time attribution, ordered by pid.

    Attempt spans carry the recording worker's pid; their subtree splits
    into engine time (``engine:event_loop`` spans), trace building
    (``build_traces`` phases) and the dispatch overhead in between.
    Serial sweeps show a single pid — the parent process.
    """
    workers: dict[int, WorkerBreakdown] = {}
    for root in roots:
        for span in root.walk():
            if span.kind != KIND_ATTEMPT:
                continue
            pid = int(span.meta.get("pid", -1))
            worker = workers.get(pid)
            if worker is None:
                worker = workers[pid] = WorkerBreakdown(pid=pid)
            worker.cells += 1
            worker.busy_s += span.duration_s
            for inner in span.walk():
                if inner.kind == KIND_ENGINE and \
                        inner.name == "engine:event_loop":
                    worker.engine_s += inner.duration_s
                elif inner.name == "build_traces":
                    worker.build_s += inner.duration_s
    return [workers[pid] for pid in sorted(workers)]


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def chrome_trace(roots: list[Span]) -> dict:
    """The forest as Chrome ``trace_event`` JSON (Perfetto-loadable).

    One process track per worker pid (attempt subtrees are drawn in the
    process that executed them) plus a dispatcher track for everything
    parent-side.  Complete ("X") events carry start/duration in µs and
    the span meta as ``args``; span events become instant ("i") events.
    """
    events: list[dict] = []
    pids: dict[int, str] = {DISPATCHER_PID: "sweep dispatcher"}
    tid_counter = [0]

    def emit(span: Span, pid: int, tid: int) -> None:
        if span.kind == KIND_ATTEMPT:
            pid = int(span.meta.get("pid", pid))
            pids.setdefault(pid, f"worker {pid}")
        if span.t1_s is not None:
            events.append({
                "name": span.name, "cat": span.kind, "ph": "X",
                "ts": round(span.t0_s * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": pid, "tid": tid, "args": dict(span.meta),
            })
        for record in span.events:
            event = {
                "name": record.get("name", "?"), "cat": "event",
                "ph": "i", "s": "t",
                "ts": round(record.get("t_s", 0.0) * 1e6, 3),
                "pid": pid, "tid": tid,
            }
            meta = record.get("meta")
            if meta:
                event["args"] = dict(meta)
            events.append(event)
        for child in span.children:
            child_tid = tid
            if child.kind == "cell":
                tid_counter[0] += 1
                child_tid = tid_counter[0]
            emit(child, pid, child_tid)

    for root in roots:
        emit(root, DISPATCHER_PID, 0)
    metadata = [{"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                 "args": {"name": name}}
                for pid, name in sorted(pids.items())]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_spans(doc: SpansDoc, top: int = 10) -> str:
    """Human-readable report: shape, critical path, worker breakdown."""
    path = critical_path(doc.roots)
    lines = [f"spans: {doc.span_count()} total, "
             f"{doc.cell_count()} cells, schema v{doc.schema}"]
    phase_s = doc.phase_seconds()
    lines.append(f"critical path: {path.total_s:.3f}s serialized work"
                 + (f" (profiled phases: {phase_s:.3f}s)"
                    if phase_s else ""))
    for depth, span in enumerate(path.steps[:top]):
        lines.append(f"  {'  ' * depth}{span.name} "
                     f"[{span.kind}] {span.duration_s:.3f}s")
    workers = worker_breakdown(doc.roots)
    if workers:
        lines.append("per-worker breakdown "
                     "(busy = engine + build + dispatch overhead):")
        for worker in workers:
            lines.append(
                f"  pid {worker.pid}: cells={worker.cells} "
                f"busy={worker.busy_s:.3f}s "
                f"engine={worker.engine_s:.3f}s "
                f"build={worker.build_s:.3f}s "
                f"overhead={worker.overhead_s:.3f}s "
                f"({worker.overhead_pct:.1f}%)")
    return "\n".join(lines)
