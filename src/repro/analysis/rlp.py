"""Rowhammer-mitigation Level Parallelism (RLP) accounting.

RLP is the number of rows one mitigation command actually mitigates: NRR
is always 1; DRFMsb can reach 8 and DRFMab 32, but only for banks whose
DAR holds a row when the command executes.  The sub-channel records every
mitigation event; this module reduces those events into the statistics of
the paper's Table 5 and the per-delay diagnostics behind Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.subchannel import MitigationEvent


@dataclass(frozen=True)
class RLPStats:
    """Summary of realised RLP over a set of mitigation events."""

    commands: int
    rows_mitigated: int
    max_rlp: int
    wasted_bank_stalls: int

    @property
    def average(self) -> float:
        """Mean rows mitigated per command (Table 5's metric)."""
        return self.rows_mitigated / self.commands if self.commands else 0.0

    @property
    def efficiency(self) -> float:
        """Fraction of stalled banks that actually performed mitigation."""
        total = self.rows_mitigated + self.wasted_bank_stalls
        return self.rows_mitigated / total if total else 0.0


def summarize(events: list[MitigationEvent]) -> RLPStats:
    """Reduce a mitigation log into :class:`RLPStats`."""
    commands = len(events)
    rows = sum(event.rlp for event in events)
    max_rlp = max((event.rlp for event in events), default=0)
    wasted = sum(event.blocked_banks - event.rlp for event in events)
    return RLPStats(commands=commands, rows_mitigated=rows, max_rlp=max_rlp,
                    wasted_bank_stalls=wasted)


def sampling_delays_ps(events: list[MitigationEvent],
                       sampled_at: dict[tuple[int, int], int] | None = None
                       ) -> list[int]:
    """Delays between DAR sampling and mitigation, where recorded.

    When the sub-channel log is paired with externally recorded sampling
    times (``(bank, row) -> time``), returns the per-row delay that
    DREAM-R's delayed DRFM introduced.
    """
    if sampled_at is None:
        return []
    delays = []
    for event in events:
        for bank, row in event.mitigated_rows:
            sample_time = sampled_at.get((bank, row))
            if sample_time is not None and event.time_ps >= sample_time:
                delays.append(event.time_ps - sample_time)
    return delays
