"""Benchmark history and the regression gate (``repro bench``).

PR 5 froze engine-throughput numbers in
``benchmarks/results/BENCH_engine.json`` and the telemetry-overhead
budget in ``BENCH_obs.json``, but nothing watched them — a 20%
throughput regression would merge silently.  This module closes the
loop:

* :func:`collect_metrics` flattens the snapshot files into a flat
  ``name -> {best, median}`` map (``engine.none``, ``engine.mint``,
  ``obs.on``, ``service.speedup`` …) using the best-of and median-of
  figures the benchmarks already record;
* :func:`append_history` appends a timestamped entry to
  ``BENCH_history.jsonl`` (``repro bench record``), building the
  baseline the gate ratchets against;
* :func:`run_check` (``repro bench check``, the CI gate) compares the
  current snapshots against the element-wise **maximum** across history
  — the best the code has ever measured — and flags a metric only when
  *both* its best-of and median-of figures drop beyond the threshold.

The both-figures rule is the noise filter: best-of-7 absorbs scheduler
jitter and median-of-7 absorbs a single lucky round, so requiring both
to collapse ≥ ``threshold_pct`` (default 20%) keeps the gate quiet on
noisy CI machines while still catching real slowdowns.  The check reads
only committed files — it never re-runs benchmarks — so the CI job is
deterministic.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

#: History-entry schema; bump on breaking changes.
HISTORY_SCHEMA_VERSION = 1

#: A metric regresses when best AND median both drop beyond this.
DEFAULT_THRESHOLD_PCT = 20.0

#: Snapshot files the observatory watches, relative to the results dir.
ENGINE_SNAPSHOT = "BENCH_engine.json"
OBS_SNAPSHOT = "BENCH_obs.json"
SERVICE_SNAPSHOT = "BENCH_service.json"
HISTORY_FILE = "BENCH_history.jsonl"


@dataclass
class Regression:
    """One metric whose current figures fell below baseline."""

    metric: str
    baseline_best: float
    current_best: float
    baseline_median: float
    current_median: float

    @property
    def drop_best_pct(self) -> float:
        return _drop_pct(self.baseline_best, self.current_best)

    @property
    def drop_median_pct(self) -> float:
        return _drop_pct(self.baseline_median, self.current_median)

    def describe(self) -> str:
        return (f"{self.metric}: best {self.baseline_best:,.0f} -> "
                f"{self.current_best:,.0f} "
                f"(-{self.drop_best_pct:.1f}%), median "
                f"{self.baseline_median:,.0f} -> "
                f"{self.current_median:,.0f} "
                f"(-{self.drop_median_pct:.1f}%)")


@dataclass
class CheckReport:
    """Outcome of one ``repro bench check`` run."""

    metrics: dict = field(default_factory=dict)
    baseline: dict = field(default_factory=dict)
    regressions: list = field(default_factory=list)
    history_entries: int = 0

    @property
    def ok(self) -> bool:
        return not self.regressions

    def describe(self) -> str:
        lines = [f"bench check: {len(self.metrics)} metrics vs "
                 f"baseline of {self.history_entries} history entries"]
        for name in sorted(self.metrics):
            figures = self.metrics[name]
            base = self.baseline.get(name)
            if base is None:
                lines.append(f"  {name}: {figures['best']:,.0f} best "
                             f"(no baseline yet)")
                continue
            lines.append(
                f"  {name}: best {figures['best']:,.0f} vs "
                f"{base['best']:,.0f} "
                f"({-_drop_pct(base['best'], figures['best']):+.1f}%), "
                f"median {figures['median']:,.0f} vs "
                f"{base['median']:,.0f} "
                f"({-_drop_pct(base['median'], figures['median']):+.1f}%)")
        if self.regressions:
            lines.append("REGRESSIONS:")
            lines.extend(f"  {item.describe()}"
                         for item in self.regressions)
        else:
            lines.append("no regressions")
        return "\n".join(lines)


def _drop_pct(baseline: float, current: float) -> float:
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - current) / baseline


def _figures(config: dict, key: str = "events_per_sec") -> dict | None:
    best = config.get(key)
    median = config.get(f"median_{key}", best)
    if not isinstance(best, (int, float)):
        return None
    if not isinstance(median, (int, float)):
        median = best
    return {"best": float(best), "median": float(median)}


def collect_metrics(results_dir: str) -> dict:
    """Flatten the snapshot files into ``name -> {best, median}``.

    ``BENCH_engine.json`` contributes its **current** configs (the
    frozen pre-optimization ``baseline`` section is historical context,
    not a target); ``BENCH_obs.json`` contributes every config;
    ``BENCH_service.json`` contributes per-arm scheduler throughput
    (``service.serial``, ``service.concurrent`` in jobs/sec) plus the
    derived ``service.speedup`` ratio (best/median speedup of the
    concurrent arm over serial — the figure the concurrency PR's >= 3x
    acceptance bar ratchets on).  A missing snapshot file contributes
    nothing — the gate watches whatever is committed.
    """
    metrics: dict = {}
    engine = _load_json(os.path.join(results_dir, ENGINE_SNAPSHOT))
    if isinstance(engine, dict):
        configs = engine.get("current", {}).get("configs", {})
        if isinstance(configs, dict):
            for name, config in sorted(configs.items()):
                figures = _figures(config) \
                    if isinstance(config, dict) else None
                if figures is not None:
                    metrics[f"engine.{name}"] = figures
    obs = _load_json(os.path.join(results_dir, OBS_SNAPSHOT))
    if isinstance(obs, dict):
        configs = obs.get("configs", {})
        if isinstance(configs, dict):
            for name, config in sorted(configs.items()):
                figures = _figures(config) \
                    if isinstance(config, dict) else None
                if figures is not None:
                    metrics[f"obs.{name}"] = figures
    service = _load_json(os.path.join(results_dir, SERVICE_SNAPSHOT))
    if isinstance(service, dict):
        configs = service.get("configs", {})
        if isinstance(configs, dict):
            for name, config in sorted(configs.items()):
                figures = _figures(config, key="jobs_per_sec") \
                    if isinstance(config, dict) else None
                if figures is not None:
                    metrics[f"service.{name}"] = figures
        figures = _figures(service, key="speedup")
        if figures is not None:
            metrics["service.speedup"] = figures
    return metrics


def _load_json(path: str):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


# ----------------------------------------------------------------------
# History
# ----------------------------------------------------------------------
def load_history(path: str) -> list[dict]:
    """Decode the history JSONL, tolerating a torn final line.

    Entries with the wrong schema or shape are skipped, not fatal — the
    history is an append-only log that must survive partial writes
    (same stance as the sweep checkpoint).
    """
    entries: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        return entries
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if not isinstance(entry, dict):
            continue
        if entry.get("schema") != HISTORY_SCHEMA_VERSION:
            continue
        if not isinstance(entry.get("metrics"), dict):
            continue
        entries.append(entry)
    return entries


def append_history(path: str, metrics: dict, timestamp: float,
                   note: str = "") -> dict:
    """Append one timestamped entry to the history log; returns it."""
    entry = {
        "schema": HISTORY_SCHEMA_VERSION,
        "ts": round(timestamp, 3),
        "note": note,
        "metrics": metrics,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def baseline_from_history(entries: list[dict]) -> dict:
    """Element-wise best figures across all history entries (ratchet).

    Comparing against the best ever measured means an improvement only
    becomes binding once it is *recorded* — a PR that speeds things up
    does not instantly tighten the gate on everyone else.
    """
    baseline: dict = {}
    for entry in entries:
        for name, figures in entry["metrics"].items():
            if not isinstance(figures, dict):
                continue
            best = figures.get("best")
            median = figures.get("median")
            if not isinstance(best, (int, float)) \
                    or not isinstance(median, (int, float)):
                continue
            current = baseline.setdefault(
                name, {"best": float(best), "median": float(median)})
            current["best"] = max(current["best"], float(best))
            current["median"] = max(current["median"], float(median))
    return baseline


# ----------------------------------------------------------------------
# The gate
# ----------------------------------------------------------------------
def check_metrics(metrics: dict, baseline: dict,
                  threshold_pct: float = DEFAULT_THRESHOLD_PCT) \
        -> list[Regression]:
    """Regressions among ``metrics`` relative to ``baseline``.

    A metric with no baseline entry (newly added benchmark) never
    regresses; it starts gating once recorded into history.
    """
    regressions: list[Regression] = []
    for name in sorted(metrics):
        base = baseline.get(name)
        if base is None:
            continue
        figures = metrics[name]
        drop_best = _drop_pct(base["best"], figures["best"])
        drop_median = _drop_pct(base["median"], figures["median"])
        if drop_best > threshold_pct and drop_median > threshold_pct:
            regressions.append(Regression(
                metric=name,
                baseline_best=base["best"],
                current_best=figures["best"],
                baseline_median=base["median"],
                current_median=figures["median"]))
    return regressions


def run_check(results_dir: str, history_path: str | None = None,
              threshold_pct: float = DEFAULT_THRESHOLD_PCT) \
        -> CheckReport:
    """The full gate: collect, resolve baseline, compare.

    Raises :class:`FileNotFoundError` when there is nothing to check —
    no snapshot metrics at all, or an empty/missing history (the gate
    cannot pass vacuously; CI should fail loudly on a misconfigured
    path rather than report green).
    """
    if history_path is None:
        history_path = os.path.join(results_dir, HISTORY_FILE)
    metrics = collect_metrics(results_dir)
    if not metrics:
        raise FileNotFoundError(
            f"no benchmark snapshots found under {results_dir!r} "
            f"(expected {ENGINE_SNAPSHOT} and/or {OBS_SNAPSHOT})")
    entries = load_history(history_path)
    if not entries:
        raise FileNotFoundError(
            f"no benchmark history at {history_path!r}; run "
            f"'repro bench record' once to seed the baseline")
    baseline = baseline_from_history(entries)
    regressions = check_metrics(metrics, baseline, threshold_pct)
    return CheckReport(metrics=metrics, baseline=baseline,
                       regressions=regressions,
                       history_entries=len(entries))
