"""Live service dashboard (the ``repro top`` subcommand).

Polls one or more sweep-service instances — ``GET /v1/metrics`` (parsed
with the strict exposition parser, so a malformed document is an error,
not garbage on screen) plus ``GET /v1/jobs`` — and renders a refreshing
per-instance table: jobs by lifecycle state, queue depth, cells/s
(computed from counter deltas between polls), cache hit rate, and RSS.

Terminal handling mirrors ``SweepProgress``: on a TTY the screen is
cleared and redrawn every interval; on a non-TTY (CI, ``| tee``) each
poll appends one plain block, and ``--once`` prints a single snapshot
and exits (exit code 2 when *no* instance answered, so smoke tests can
assert reachability).

Everything side-effectful is injectable (``fetch``, ``clock``,
``sleep``, ``stream``), keeping the dashboard deterministic under test;
the real wiring lives in :func:`repro.cli._cmd_top`.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

from repro.obs.exporter import parse_exposition, sample_value

#: Default seconds between polls.
DEFAULT_INTERVAL_S = 2.0

#: Per-request timeout when polling an instance.
FETCH_TIMEOUT_S = 5.0

#: Job lifecycle states, in display order (mirrors jobs.JOB_STATES).
STATES = ("queued", "running", "done", "failed")

#: ANSI clear-screen + cursor-home used in interactive mode.
CLEAR_SCREEN = "\x1b[2J\x1b[H"


@dataclass
class InstanceSample:
    """One poll of one service instance (or the failure to get one)."""

    url: str
    ok: bool = False
    error: str = ""
    states: dict = field(default_factory=dict)
    queue_depth: int = 0
    worker_up: bool = False
    cells_total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    rss_bytes: int = 0
    jobs: list = field(default_factory=list)

    @property
    def cache_hit_pct(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return 100.0 * self.cache_hits / lookups if lookups else 0.0


def _get(url: str, timeout_s: float) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return response.read()


def fetch_instance(url: str,
                   timeout_s: float = FETCH_TIMEOUT_S) -> InstanceSample:
    """Poll one instance; failures come back as ``ok=False`` samples."""
    base = url.rstrip("/")
    sample = InstanceSample(url=base)
    try:
        samples = parse_exposition(
            _get(f"{base}/v1/metrics", timeout_s).decode("utf-8"))
        jobs = json.loads(_get(f"{base}/v1/jobs", timeout_s))["jobs"]
    except Exception as error:  # noqa: BLE001 — one row per instance
        sample.error = f"{type(error).__name__}: {error}"
        return sample

    def value(name: str, default: float = 0.0, **labels) -> float:
        found = sample_value(samples, name, **labels)
        return default if found is None else found

    sample.ok = True
    sample.states = {state: int(value("repro_jobs_state", state=state))
                     for state in STATES}
    sample.queue_depth = int(value("repro_queue_depth"))
    sample.worker_up = value("repro_scheduler_worker_up") >= 1
    sample.cells_total = int(value("repro_executor_cells_total"))
    sample.cache_hits = int(value("repro_cache_hits_total"))
    sample.cache_misses = int(value("repro_cache_misses_total"))
    sample.rss_bytes = int(value("repro_proc_rss_bytes"))
    sample.jobs = jobs
    return sample


def format_bytes(count: float) -> str:
    """1536 → ``1.5KiB`` (binary units, one decimal)."""
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(count) < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(count)}B"
            return f"{count:.1f}{unit}"
        count /= 1024
    return f"{count:.1f}TiB"


class TopDashboard:
    """Polls instances and renders the per-instance table."""

    def __init__(self, urls: list[str],
                 interval_s: float = DEFAULT_INTERVAL_S,
                 stream=None, fetch=fetch_instance,
                 clock=time.monotonic, sleep=time.sleep) -> None:
        self.urls = [url.rstrip("/") for url in urls]
        self.interval_s = interval_s
        self.stream = stream if stream is not None else sys.stdout
        self.fetch = fetch
        self.clock = clock
        self.sleep = sleep
        self.interactive = bool(getattr(self.stream, "isatty",
                                        lambda: False)())
        #: url -> (poll time, cells_total) from the previous round,
        #: the baseline for the cells/s rate.
        self._last: dict[str, tuple[float, int]] = {}

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------
    def poll(self) -> list[InstanceSample]:
        """One round: fetch every instance, never raising per-instance."""
        return [self.fetch(url) for url in self.urls]

    def _rate(self, sample: InstanceSample, now: float) -> float | None:
        """cells/s from the delta against the previous poll (None on
        the first poll of an instance).

        Clamped at 0: a restarted service resets its counters, so the
        first delta after a restart is negative — render that round as
        an idle instance, not a bogus negative rate, and let the next
        round re-baseline.
        """
        previous = self._last.get(sample.url)
        self._last[sample.url] = (now, sample.cells_total)
        if previous is None:
            return None
        elapsed = now - previous[0]
        if elapsed <= 0:
            return None
        return max(0.0, (sample.cells_total - previous[1]) / elapsed)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, samples: list[InstanceSample]) -> str:
        now = self.clock()
        lines = [f"repro top — {len(samples)} instance"
                 f"{'s' if len(samples) != 1 else ''}"]
        for sample in samples:
            if not sample.ok:
                lines.append(f"{sample.url}  UNREACHABLE  {sample.error}")
                continue
            rate = self._rate(sample, now)
            rate_text = f"{rate:.1f}" if rate is not None else "-"
            states = " ".join(f"{state}={sample.states.get(state, 0)}"
                              for state in STATES)
            lines.append(
                f"{sample.url}  "
                f"{'up' if sample.worker_up else 'WORKER-DOWN'}  "
                f"{states} queue={sample.queue_depth} "
                f"cells/s={rate_text} "
                f"cache={sample.cache_hit_pct:.0f}% "
                f"rss={format_bytes(sample.rss_bytes)}")
            running = [job for job in sample.jobs
                       if job.get("state") == "running"]
            for job in running:
                lines.append(f"    {job.get('id', '?')} "
                             f"[{job.get('experiment', '?')}] running "
                             f"cells={job.get('cells', 0)}")
        return "\n".join(lines)

    def _emit(self, text: str) -> None:
        if self.interactive:
            self.stream.write(CLEAR_SCREEN + text + "\n")
        else:
            self.stream.write(text + "\n")
        self.stream.flush()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run_once(self) -> int:
        """One poll + one render; exit 2 when no instance answered."""
        samples = self.poll()
        self._emit(self.render(samples))
        return 0 if any(sample.ok for sample in samples) else 2

    def run(self, max_rounds: int | None = None) -> int:
        """Poll/render until interrupted (or ``max_rounds`` under
        test); the final round's reachability is the exit code."""
        status = 2
        rounds = 0
        try:
            while True:
                samples = self.poll()
                self._emit(self.render(samples))
                status = 0 if any(s.ok for s in samples) else 2
                rounds += 1
                if max_rounds is not None and rounds >= max_rounds:
                    return status
                self.sleep(self.interval_s)
        except KeyboardInterrupt:
            return status
