"""Memory-trace containers.

A :class:`MemoryTrace` is the unit of work a core executes: a sequence of
LLC-miss requests, each with a pre-decoded DRAM coordinate and a *think
gap* — the compute time the core spends before issuing the request after
its predecessor (in the same MLP slot) completed.  Traces are stored as
parallel numpy arrays so generation is vectorised and the simulation hot
loop is plain integer indexing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.address import MOPMapper


@dataclass
class MemoryTrace:
    """A decoded LLC-miss request stream for one core.

    Attributes
    ----------
    name:
        Workload name the trace was generated from.
    subchannel / bank / row:
        Per-request DRAM coordinates (parallel arrays).
    gap_ps:
        Per-request think time in picoseconds (time between the previous
        request's completion in the issuing MLP slot and this request's
        issue).
    """

    name: str
    subchannel: np.ndarray
    bank: np.ndarray
    row: np.ndarray
    gap_ps: np.ndarray

    def __post_init__(self) -> None:
        lengths = {len(self.subchannel), len(self.bank), len(self.row),
                   len(self.gap_ps)}
        if len(lengths) != 1:
            raise ValueError("trace arrays must have equal length")
        if len(self.subchannel) == 0:
            raise ValueError("trace must contain at least one request")

    def __len__(self) -> int:
        return len(self.row)

    def columns(self, dtype=None) -> tuple:
        """``(subchannel, bank, row, gap_ps)`` in hot-loop-friendly form.

        With ``dtype=None`` (the scalar engine) the columns are flat
        Python-int lists: the hot loop indexes one element per fetched
        request, and indexing the numpy arrays directly would allocate a
        numpy scalar (and force an ``int()`` round-trip) on every
        access.  With a numpy ``dtype`` (the batched engine) the columns
        are C-contiguous arrays of that dtype, ready for vectorised
        gathers; they may share memory with the trace's own arrays and
        must be treated as read-only.

        Results are memoized *per dtype key*, so engines with different
        needs can share one trace without silently rebuilding each
        other's columns; every :class:`~repro.cpu.core.Core` / batch
        member sharing this trace reuses them.  Call
        :meth:`invalidate_columns` after mutating the underlying arrays
        (tests only — traces are immutable in normal operation).
        """
        cache = self.__dict__.get("_columns_cache")
        if cache is None:
            cache = {}
            self._columns_cache = cache
        key = None if dtype is None else np.dtype(dtype)
        cached = cache.get(key)
        if cached is None:
            source = (self.subchannel, self.bank, self.row, self.gap_ps)
            if key is None:
                cached = tuple(column.tolist() for column in source)
            else:
                cached = tuple(np.ascontiguousarray(column, dtype=key)
                               for column in source)
            cache[key] = cached
        return cached

    def invalidate_columns(self) -> None:
        """Drop every memoized column set (after mutating the arrays)."""
        self.__dict__.pop("_columns_cache", None)

    @classmethod
    def from_lines(cls, name: str, lines: np.ndarray, gaps_ps: np.ndarray,
                   mapper: MOPMapper) -> "MemoryTrace":
        """Decode raw 64-byte line addresses through a MOP mapper.

        The decode replicates :meth:`MOPMapper.map_line` vectorised with
        numpy, which keeps multi-million-request trace generation fast.
        """
        org = mapper.organization
        chunk = lines // mapper.chunk_lines
        fanout = org.subchannels * org.banks
        fan = chunk % fanout
        subchannel = (fan % org.subchannels).astype(np.int8)
        bank = (fan // org.subchannels).astype(np.int16)
        remaining = chunk // fanout
        chunks_per_row = org.cols_per_row // mapper.chunk_lines
        row = ((remaining // chunks_per_row) % org.rows_per_bank)
        return cls(
            name=name,
            subchannel=subchannel,
            bank=bank,
            row=row.astype(np.int64),
            gap_ps=gaps_ps.astype(np.int64),
        )

    def scaled_gaps(self, factor: float) -> "MemoryTrace":
        """Copy of the trace with all think gaps multiplied by ``factor``."""
        return MemoryTrace(
            name=self.name,
            subchannel=self.subchannel,
            bank=self.bank,
            row=self.row,
            gap_ps=(self.gap_ps * factor).astype(np.int64),
        )

    def activations_per_row(self, num_subchannels: int, num_banks: int,
                            rows_per_bank: int) -> dict[tuple[int, int, int],
                                                        int]:
        """Count requests per (subchannel, bank, row) coordinate.

        This counts *requests*, which upper-bounds ACTs (row-buffer hits do
        not activate); it is used by the workload-characterisation tooling
        together with the simulator's exact ACT counters.
        """
        keys = ((self.subchannel.astype(np.int64) * num_banks
                 + self.bank.astype(np.int64)) * rows_per_bank
                + self.row.astype(np.int64))
        unique, counts = np.unique(keys, return_counts=True)
        result: dict[tuple[int, int, int], int] = {}
        for key, count in zip(unique.tolist(), counts.tolist()):
            row = key % rows_per_bank
            bank = (key // rows_per_bank) % num_banks
            subchannel = key // (rows_per_bank * num_banks)
            result[(subchannel, bank, row)] = count
        return result
