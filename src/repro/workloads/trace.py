"""Memory-trace containers.

A :class:`MemoryTrace` is the unit of work a core executes: a sequence of
LLC-miss requests, each with a pre-decoded DRAM coordinate and a *think
gap* — the compute time the core spends before issuing the request after
its predecessor (in the same MLP slot) completed.  Traces are stored as
parallel numpy arrays so generation is vectorised and the simulation hot
loop is plain integer indexing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.address import MOPMapper


@dataclass
class MemoryTrace:
    """A decoded LLC-miss request stream for one core.

    Attributes
    ----------
    name:
        Workload name the trace was generated from.
    subchannel / bank / row:
        Per-request DRAM coordinates (parallel arrays).
    gap_ps:
        Per-request think time in picoseconds (time between the previous
        request's completion in the issuing MLP slot and this request's
        issue).
    """

    name: str
    subchannel: np.ndarray
    bank: np.ndarray
    row: np.ndarray
    gap_ps: np.ndarray

    def __post_init__(self) -> None:
        lengths = {len(self.subchannel), len(self.bank), len(self.row),
                   len(self.gap_ps)}
        if len(lengths) != 1:
            raise ValueError("trace arrays must have equal length")
        if len(self.subchannel) == 0:
            raise ValueError("trace must contain at least one request")

    def __len__(self) -> int:
        return len(self.row)

    def columns(self) -> tuple[list[int], list[int], list[int],
                               list[int]]:
        """``(subchannel, bank, row, gap_ps)`` as flat Python-int lists.

        The engine hot loop indexes one element per fetched request;
        indexing the numpy arrays directly would allocate a numpy scalar
        (and force an ``int()`` round-trip) on every access.  The lists
        are materialised once per trace and cached, so every
        :class:`~repro.cpu.core.Core` sharing this trace reuses them.
        """
        cached = self.__dict__.get("_columns")
        if cached is None:
            cached = (self.subchannel.tolist(), self.bank.tolist(),
                      self.row.tolist(), self.gap_ps.tolist())
            self._columns = cached
        return cached

    @classmethod
    def from_lines(cls, name: str, lines: np.ndarray, gaps_ps: np.ndarray,
                   mapper: MOPMapper) -> "MemoryTrace":
        """Decode raw 64-byte line addresses through a MOP mapper.

        The decode replicates :meth:`MOPMapper.map_line` vectorised with
        numpy, which keeps multi-million-request trace generation fast.
        """
        org = mapper.organization
        chunk = lines // mapper.chunk_lines
        fanout = org.subchannels * org.banks
        fan = chunk % fanout
        subchannel = (fan % org.subchannels).astype(np.int8)
        bank = (fan // org.subchannels).astype(np.int16)
        remaining = chunk // fanout
        chunks_per_row = org.cols_per_row // mapper.chunk_lines
        row = ((remaining // chunks_per_row) % org.rows_per_bank)
        return cls(
            name=name,
            subchannel=subchannel,
            bank=bank,
            row=row.astype(np.int64),
            gap_ps=gaps_ps.astype(np.int64),
        )

    def scaled_gaps(self, factor: float) -> "MemoryTrace":
        """Copy of the trace with all think gaps multiplied by ``factor``."""
        return MemoryTrace(
            name=self.name,
            subchannel=self.subchannel,
            bank=self.bank,
            row=self.row,
            gap_ps=(self.gap_ps * factor).astype(np.int64),
        )

    def activations_per_row(self, num_subchannels: int, num_banks: int,
                            rows_per_bank: int) -> dict[tuple[int, int, int],
                                                        int]:
        """Count requests per (subchannel, bank, row) coordinate.

        This counts *requests*, which upper-bounds ACTs (row-buffer hits do
        not activate); it is used by the workload-characterisation tooling
        together with the simulator's exact ACT counters.
        """
        keys = ((self.subchannel.astype(np.int64) * num_banks
                 + self.bank.astype(np.int64)) * rows_per_bank
                + self.row.astype(np.int64))
        unique, counts = np.unique(keys, return_counts=True)
        result: dict[tuple[int, int, int], int] = {}
        for key, count in zip(unique.tolist(), counts.tolist()):
            row = key % rows_per_bank
            bank = (key // rows_per_bank) % num_banks
            subchannel = key // (rows_per_bank * num_banks)
            result[(subchannel, bank, row)] = count
        return result
