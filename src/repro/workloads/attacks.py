"""Rowhammer attack patterns.

Generators for the adversarial activation sequences used throughout the
paper's security discussion:

* single-sided and double-sided hammering (the classic patterns behind
  the T_RH definitions),
* the circular pattern ``(ABCD...)^N`` that is the most stressful input
  for MINT (Section 6.2),
* Blacksmith-style non-uniform frequency/phase schedules (the patterns
  that broke deployed TRR),
* the RMAQ-abuse pattern: force a row to be selected, then exploit the
  rate-limit filter to land extra activations without selection,
* the DREAM-C DoS pattern: focus activations on the rows of one gang to
  force back-to-back DRFMab rounds (Section 5.5).

Patterns are produced as per-bank row sequences (every element implies
one activation: the attacker interleaves a conflict access, so row-buffer
hits never absorb the hammer).  ``as_trace`` converts a pattern into a
:class:`MemoryTrace` for use in the full performance simulator.
"""

from __future__ import annotations

import numpy as np

from repro.sim.config import SystemConfig
from repro.workloads.trace import MemoryTrace


def single_sided(row: int, activations: int) -> np.ndarray:
    """``activations`` back-to-back activations of one aggressor row."""
    if activations < 1:
        raise ValueError("activations must be positive")
    return np.full(activations, row, dtype=np.int64)


def double_sided(row_a: int, row_b: int, activations: int) -> np.ndarray:
    """Alternating activations of the two aggressors around a victim."""
    if activations < 1:
        raise ValueError("activations must be positive")
    pattern = np.empty(activations, dtype=np.int64)
    pattern[0::2] = row_a
    pattern[1::2] = row_b
    return pattern


def circular(rows: list[int], activations: int) -> np.ndarray:
    """The circular pattern ``(ABCD...)^N`` over ``rows``."""
    if not rows:
        raise ValueError("at least one row is required")
    base = np.asarray(rows, dtype=np.int64)
    repeats = -(-activations // len(base))
    return np.tile(base, repeats)[:activations]


def rmaq_abuse(rows: list[int], extra_on_target: int,
               rounds: int) -> np.ndarray:
    """The Section 6.2 attack against RMAQ-filtered DREAM-R (MINT).

    Each round: hammer the target (``rows[0]``) for a full window so MINT
    is guaranteed to select it, then — while the RMAQ suppresses further
    sampling of the target — land ``extra_on_target`` free activations,
    then resume the circular pattern over the remaining rows.
    """
    if len(rows) < 2:
        raise ValueError("need a target row plus at least one filler row")
    window = len(rows)
    target = rows[0]
    pieces: list[np.ndarray] = []
    for _ in range(rounds):
        pieces.append(np.full(window, target, dtype=np.int64))
        pieces.append(np.full(extra_on_target, target, dtype=np.int64))
        pieces.append(circular(rows[1:], window * (len(rows) - 1)))
    return np.concatenate(pieces)


def blacksmith(rows: list[int], intensities: list[int],
               phase_offsets: list[int], activations: int) -> np.ndarray:
    """Blacksmith-style non-uniform frequency/phase hammering.

    Blacksmith [Jattke+, S&P'22] broke TRR by hammering aggressors with
    *different* per-row frequencies and phases instead of uniform
    round-robin.  Each row ``i`` is scheduled ``intensities[i]`` times
    per period, rotated by ``phase_offsets[i]`` slots; the flattened
    schedule is tiled to ``activations`` with light jitter.
    """
    if not (len(rows) == len(intensities) == len(phase_offsets)):
        raise ValueError("rows, intensities and phase_offsets must align")
    if not rows:
        raise ValueError("at least one row is required")
    if min(intensities) < 1:
        raise ValueError("intensities must be positive")
    period = sum(intensities)
    events: list[tuple[float, int]] = []
    for row, intensity, phase in zip(rows, intensities, phase_offsets):
        spacing = period / intensity
        for k in range(intensity):
            events.append(((phase + k * spacing) % period, row))
    events.sort()
    schedule = np.array([row for _, row in events], dtype=np.int64)
    repeats = -(-activations // period)
    return np.tile(schedule, repeats)[:activations]


def gang_dos_rows(gang_rows_by_bank: dict[int, list[int]],
                  activations: int) -> list[tuple[int, int]]:
    """Round-robin activations over the rows of one DREAM-C gang.

    Returns (bank, row) pairs cycling through every row of the gang,
    which drives the shared counter to the tracker threshold as fast as
    the bus allows (the paper's worst-case DoS pattern).
    """
    flat = [(bank, row)
            for bank, rows in sorted(gang_rows_by_bank.items())
            for row in rows]
    if not flat:
        raise ValueError("gang must contain at least one row")
    return [flat[i % len(flat)] for i in range(activations)]


def as_trace(name: str, bank_rows: list[tuple[int, int]],
             system: SystemConfig, subchannel: int = 0,
             gap_ps: int = 0) -> MemoryTrace:
    """Wrap explicit (bank, row) activations into a memory trace.

    The attacker issues requests back-to-back (``gap_ps = 0`` default)
    and every consecutive pair differs in row, so each request costs an
    activation.
    """
    if not bank_rows:
        raise ValueError("at least one access is required")
    banks = np.array([bank for bank, _ in bank_rows], dtype=np.int16)
    rows = np.array([row for _, row in bank_rows], dtype=np.int64)
    org = system.organization
    if banks.max() >= org.banks or rows.max() >= org.rows_per_bank:
        raise ValueError("attack addresses exceed the organization")
    return MemoryTrace(
        name=name,
        subchannel=np.full(len(bank_rows), subchannel, dtype=np.int8),
        bank=banks,
        row=rows,
        gap_ps=np.full(len(bank_rows), gap_ps, dtype=np.int64),
    )


def hammer_trace(name: str, rows: np.ndarray, bank: int,
                 system: SystemConfig, subchannel: int = 0,
                 gap_ps: int = 0) -> MemoryTrace:
    """Single-bank hammer pattern as a memory trace."""
    return as_trace(name, [(bank, int(row)) for row in rows], system,
                    subchannel, gap_ps)
