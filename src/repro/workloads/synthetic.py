"""Synthetic LLC-miss stream generators.

Each generator turns a :class:`~repro.workloads.profiles.WorkloadProfile`
into per-core line-address streams with the profile's footprint, hot-set
skew and run-length locality.  Three families mirror the suites:

* **streaming** — a few sequential cursors swept in round-robin (STREAM
  kernels: 2-3 arrays advancing in lockstep; MOP4 turns this into short
  same-bank bursts that march across all banks).
* **paged** — page-grained bursts with a hot page set (SPEC-style
  locality: hot pages are revisited often, cold pages are swept).
* **irregular** — mostly-random single accesses over a large footprint
  with a modest hot set (GAP kernels, mcf).

All generation is vectorised with numpy and fully deterministic for a
given ``(profile, system, core, seed)``.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.dram.address import PAGE_LINES, MOPMapper
from repro.sim.config import SystemConfig
from repro.workloads.profiles import AccessStyle, WorkloadProfile
from repro.workloads.trace import MemoryTrace


def _run_lengths(rng: np.random.Generator, count: int,
                 mean: float) -> np.ndarray:
    """Geometric run lengths with the given mean, clamped to a page."""
    if mean <= 1.0:
        return np.ones(count, dtype=np.int64)
    lengths = rng.geometric(1.0 / mean, size=count)
    return np.clip(lengths, 1, PAGE_LINES).astype(np.int64)


def _expand_runs(starts: np.ndarray, lengths: np.ndarray,
                 total: int) -> np.ndarray:
    """Expand (start, length) runs into a line stream of ``total`` lines."""
    repeated_starts = np.repeat(starts, lengths)
    offsets = np.arange(len(repeated_starts), dtype=np.int64)
    run_begin = np.repeat(np.cumsum(lengths) - lengths, lengths)
    lines = repeated_starts + (offsets - run_begin)
    return lines[:total]


class _Region:
    """A core-private region of line space with a hot prefix."""

    def __init__(self, profile: WorkloadProfile, system: SystemConfig,
                 core_id: int) -> None:
        org = system.organization
        total_lines = org.total_rows * org.cols_per_row
        core_lines = total_lines // system.num_cores
        self.base = core_id * core_lines
        self.footprint = max(
            PAGE_LINES * 4,
            int(core_lines * profile.footprint_fraction))
        self.footprint = min(self.footprint, core_lines)
        self.hot_lines = max(
            PAGE_LINES,
            int(core_lines * profile.hot_fraction_of_rows))
        self.hot_lines = min(self.hot_lines, self.footprint)
        self.hot_pages = max(1, self.hot_lines // PAGE_LINES)
        self.cold_lines = max(PAGE_LINES, self.footprint - self.hot_lines)
        self.cold_base = self.base + self.hot_lines


#: Popularity skew of the hot page set.  Real workloads concentrate their
#: hot traffic on a handful of pages (Zipf-like), which is what makes a
#: few rows accumulate hundreds of activations per refresh window — the
#: behaviour behind both the ACT>=5 bucket of Table 3 and the hot
#: counters that DREAM-C's grouping study (Figure 15) relies on.
HOT_ZIPF_EXPONENT = 1.1


def _zipf_cumulative(pages: int) -> np.ndarray:
    """Cumulative Zipf weights for ranked hot pages (cached per size)."""
    cached = _ZIPF_CACHE.get(pages)
    if cached is None:
        weights = 1.0 / np.arange(1, pages + 1) ** HOT_ZIPF_EXPONENT
        cached = np.cumsum(weights) / weights.sum()
        _ZIPF_CACHE[pages] = cached
    return cached


_ZIPF_CACHE: dict[int, np.ndarray] = {}


def _hot_starts(rng: np.random.Generator, region: _Region,
                count: int) -> np.ndarray:
    """Zipf-skewed run starts inside the hot page set."""
    cumulative = _zipf_cumulative(region.hot_pages)
    pages = np.searchsorted(cumulative, rng.random(count))
    offsets = rng.integers(PAGE_LINES, size=count)
    return region.base + pages * PAGE_LINES + offsets


def _streaming_cold_starts(region: _Region, lengths: np.ndarray,
                           stripe_lines: int,
                           streams: int = 3) -> np.ndarray:
    """Striped sequential cursors for STREAM-style kernels.

    Each run is sequential (burst locality inside MOP chunks -> ~75%
    row-buffer hits), and successive runs of a stream advance by one
    row-stripe plus a chunk, so the sweep touches many distinct rows with
    a handful of activations each per window — matching the measured
    STREAM row-activation histogram of the paper's Table 3 (the ACT=1-4
    bucket covering ~39% of rows), which a contiguous sweep cannot.
    """
    count = len(lengths)
    starts = np.empty(count, dtype=np.int64)
    span = max(region.cold_lines // streams, 1)
    stride = stripe_lines + PAGE_LINES
    for stream in range(streams):
        mask = (np.arange(count) % streams) == stream
        run_index = np.arange(int(mask.sum()), dtype=np.int64)
        base = region.cold_base + stream * span
        starts[mask] = base + (run_index * stride) % span
    return starts


def _paged_cold_starts(rng: np.random.Generator, region: _Region,
                       count: int) -> np.ndarray:
    """Uniform page picks over the cold footprint."""
    pages = max(1, region.cold_lines // PAGE_LINES)
    page = rng.integers(pages, size=count)
    offset = rng.integers(PAGE_LINES, size=count)
    return region.cold_base + page * PAGE_LINES + offset


def _irregular_cold_starts(rng: np.random.Generator, region: _Region,
                           count: int) -> np.ndarray:
    """Uniform line picks over the cold footprint."""
    return region.cold_base + rng.integers(region.cold_lines, size=count)


def generate_lines(profile: WorkloadProfile, system: SystemConfig,
                   core_id: int, length: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Generate ``length`` line addresses for one core."""
    if length < 1:
        raise ValueError("length must be positive")
    region = _Region(profile, system, core_id)
    runs = max(2, int(length / profile.run_length) + 2)
    lengths = _run_lengths(rng, runs, profile.run_length)
    while int(lengths.sum()) < length:
        extra = _run_lengths(rng, runs, profile.run_length)
        lengths = np.concatenate([lengths, extra])
    hot = rng.random(len(lengths)) < profile.hot_access_share
    starts = np.empty(len(lengths), dtype=np.int64)
    cold = ~hot
    cold_lengths = lengths[cold]
    if profile.style is AccessStyle.STREAMING:
        org = system.organization
        stripe_lines = (org.cols_per_row * org.subchannels * org.banks)
        starts[cold] = _streaming_cold_starts(region, cold_lengths,
                                              stripe_lines)
    elif profile.style is AccessStyle.PAGED:
        starts[cold] = _paged_cold_starts(rng, region, len(cold_lengths))
    else:
        starts[cold] = _irregular_cold_starts(rng, region,
                                              len(cold_lengths))
    starts[hot] = _hot_starts(rng, region, int(hot.sum()))
    lines = _expand_runs(starts, lengths, length)
    total_lines = (system.organization.total_rows
                   * system.organization.cols_per_row)
    return lines % total_lines


def estimate_gap_ps(profile: WorkloadProfile, system: SystemConfig) -> int:
    """Analytic first guess of the per-request think gap.

    From the closed-loop law ``rate = slots / (response + gap)`` with a
    rough response estimate (row cycle + column access + bus, plus a bus
    queueing margin that grows with the utilisation target).
    """
    timing = system.timing
    target_rate = profile.bw_util * system.peak_lines_per_ps
    if target_rate <= 0:
        raise ValueError("bandwidth target must be positive")
    cycle_ps = system.total_mlp / target_rate
    rho = min(profile.bw_util, 0.97)
    queue_margin = int(timing.t_bus * rho / (2.0 * (1.0 - rho)))
    response = timing.t_rcd + timing.t_cl + timing.t_bus + queue_margin
    return max(0, int(cycle_ps - response))


def generate_trace(profile: WorkloadProfile, system: SystemConfig,
                   core_id: int, length: int, seed: int,
                   gap_ps: int | None = None) -> MemoryTrace:
    """Generate one core's decoded trace for ``profile``."""
    name_hash = zlib.crc32(profile.name.encode())
    rng = np.random.default_rng((seed, core_id, name_hash))
    lines = generate_lines(profile, system, core_id, length, rng)
    if gap_ps is None:
        gap_ps = estimate_gap_ps(profile, system)
    gaps = np.full(length, gap_ps, dtype=np.int64)
    mapper = MOPMapper(system.organization)
    return MemoryTrace.from_lines(profile.name, lines, gaps, mapper)
