"""Calibrated workload profiles (the paper's Table 3).

The paper evaluates 12 SPEC2017 benchmarks (MPKI >= 1), 6 GAP graph
kernels and 4 STREAM kernels, running 8 copies in rate mode.  Since the
proprietary execution traces are not available, each workload is encoded
here as a :class:`WorkloadProfile` carrying

* the paper's own measured characteristics (MPKI, average activations
  per row per refresh window, the row-activation histogram, and memory
  bandwidth utilisation), and
* generator knobs (access style, footprint, hot-set shape, run length)
  chosen so the synthetic streams reproduce those characteristics.

The reference numbers are used two ways: the generators calibrate
against them, and the Table 3 experiment reports generated-vs-paper
values side by side.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Suite(enum.Enum):
    """Benchmark suite a workload belongs to."""

    SPEC = "spec2017"
    GAP = "gap"
    STREAM = "stream"


class AccessStyle(enum.Enum):
    """Shape of the miss stream the generator synthesises."""

    #: Long sequential sweeps over large arrays (STREAM kernels).
    STREAMING = "streaming"
    #: Page-grained locality with a popularity skew (most SPEC).
    PAGED = "paged"
    #: Mostly-random single accesses over a large footprint (GAP, mcf).
    IRREGULAR = "irregular"


@dataclass(frozen=True)
class WorkloadProfile:
    """One workload: paper-reported characteristics + generator knobs.

    Attributes
    ----------
    name / suite:
        Identity.
    mpki:
        LLC misses per kilo-instruction (paper's Table 3; reported as
        metadata — the load knob of the generator is ``bw_util_pct``).
    avg_acts_per_row:
        Mean activations per row per refresh window (paper's Table 3).
    pct_rows_act0 / pct_rows_act1_4 / pct_rows_act5:
        Row-activation histogram over a refresh window (paper's Table 3).
    bw_util_pct:
        Memory-bandwidth utilisation target in percent.
    style:
        Generator family.
    footprint_fraction:
        Fraction of all memory rows the workload touches, derived from
        ``100 - pct_rows_act0``.
    hot_fraction_of_rows:
        Fraction of all rows that are *hot* (the ACT>=5 bucket).
    hot_access_share:
        Fraction of accesses directed at the hot set.
    run_length:
        Mean sequential run length in 64-byte lines (row-buffer
        locality knob).
    """

    name: str
    suite: Suite
    mpki: float
    avg_acts_per_row: float
    pct_rows_act0: float
    pct_rows_act1_4: float
    pct_rows_act5: float
    bw_util_pct: float
    style: AccessStyle
    hot_access_share: float
    run_length: float

    @property
    def footprint_fraction(self) -> float:
        """Fraction of memory rows the workload touches per window."""
        return max(0.002, (100.0 - self.pct_rows_act0) / 100.0)

    @property
    def hot_fraction_of_rows(self) -> float:
        """Fraction of all rows in the hot (ACT >= 5) set."""
        return max(0.0005, self.pct_rows_act5 / 100.0)

    @property
    def bw_util(self) -> float:
        """Bandwidth-utilisation target as a 0..1 fraction."""
        return self.bw_util_pct / 100.0


def _spec(name: str, mpki: float, acts: float, act0: float, act14: float,
          act5: float, bw: float, style: AccessStyle, hot_share: float,
          run: float) -> WorkloadProfile:
    return WorkloadProfile(name, Suite.SPEC, mpki, acts, act0, act14, act5,
                           bw, style, hot_share, run)


def _gap(name: str, mpki: float, acts: float, act0: float, act14: float,
         act5: float, bw: float) -> WorkloadProfile:
    return WorkloadProfile(name, Suite.GAP, mpki, acts, act0, act14, act5,
                           bw, AccessStyle.IRREGULAR, 0.30, 2.0)


def _stream(name: str, mpki: float, acts: float, act0: float, act14: float,
            act5: float, bw: float) -> WorkloadProfile:
    return WorkloadProfile(name, Suite.STREAM, mpki, acts, act0, act14,
                           act5, bw, AccessStyle.STREAMING, 0.02, 16.0)


#: All 22 workloads of the paper's Table 3, in paper order.
PROFILES: tuple[WorkloadProfile, ...] = (
    _spec("blender", 1.54, 0.35, 97.28, 1.88, 0.81, 19.8,
          AccessStyle.PAGED, 0.45, 6.0),
    _spec("bwaves", 41.62, 0.83, 72.11, 24.85, 3.02, 70.9,
          AccessStyle.PAGED, 0.25, 8.0),
    _spec("cactuBSSN", 3.54, 0.80, 94.47, 1.57, 3.93, 30.3,
          AccessStyle.PAGED, 0.60, 5.0),
    _spec("cam4", 3.78, 0.46, 94.94, 2.52, 2.53, 37.3,
          AccessStyle.PAGED, 0.50, 5.0),
    _spec("fotonik3d", 26.71, 1.00, 77.04, 14.98, 7.97, 46.3,
          AccessStyle.PAGED, 0.45, 6.0),
    _spec("lbm", 27.67, 1.06, 90.58, 4.11, 5.30, 51.5,
          AccessStyle.PAGED, 0.65, 8.0),
    _spec("mcf", 22.34, 0.99, 84.77, 7.81, 7.40, 71.0,
          AccessStyle.IRREGULAR, 0.50, 2.0),
    _spec("omnetpp", 10.09, 0.90, 84.99, 9.86, 5.13, 43.5,
          AccessStyle.IRREGULAR, 0.40, 2.5),
    _spec("parest", 28.88, 0.77, 97.22, 0.13, 2.57, 81.0,
          AccessStyle.PAGED, 0.75, 8.0),
    _spec("roms", 9.82, 0.60, 88.27, 9.29, 2.36, 53.0,
          AccessStyle.PAGED, 0.35, 7.0),
    _spec("xalancbmk", 1.62, 0.41, 95.64, 1.64, 2.70, 26.4,
          AccessStyle.PAGED, 0.55, 4.0),
    _spec("xz", 6.02, 0.93, 88.33, 7.25, 4.36, 38.1,
          AccessStyle.IRREGULAR, 0.45, 3.0),
    _gap("bc", 59.0, 0.66, 76.98, 20.96, 2.06, 85.4),
    _gap("bfs", 30.87, 0.59, 76.99, 21.64, 1.38, 80.6),
    _gap("cc", 58.55, 0.96, 69.16, 26.66, 4.17, 78.5),
    _gap("pr", 57.71, 0.63, 76.68, 21.68, 1.64, 87.0),
    _gap("sssp", 27.40, 0.62, 78.34, 20.03, 1.62, 84.8),
    _gap("tc", 87.82, 0.63, 76.66, 21.71, 1.63, 92.5),
    _stream("add", 62.50, 0.72, 60.36, 39.08, 0.56, 94.2),
    _stream("copy", 50.0, 0.68, 60.99, 38.64, 0.38, 94.9),
    _stream("scale", 41.67, 0.67, 62.12, 37.56, 0.32, 93.3),
    _stream("triad", 53.57, 0.70, 61.44, 38.02, 0.55, 91.8),
)

PROFILE_BY_NAME: dict[str, WorkloadProfile] = {
    profile.name: profile for profile in PROFILES
}

#: A fast, representative subset (one or two per suite / intensity class)
#: used by the quick experiment mode.
QUICK_SUBSET: tuple[str, ...] = (
    "blender", "bwaves", "lbm", "mcf", "parest", "bc", "cc", "add", "triad",
)


def profile(name: str) -> WorkloadProfile:
    """Look up a workload profile by name."""
    try:
        return PROFILE_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: "
            f"{sorted(PROFILE_BY_NAME)}") from None


def profiles_for(names: tuple[str, ...] | list[str] | None = None,
                 quick: bool = False) -> list[WorkloadProfile]:
    """Select profiles: explicit names, the quick subset, or all 22."""
    if names is not None:
        return [profile(name) for name in names]
    if quick:
        return [profile(name) for name in QUICK_SUBSET]
    return list(PROFILES)


def average_profile_value(getter) -> float:
    """Average of ``getter(profile)`` across all 22 workloads."""
    values = [getter(p) for p in PROFILES]
    return sum(values) / len(values)
