"""Multi-program workload mixes (the paper's Appendix D).

The paper forms 10 multi-program benchmarks by combining 8 random
SPEC2017 workloads.  We reproduce that construction deterministically:
mix ``k`` draws 8 workloads (with replacement, as rate-mode-style mixing
does) from the 12 SPEC profiles using a fixed seed, so every run of the
reproduction sees the same mixes.
"""

from __future__ import annotations

import numpy as np

from repro.sim.config import SimConfig, SystemConfig
from repro.workloads.builder import calibrate_gap_ps
from repro.workloads.profiles import PROFILES, Suite, WorkloadProfile
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import MemoryTrace

#: Number of mixes the paper evaluates.
NUM_MIXES = 10

#: Seed fixing the mix composition across the whole reproduction.
MIX_SEED = 20250621


def spec_profiles() -> list[WorkloadProfile]:
    """The 12 SPEC2017 profiles, in paper order."""
    return [p for p in PROFILES if p.suite is Suite.SPEC]


def mix_composition(index: int) -> list[WorkloadProfile]:
    """The 8 per-core workloads of mix ``index`` (0-based)."""
    if not 0 <= index < NUM_MIXES:
        raise ValueError(f"mix index must be in [0, {NUM_MIXES})")
    rng = np.random.default_rng((MIX_SEED, index))
    pool = spec_profiles()
    picks = rng.integers(len(pool), size=8)
    return [pool[int(pick)] for pick in picks]


def mix_name(index: int) -> str:
    """Stable name of mix ``index``."""
    return f"mix{index + 1}"


def build_mix_traces(index: int, system: SystemConfig,
                     sim: SimConfig) -> list[MemoryTrace]:
    """Build one calibrated trace per core for mix ``index``.

    Each core runs its own workload with that workload's calibrated think
    gap; the trace name is the mix name so results aggregate per mix.
    """
    composition = mix_composition(index)
    if len(composition) != system.num_cores:
        composition = (composition * system.num_cores)[:system.num_cores]
    traces = []
    gap_cache: dict[str, int] = {}
    for core, workload in enumerate(composition):
        if workload.name not in gap_cache:
            gap_cache[workload.name] = calibrate_gap_ps(workload, system,
                                                        sim.seed)
        trace = generate_trace(workload, system, core,
                               sim.requests_per_core, sim.seed,
                               gap_ps=gap_cache[workload.name])
        trace.name = mix_name(index)
        traces.append(trace)
    return traces
