"""Workload substrate: profiles, synthetic generators, attacks, mixes."""

from repro.workloads.builder import (build_traces, calibrate_gap_ps,
                                     clear_cache)
from repro.workloads.io import load_npz, load_text, save_npz, save_text
from repro.workloads.profiles import (PROFILES, QUICK_SUBSET, AccessStyle,
                                      Suite, WorkloadProfile, profile,
                                      profiles_for)
from repro.workloads.synthetic import (estimate_gap_ps, generate_lines,
                                       generate_trace)
from repro.workloads.trace import MemoryTrace

__all__ = [
    "AccessStyle",
    "MemoryTrace",
    "PROFILES",
    "QUICK_SUBSET",
    "Suite",
    "WorkloadProfile",
    "build_traces",
    "calibrate_gap_ps",
    "clear_cache",
    "estimate_gap_ps",
    "generate_lines",
    "generate_trace",
    "load_npz",
    "load_text",
    "profile",
    "profiles_for",
    "save_npz",
    "save_text",
]
