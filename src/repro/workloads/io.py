"""Trace persistence and external-trace import.

Lets downstream users bring their own traces (e.g. from a real trace
collector or another simulator) and lets long trace-generation runs be
cached on disk:

* **.npz** — the native format: the four trace arrays plus the name,
  saved with numpy (compressed, exact round trip).
* **text** — a simple interchange format, one request per line:
  ``<hex-or-dec line address> [think-gap-ns]``.  Addresses are decoded
  through the MOP mapper at load time, so external traces only need
  physical line addresses.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.dram.address import MOPMapper
from repro.workloads.trace import MemoryTrace

#: Default think gap assigned to text-format lines that omit one (ns).
DEFAULT_TEXT_GAP_NS = 50


def save_npz(trace: MemoryTrace, path: str | pathlib.Path) -> None:
    """Save a trace to the native compressed format."""
    np.savez_compressed(
        path,
        name=np.array(trace.name),
        subchannel=trace.subchannel,
        bank=trace.bank,
        row=trace.row,
        gap_ps=trace.gap_ps,
    )


def load_npz(path: str | pathlib.Path) -> MemoryTrace:
    """Load a trace saved by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        return MemoryTrace(
            name=str(data["name"]),
            subchannel=data["subchannel"],
            bank=data["bank"],
            row=data["row"],
            gap_ps=data["gap_ps"],
        )


def _parse_text_line(line: str, number: int) -> tuple[int, int] | None:
    stripped = line.split("#", 1)[0].strip()
    if not stripped:
        return None
    fields = stripped.split()
    if len(fields) > 2:
        raise ValueError(
            f"line {number}: expected 'address [gap-ns]', got "
            f"{stripped!r}")
    try:
        address = int(fields[0], 0)  # accepts 0x..., 0o..., decimal
    except ValueError:
        raise ValueError(
            f"line {number}: bad address {fields[0]!r}") from None
    if address < 0:
        raise ValueError(f"line {number}: address must be non-negative")
    gap_ns = DEFAULT_TEXT_GAP_NS
    if len(fields) == 2:
        try:
            gap_ns = int(fields[1])
        except ValueError:
            raise ValueError(
                f"line {number}: bad gap {fields[1]!r}") from None
    return address, gap_ns


def load_text(path: str | pathlib.Path, mapper: MOPMapper,
              name: str | None = None) -> MemoryTrace:
    """Import an external text trace of line addresses.

    Each non-empty, non-comment (``#``) line is
    ``<line-address> [gap-ns]``; addresses beyond the device wrap
    modulo the mapped line space.
    """
    path = pathlib.Path(path)
    addresses: list[int] = []
    gaps_ns: list[int] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            parsed = _parse_text_line(line, number)
            if parsed is None:
                continue
            address, gap_ns = parsed
            addresses.append(address % mapper.total_lines)
            gaps_ns.append(gap_ns)
    if not addresses:
        raise ValueError(f"{path} contains no requests")
    lines = np.asarray(addresses, dtype=np.int64)
    gaps_ps = np.asarray(gaps_ns, dtype=np.int64) * 1000
    return MemoryTrace.from_lines(name or path.stem, lines, gaps_ps,
                                  mapper)


def save_text(trace: MemoryTrace, path: str | pathlib.Path,
              mapper: MOPMapper) -> None:
    """Export a trace to the text interchange format.

    The DRAM coordinates are re-encoded into line addresses through the
    mapper's inverse (column 0 of each request's row), so a round trip
    preserves (sub-channel, bank, row) exactly.
    """
    from repro.dram.address import PhysicalLocation

    with open(path, "w") as handle:
        handle.write(f"# trace {trace.name}: <line address> <gap-ns>\n")
        for i in range(len(trace)):
            location = PhysicalLocation(
                subchannel=int(trace.subchannel[i]),
                bank=int(trace.bank[i]),
                row=int(trace.row[i]),
                col=0,
            )
            line = mapper.line_of(location)
            handle.write(f"{line} {int(trace.gap_ps[i]) // 1000}\n")
