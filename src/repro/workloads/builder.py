"""Trace building with closed-loop bandwidth calibration.

The think-gap estimate of :func:`repro.workloads.synthetic.estimate_gap_ps`
is a first-order guess; queueing at high utilisation makes the realised
bandwidth deviate from the profile target.  :func:`build_traces` therefore
runs a short unprotected *pilot* simulation, measures the realised request
rate, and applies one fixed-point correction of the closed-loop law:

    slots = rate * (response + gap)
    response_measured = slots / rate_pilot - gap_pilot
    gap_final = slots / rate_target - response_measured

Traces are cached (small LRU) keyed by workload/system/budget/seed, since
every experiment reuses the same traces across many policy configurations
— which is also what makes the baseline and mitigated runs perfectly
paired.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.sim.config import SimConfig, SystemConfig
from repro.workloads.profiles import WorkloadProfile, profile
from repro.workloads.synthetic import estimate_gap_ps, generate_trace
from repro.workloads.trace import MemoryTrace

#: Request budget per core for the calibration pilot run.
PILOT_REQUESTS = 2_000

#: Maximum cached trace sets (each is ~tens of MB for large budgets).
_CACHE_CAPACITY = 3

_cache: OrderedDict[tuple, list[MemoryTrace]] = OrderedDict()


def _cache_key(name: str, system: SystemConfig, requests_per_core: int,
               seed: int) -> tuple:
    return (name, system.num_cores, system.mlp_per_core,
            system.timing.refs_per_window, system.timing.t_rp,
            system.organization.rows_per_bank, requests_per_core, seed)


def clear_cache() -> None:
    """Drop all cached traces (mainly for tests)."""
    _cache.clear()


def _generate_all(workload: WorkloadProfile, system: SystemConfig,
                  requests_per_core: int, seed: int,
                  gap_ps: int) -> list[MemoryTrace]:
    return [
        generate_trace(workload, system, core, requests_per_core, seed,
                       gap_ps=gap_ps)
        for core in range(system.num_cores)
    ]


def calibrate_gap_ps(workload: WorkloadProfile, system: SystemConfig,
                     seed: int) -> int:
    """Pilot-calibrated think gap for ``workload`` on ``system``."""
    from repro.obs import runtime as obs_runtime
    from repro.sim.runner import run_simulation

    gap_pilot = estimate_gap_ps(workload, system)
    traces = _generate_all(workload, system, PILOT_REQUESTS, seed,
                           gap_pilot)
    # The pilot is a calibration internal, not a simulated result: it
    # must never reach ambient telemetry, or merged metrics would depend
    # on where (parent vs worker) and whether (trace-cache hit) it ran.
    with obs_runtime.activated(None):
        pilot = run_simulation(system, traces,
                               SimConfig(requests_per_core=PILOT_REQUESTS,
                                         seed=seed))
    if pilot.end_time_ps <= 0:
        return gap_pilot
    rate_pilot = pilot.requests_completed / pilot.end_time_ps
    slots = system.total_mlp
    response = slots / rate_pilot - gap_pilot
    target_rate = workload.bw_util * system.peak_lines_per_ps
    gap_final = int(slots / target_rate - response)
    return max(0, gap_final)


def build_traces(workload: WorkloadProfile | str, system: SystemConfig,
                 sim: SimConfig, calibrate: bool = True) -> list[MemoryTrace]:
    """Build (or fetch cached) calibrated traces for every core."""
    if isinstance(workload, str):
        workload = profile(workload)
    key = _cache_key(workload.name, system, sim.requests_per_core, sim.seed)
    cached = _cache.get(key)
    if cached is not None:
        _cache.move_to_end(key)
        return cached
    gap_ps = (calibrate_gap_ps(workload, system, sim.seed) if calibrate
              else estimate_gap_ps(workload, system))
    traces = _generate_all(workload, system, sim.requests_per_core,
                           sim.seed, gap_ps)
    _cache[key] = traces
    while len(_cache) > _CACHE_CAPACITY:
        _cache.popitem(last=False)
    return traces
