"""Performance metrics: weighted speedup and normalized slowdown.

The paper reports *weighted speedup* for 8-core rate-mode runs and quotes
mitigation overheads as percentage slowdown versus an unprotected
baseline.  With a closed-loop simulator and a fixed request budget per
core, a core's performance is the inverse of its completion time, so the
metrics reduce to ratios of per-core finish times.
"""

from __future__ import annotations

from collections.abc import Sequence


def weighted_speedup(baseline_times_ps: Sequence[int],
                     times_ps: Sequence[int]) -> float:
    """Weighted speedup of a run versus its unprotected baseline.

    Each core's speedup is ``baseline_time / time`` (both cores complete
    the same request budget); the weighted speedup is their sum.  An
    unprotected run scores exactly ``num_cores``.
    """
    if len(baseline_times_ps) != len(times_ps):
        raise ValueError("core counts differ between runs")
    if not baseline_times_ps:
        raise ValueError("at least one core is required")
    return sum(base / other
               for base, other in zip(baseline_times_ps, times_ps))


def normalized_performance(baseline_times_ps: Sequence[int],
                           times_ps: Sequence[int]) -> float:
    """Weighted speedup normalized to the core count (1.0 = no slowdown)."""
    return weighted_speedup(baseline_times_ps, times_ps) / len(times_ps)


def slowdown_percent(baseline_times_ps: Sequence[int],
                     times_ps: Sequence[int]) -> float:
    """Percentage slowdown versus the baseline (paper's headline metric).

    Defined as ``(1 - normalized weighted speedup) * 100`` so that a run
    identical to the baseline reports 0% and a run at half speed reports
    50%.
    """
    return (1.0 - normalized_performance(baseline_times_ps, times_ps)) * 100.0


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("at least one value is required")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
