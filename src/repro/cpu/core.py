"""Closed-loop core model.

Each core is modelled as ``mlp`` independent outstanding-miss slots (the
memory-level parallelism a 256-entry ROB sustains).  Every slot cycles:

    think (gap from the trace)  ->  memory service  ->  think  ->  ...

This closed-loop structure is what turns bank blocking into core slowdown:
when a mitigation command stalls a bank, the slots whose requests target
that bank wait, the core's request rate drops, and — because requests
spread over all banks — blocking even one bank eventually captures all of
a core's slots.  That is exactly the effect behind the paper's NRR vs
DRFMsb staggering discussion (Section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.trace import MemoryTrace


@dataclass(slots=True)
class Request:
    """One in-flight memory request.

    This is the *reference* request container: the optimized
    ``run_simulation`` loop packs the same six fields directly into its
    heap tuples and never allocates a ``Request`` (see
    :mod:`repro.sim.runner`).  :meth:`Core.fetch` still returns one for
    every non-hot-path caller and for the reference event loop the
    byte-identity tests replay.
    """

    core: int
    slot: int
    index: int
    subchannel: int
    bank: int
    row: int


class Core:
    """One core executing a (wrapping) LLC-miss trace.

    Parameters
    ----------
    core_id:
        Index of the core.
    trace:
        The request stream; it wraps around if the budget exceeds its
        length.
    budget:
        Number of requests the core must complete for the run to end.
    mlp:
        Outstanding-miss slots.
    """

    def __init__(self, core_id: int, trace: MemoryTrace, budget: int,
                 mlp: int) -> None:
        if budget < 1:
            raise ValueError("budget must be positive")
        if mlp < 1:
            raise ValueError("mlp must be positive")
        self.core_id = core_id
        self.trace = trace
        self.budget = budget
        self.mlp = mlp
        self.issued = 0
        self.completed = 0
        self.finish_time_ps: int | None = None
        self._length = len(trace)
        # Flat Python-int trace columns, converted once here so the
        # per-request path never touches numpy scalars (cached on the
        # trace — cores sharing a trace share the lists).
        (self.sub_col, self.bank_col,
         self.row_col, self.gap_col) = trace.columns()

    def fetch(self, slot: int) -> tuple[Request, int] | None:
        """Fetch the next request for ``slot``, or ``None`` when exhausted.

        Returns the request plus its think gap in picoseconds.  The
        optimized engine loop inlines this bookkeeping (advancing
        ``issued``, indexing the columns) instead of calling it; the two
        must stay in lock-step, which the identity tests enforce.
        """
        if self.issued >= self.budget:
            return None
        index = self.issued % self._length
        self.issued += 1
        request = Request(
            core=self.core_id,
            slot=slot,
            index=index,
            subchannel=self.sub_col[index],
            bank=self.bank_col[index],
            row=self.row_col[index],
        )
        return request, self.gap_col[index]

    def complete(self, finish_ps: int) -> None:
        """Record a request completion at ``finish_ps``."""
        self.completed += 1
        if self.completed >= self.budget:
            self.finish_time_ps = finish_ps

    @property
    def done(self) -> bool:
        """Whether the core has completed its full budget."""
        return self.completed >= self.budget
