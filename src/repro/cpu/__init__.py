"""CPU-side substrate: cores, shared LLC, performance metrics."""

from repro.cpu.core import Core, Request
from repro.cpu.llc import CacheStats, SetAssociativeCache
from repro.cpu.metrics import (geometric_mean, normalized_performance,
                               slowdown_percent, weighted_speedup)

__all__ = [
    "CacheStats",
    "Core",
    "Request",
    "SetAssociativeCache",
    "geometric_mean",
    "normalized_performance",
    "slowdown_percent",
    "weighted_speedup",
]
