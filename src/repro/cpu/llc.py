"""Shared last-level cache (LLC) substrate.

The baseline system has an 8 MB, 16-way, 64-byte-line shared LLC with LRU
replacement (Table 2).  The performance experiments feed the memory
controller with *miss* traces directly (the workload generators are
calibrated at the LLC-miss level using the paper's own Table 3 data), but
the cache is a real, tested substrate: it filters raw access traces into
miss traces, reports MPKI, and is used by the trace-pipeline example.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.dram.address import LINE_BYTES


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    accesses: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction for a given instruction count."""
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        return 1000.0 * self.misses / instructions


class SetAssociativeCache:
    """A set-associative LRU cache operating on 64-byte line addresses.

    Parameters
    ----------
    size_bytes:
        Total capacity (8 MB baseline).
    ways:
        Associativity (16 baseline).
    line_bytes:
        Line size (64 baseline).
    """

    def __init__(self, size_bytes: int = 8 * 1024 * 1024, ways: int = 16,
                 line_bytes: int = LINE_BYTES) -> None:
        if size_bytes % (ways * line_bytes):
            raise ValueError("size must be a multiple of ways * line size")
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        # Each set is an OrderedDict used as an LRU list: oldest first.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    def _tag(self, line: int) -> int:
        return line // self.num_sets

    def access(self, line: int) -> bool:
        """Access a line address; returns ``True`` on hit.

        On a miss the line is filled, evicting the LRU line of its set if
        the set is full.
        """
        self.stats.accesses += 1
        lru = self._sets[self._set_index(line)]
        tag = self._tag(line)
        if tag in lru:
            lru.move_to_end(tag)
            return True
        self.stats.misses += 1
        if len(lru) >= self.ways:
            lru.popitem(last=False)
            self.stats.evictions += 1
        lru[tag] = None
        return False

    def contains(self, line: int) -> bool:
        """Whether ``line`` is currently cached (no LRU update)."""
        return self._tag(line) in self._sets[self._set_index(line)]

    def filter_misses(self, lines: list[int]) -> list[int]:
        """Run an access trace through the cache, returning the misses."""
        return [line for line in lines if not self.access(line)]

    @property
    def capacity_bytes(self) -> int:
        """Configured capacity in bytes."""
        return self.num_sets * self.ways * self.line_bytes
