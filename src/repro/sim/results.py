"""Result containers for simulation runs.

A :class:`RunResult` captures one closed-loop run (per-core finish times
plus memory-system counters).  A :class:`ComparisonResult` pairs a
mitigated run with its unprotected baseline and exposes the paper's
headline metrics: percentage slowdown (from normalized weighted speedup)
and realised RLP.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.cpu.metrics import normalized_performance, slowdown_percent


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    workload: str
    policy: str
    finish_times_ps: list[int]
    end_time_ps: int
    requests_completed: int
    activations: int
    row_hits: int
    row_conflicts: int
    mitigation_commands: int
    rows_mitigated: int
    average_rlp: float
    bus_busy_ps: int
    subchannels: int
    policy_summaries: list[dict[str, float]] = field(default_factory=list)

    @property
    def row_hit_rate(self) -> float:
        """Row-buffer hit rate over all accesses."""
        accesses = self.activations + self.row_hits
        return self.row_hits / accesses if accesses else 0.0

    @property
    def bus_utilization(self) -> float:
        """Mean data-bus utilisation across sub-channels (0..1)."""
        if self.end_time_ps <= 0:
            return 0.0
        return self.bus_busy_ps / (self.end_time_ps * self.subchannels)

    @property
    def act_rate_per_ns(self) -> float:
        """System-wide activation rate (ACTs per nanosecond)."""
        if self.end_time_ps <= 0:
            return 0.0
        return self.activations / (self.end_time_ps / 1000.0)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.workload}/{self.policy}: end={self.end_time_ps} ps, "
                f"hit-rate={self.row_hit_rate:.2f}, "
                f"bw={self.bus_utilization * 100:.1f}%, "
                f"mitigations={self.mitigation_commands}, "
                f"rlp={self.average_rlp:.2f}")

    def to_dict(self) -> dict:
        """All fields plus derived rates as a plain dict.

        Contains only simulated-time quantities — no wall-clock — so two
        runs of the same seed compare byte-identical through
        :meth:`to_json` regardless of host speed or telemetry settings.
        """
        data = asdict(self)
        data["row_hit_rate"] = self.row_hit_rate
        data["bus_utilization"] = self.bus_utilization
        data["act_rate_per_ns"] = self.act_rate_per_ns
        return data

    def to_json(self) -> str:
        """Canonical JSON rendering (sorted keys, stable formatting)."""
        return json.dumps(self.to_dict(), sort_keys=True)


@dataclass
class ComparisonResult:
    """A mitigated run against its unprotected baseline."""

    baseline: RunResult
    mitigated: RunResult

    @property
    def slowdown_percent(self) -> float:
        """Percentage slowdown (paper's headline metric)."""
        return slowdown_percent(self.baseline.finish_times_ps,
                                self.mitigated.finish_times_ps)

    @property
    def normalized_performance(self) -> float:
        """Normalized weighted speedup (1.0 = no slowdown)."""
        return normalized_performance(self.baseline.finish_times_ps,
                                      self.mitigated.finish_times_ps)

    @property
    def average_rlp(self) -> float:
        """Realised RLP of the mitigated run."""
        return self.mitigated.average_rlp

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.mitigated.workload}: "
                f"{self.mitigated.policy} slowdown="
                f"{self.slowdown_percent:.2f}% rlp={self.average_rlp:.2f}")
