"""System and simulation configuration.

:class:`SystemConfig` bundles the hardware shape of the simulated machine
(Table 2 of the paper) with the scaled presets used for tractable
pure-Python runs.  :class:`SimConfig` holds run-control parameters
(request budget per core, seed, measurement warm-up).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.dram.device import Organization
from repro.dram.timing import DDR5Timing
from repro.mc.page_policy import PagePolicy


@dataclass(frozen=True)
class SystemConfig:
    """Hardware shape of the simulated system.

    The defaults correspond to the paper's baseline (Table 2): 8 cores,
    one DDR5 channel with two sub-channels of 32 banks, MOP4 mapping,
    open-page policy — but with the refresh window scaled down to 256 REFs
    (1 ms) and rows per bank scaled by the same 32x factor, per DESIGN.md.

    Attributes
    ----------
    timing:
        DDR5 timing parameters.
    organization:
        Channel/bank/row shape.
    num_cores:
        Cores issuing memory traffic (8 baseline, 16 for Appendix C).
    mlp_per_core:
        Outstanding LLC misses a core sustains (derived from the 256-entry
        ROB; each in-flight miss occupies a window of instructions).
    core_ghz:
        Core frequency, used only to convert think-time to instructions
        for MPKI-style reporting.
    page_policy:
        Row-buffer closure policy (open-page baseline per Table 2).
    """

    timing: DDR5Timing = field(default_factory=DDR5Timing.scaled)
    organization: Organization = field(default_factory=Organization.scaled)
    num_cores: int = 8
    mlp_per_core: int = 16
    core_ghz: float = 4.0
    page_policy: PagePolicy = PagePolicy.OPEN

    @classmethod
    def baseline(cls, refs_per_window: int = 256,
                 num_cores: int = 8) -> "SystemConfig":
        """Scaled baseline system (default used by the experiments)."""
        return cls(
            timing=DDR5Timing.scaled(refs_per_window),
            organization=Organization.scaled(refs_per_window),
            num_cores=num_cores,
        )

    @classmethod
    def full_size(cls) -> "SystemConfig":
        """The paper's exact Table 2 system (32 ms window, 128K rows)."""
        return cls(timing=DDR5Timing.jedec(),
                   organization=Organization.full_size())

    @classmethod
    def prac(cls, refs_per_window: int = 256,
             num_cores: int = 8) -> "SystemConfig":
        """Baseline system with PRAC-extended timings (tRP 14 -> 36 ns)."""
        return cls(
            timing=DDR5Timing.prac(refs_per_window),
            organization=Organization.scaled(refs_per_window),
            num_cores=num_cores,
        )

    def with_cores(self, num_cores: int) -> "SystemConfig":
        """Copy of this config with a different core count."""
        return replace(self, num_cores=num_cores)

    @property
    def total_mlp(self) -> int:
        """Total outstanding-miss slots across all cores."""
        return self.num_cores * self.mlp_per_core

    @property
    def peak_lines_per_ps(self) -> float:
        """Peak data-bus throughput in 64-byte lines per picosecond."""
        buses = self.organization.channels * self.organization.subchannels
        return buses / self.timing.t_bus


@dataclass(frozen=True)
class SimConfig:
    """Run-control parameters for one simulation.

    Attributes
    ----------
    requests_per_core:
        LLC-miss requests each core must complete; the run ends when every
        core has finished its budget.
    seed:
        Master seed; every stochastic component (traces, trackers) derives
        its own stream from it, so runs are bit-reproducible.

    Runs are paired (baseline and mitigated execute identical traces), so
    no warm-up discard is needed: cold-start effects cancel in the
    slowdown ratio.
    """

    requests_per_core: int = 20_000
    seed: int = 12345

    def scaled(self, factor: float) -> "SimConfig":
        """Copy with the request budget scaled by ``factor``."""
        return replace(
            self,
            requests_per_core=max(1, int(self.requests_per_core * factor)),
        )
