"""Simulation engine: event queue, configuration, runner, results."""

from repro.sim.config import SimConfig, SystemConfig
from repro.sim.engine import EventQueue
from repro.sim.results import ComparisonResult, RunResult
from repro.sim.runner import run_comparison, run_simulation

__all__ = [
    "ComparisonResult",
    "EventQueue",
    "RunResult",
    "SimConfig",
    "SystemConfig",
    "run_comparison",
    "run_simulation",
]
