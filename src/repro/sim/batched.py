"""Batched columnar engine backend: many sweep cells, one numpy loop.

The scalar engine (:func:`repro.sim.runner.run_simulation`) retires one
event per Python iteration; its profile is pure interpreter dispatch
spread across ``service``/``bank`` calls.  A sweep, however, is dozens to
thousands of *independent* cells with identical hardware shape — the
ideal substrate for columnar execution.  This backend stacks the per-cell
simulator state into arrays:

* the event heap becomes a ``[cells, slots]`` matrix of packed
  ``time << shift | sequence`` keys — a row-wise ``argmin`` reproduces
  the heap's pop-plus-FIFO-tie-break exactly (sequence numbers are
  unique and monotone per cell, mirroring push order);
* bank state (``open_row`` / ``busy_until`` / ``last_act``), the
  per-sub-channel data bus and the lazy-REF deadline live in flat int64
  arrays indexed by ``(cell, subchannel, bank)``;
* each step advances *every* cell by one event with a fixed number of
  vectorised operations (select, REF check, hit/miss split, precharge +
  activate + bus reservation, completion bookkeeping, next fetch).

Divergent control flow drops to a per-cell **escape hatch**:

* a due REF deadline replays :class:`~repro.dram.refresh.RefreshScheduler`
  semantics for that one ``(cell, subchannel)`` (vectorised over banks);
* a row miss in a cell that carries a mitigation policy runs the scalar
  service path for that one event, with the *real* policy object driving
  a :class:`_BatchedPort` that implements the
  :class:`~repro.mc.policy.MitigationPort` protocol directly against the
  state arrays (DAR registers and policy state stay plain Python — they
  are touched only on this path);
* an item that carries telemetry falls back to the scalar engine for
  that whole cell: instrumentation samples per-event state at scalar
  rate anyway, and the scalar path is already identity-pinned.  Its
  snapshot is still captured per cell by the executor, inside the batch.

``run_simulation_reference`` remains the executable specification: every
cell's :meth:`~repro.sim.results.RunResult.to_json` must be
**byte-identical** to the scalar engines' (``tests/test_batched_backend``,
``tests/test_engine_identity.py`` and ``tests/golden_engine.py`` pin
this across the backend axis).

A cell that raises mid-batch (a policy bug, an injected fault) fails
*alone*: its slots are parked, the other cells keep streaming, and the
failure surfaces as a :class:`BatchCellError` for that index only.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass

import numpy as np

from repro.dram.bank import DARRegister
from repro.dram.commands import Command, blocking_banks
from repro.dram.subchannel import MitigationEvent
from repro.mc.policy import MitigationPolicy, PolicyContext, PolicyFactory
from repro.obs import runtime as obs_runtime
from repro.sim.config import SimConfig, SystemConfig
from repro.sim.results import RunResult
from repro.sim.runner import run_simulation
from repro.workloads.trace import MemoryTrace

#: Slot-key sentinel for "no pending event" (int64 max; never a real key).
_IDLE = (1 << 63) - 1

#: Matches :class:`repro.dram.bank.Bank` construction (``last_act_ps``).
_LAST_ACT_INIT = -(1 << 62)

#: ``open_row`` encoding for "closed" (rows are non-negative).
_CLOSED = -1


class BatchCellError(Exception):
    """One batch member failed; the rest of the batch is unaffected.

    Carries the member ``index`` within the batch and a one-line
    ``message`` describing the original exception.  The original
    exception object (when raised in-process) is attached as ``cause``;
    it is dropped on pickling so the error crosses process boundaries.
    """

    def __init__(self, index: int, message: str) -> None:
        super().__init__(f"batch member {index}: {message}")
        self.index = index
        self.message = message
        self.cause: BaseException | None = None

    def __reduce__(self):
        return (BatchCellError, (self.index, self.message))


@dataclass(frozen=True)
class BatchItem:
    """One cell of a batch: the same arguments ``run_simulation`` takes.

    ``telemetry`` behaves exactly like the scalar runner's parameter:
    ``None`` resolves the ambient instance (:mod:`repro.obs.runtime`);
    an instrumented item is executed by the identity-pinned scalar
    engine inside the batch (see the module docstring).
    """

    traces: list[MemoryTrace]
    sim: SimConfig
    policy_factory: PolicyFactory | None = None
    policy_name: str = "none"
    telemetry: object = None


class _BatchedPort:
    """:class:`MitigationPort` for one ``(cell, subchannel)`` of a batch.

    Policies observe exactly the surface
    :class:`~repro.mc.controller.SubChannelController` gives them —
    ``timing`` / ``num_banks`` / ``banks_per_group`` plus the five port
    methods — but every bank access lands in the engine's state arrays.
    DAR registers are real :class:`DARRegister` objects (escape-path
    only, never vectorised).
    """

    def __init__(self, engine: "_BatchEngine", cell: int,
                 subchannel: int) -> None:
        self._engine = engine
        self._cell = cell
        self._sb = cell * engine.n_sub + subchannel
        self._base = self._sb * engine.n_banks
        self.timing = engine.timing
        self.num_banks = engine.n_banks
        self.banks_per_group = engine.banks_per_group
        self.dars = [DARRegister() for _ in range(engine.n_banks)]

    # -- MitigationPort ------------------------------------------------
    def issue(self, command: Command, bank: int, now_ps: int,
              row: int | None = None) -> MitigationEvent:
        engine = self._engine
        cell = self._cell
        base = self._base
        timing = self.timing
        if command is Command.DRFM_SB:
            duration = timing.t_drfm_sb
        elif command is Command.DRFM_AB:
            duration = timing.t_drfm_ab
        elif command is Command.NRR:
            duration = timing.t_nrr
        else:
            raise ValueError(f"{command} is not a mitigation command")
        targets = blocking_banks(command, bank, self.num_banks,
                                 self.banks_per_group)
        until = now_ps + duration
        open_f = engine.open_f
        busy_f = engine.busy_f
        mitigated: list[tuple[int, int]] = []
        if command is Command.NRR:
            if row is None:
                raise ValueError("NRR requires an explicit row address")
            g = base + bank
            open_f[g] = _CLOSED
            if until > busy_f[g]:
                busy_f[g] = until
            mitigated.append((bank, row))
        else:
            for bank_index in targets:
                g = base + bank_index
                open_f[g] = _CLOSED
                mitigated_row = self.dars[bank_index].invalidate()
                if mitigated_row is not None:
                    mitigated.append((bank_index, mitigated_row))
                if until > busy_f[g]:
                    busy_f[g] = until
        event = MitigationEvent(
            time_ps=now_ps,
            command=command,
            trigger_bank=bank,
            blocked_banks=len(targets),
            mitigated_rows=tuple(mitigated),
        )
        engine.mit_cmds_c[cell] += 1
        engine.rows_mit_c[cell] += event.rlp
        return event

    def explicit_sample(self, bank: int, row: int, now_ps: int) -> int:
        engine = self._engine
        g = self._base + bank
        if engine.open_f[g] != _CLOSED:
            engine._pre(g, now_ps)
        engine._act(self._cell, g, row, now_ps)
        return engine._pre(g, now_ps, dar=self.dars[bank])

    def dar(self, bank: int) -> DARRegister:
        return self.dars[bank]

    def block_bank(self, bank: int, until_ps: int) -> None:
        busy_f = self._engine.busy_f
        g = self._base + bank
        if until_ps > busy_f[g]:
            busy_f[g] = until_ps

    def valid_dar_count(self) -> int:
        return sum(1 for dar in self.dars if dar.row is not None)


class _BatchEngine:
    """Columnar state + step loop for the engine-eligible batch members."""

    def __init__(self, system: SystemConfig,
                 members: list[tuple[int, BatchItem]]) -> None:
        timing = system.timing
        org = system.organization
        org.validate()
        timing.validate()
        if org.channels != 1:
            raise NotImplementedError(
                "the simulator models one channel; run independent "
                "channels as independent simulations")
        self.system = system
        self.timing = timing
        self.n_sub = org.subchannels
        self.n_banks = org.banks
        self.banks_per_group = org.banks_per_group
        self.members = members
        self.t_cl = timing.t_cl
        self.t_bus = timing.t_bus
        self.t_rc = timing.t_rc
        self.t_rcd = timing.t_rcd
        self.t_ras = timing.t_ras
        self.t_rp = timing.t_rp
        self.t_refi = timing.t_refi
        self.t_rfc = timing.t_rfc
        self.closed_page = system.page_policy.closes_after_access
        ncores = system.num_cores
        mlp = system.mlp_per_core
        self.ncores = ncores
        self.mlp = mlp
        count = len(members)
        self.count = count
        for _, item in members:
            if len(item.traces) != ncores:
                raise ValueError(
                    f"expected {ncores} traces, got {len(item.traces)}")
        self.budgets = np.array(
            [item.sim.requests_per_core for _, item in members], np.int64)
        # Slot-key packing: sequence numbers stay below 2**shift, so the
        # int64 key orders by (time, sequence) exactly like the heap.
        seq_capacity = int(self.budgets.max()) * ncores + ncores * mlp + 1
        self.shift = max(seq_capacity.bit_length(), 1)
        if self.shift > 40:
            raise ValueError("request budget too large for key packing")
        self.time_limit = 1 << (63 - self.shift)

        # Request-word packing: the three trace columns collapse into one
        # int64 ``gap << meta_bits | gb << row_bits | row`` so the hot
        # loop fetches one word (one gather) per retired event, and the
        # pending-slot metadata is the word's low ``meta_bits``.
        self.row_bits = max((org.rows_per_bank - 1).bit_length(), 1)
        gb_bits = max((self.n_sub * self.n_banks - 1).bit_length(), 1)
        self.meta_bits = self.row_bits + gb_bits
        self.row_mask = (1 << self.row_bits) - 1
        self.meta_mask = (1 << self.meta_bits) - 1

        # Flat trace columns, deduplicated by trace object identity (a
        # batch typically shares trace objects across its cells).
        segments: dict[int, int] = {}
        chunks: list[np.ndarray] = []
        cursor = 0
        self.offsets_f = np.empty(count * ncores, np.int64)
        self.lengths_f = np.empty(count * ncores, np.int64)
        for position, (_, item) in enumerate(members):
            for core in range(ncores):
                trace = item.traces[core]
                start = segments.get(id(trace))
                if start is None:
                    segments[id(trace)] = start = cursor
                    cursor += len(trace)
                    chunks.append(self._packed_words(trace, org))
                flat = position * ncores + core
                self.offsets_f[flat] = start
                self.lengths_f[flat] = len(trace)
        self.flat_word = np.concatenate(chunks)
        gap_limit = min(self.time_limit, 1 << (63 - self.meta_bits))
        if int(self.flat_word.max(initial=0)) >> self.meta_bits \
                >= gap_limit:
            raise ValueError("trace gap too large for key packing")

        # Columnar state.
        slots = ncores * mlp
        self.slots = slots
        self.key = np.full((count, slots), _IDLE, np.int64)
        self.meta_a = np.zeros((count, slots), np.int64)
        self.issued_f = np.zeros(count * ncores, np.int64)
        self.completed_f = np.zeros(count * ncores, np.int64)
        self.finish_f = np.full(count * ncores, -1, np.int64)
        banks_total = count * self.n_sub * self.n_banks
        self.open_f = np.full(banks_total, _CLOSED, np.int64)
        self.busy_f = np.zeros(banks_total, np.int64)
        self.last_f = np.full(banks_total, _LAST_ACT_INIT, np.int64)
        self.bus_f = np.zeros(count * self.n_sub, np.int64)
        self.ref_f = np.full(count * self.n_sub, self.t_refi, np.int64)
        self.acts_c = np.zeros(count, np.int64)
        self.esc_c = np.zeros(count, np.int64)
        self.hits_c = np.zeros(count, np.int64)
        self.conflicts_c = np.zeros(count, np.int64)
        self.mit_cmds_c = np.zeros(count, np.int64)
        self.rows_mit_c = np.zeros(count, np.int64)
        self.end_time = np.zeros(count, np.int64)
        self._cells = np.arange(count)

        self.errors: dict[int, BatchCellError] = {}
        self.policy_mask = np.zeros(count, bool)
        self.policies: list[list[MitigationPolicy] | None] = [None] * count
        self.ports: list[list[_BatchedPort] | None] = [None] * count
        self._fill_slots()
        for position, (_, item) in enumerate(members):
            if item.policy_factory is None:
                continue
            try:
                cell_policies = []
                cell_ports = []
                for index in range(self.n_sub):
                    context = PolicyContext(
                        subchannel=index,
                        num_banks=org.banks,
                        banks_per_group=org.banks_per_group,
                        rows_per_bank=org.rows_per_bank,
                        timing=timing,
                        seed=item.sim.seed,
                    )
                    policy = item.policy_factory(context)
                    port = _BatchedPort(self, position, index)
                    policy.bind(port)
                    cell_policies.append(policy)
                    cell_ports.append(port)
            except Exception as exc:  # noqa: BLE001 - isolate the cell
                self._fail_cell(position, exc)
                continue
            self.policies[position] = cell_policies
            self.ports[position] = cell_ports
            self.policy_mask[position] = True

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _packed_words(self, trace: MemoryTrace, org) -> np.ndarray:
        """The trace's request columns as one packed int64 word each.

        Rides the trace's per-dtype column cache (a packing-layout tuple
        key cannot collide with ``columns()``'s dtype keys), so repeated
        batches over the same traces — bench rounds, warm sweeps — skip
        the packing entirely; :meth:`MemoryTrace.invalidate_columns`
        drops it with the rest.
        """
        cache = trace.__dict__.setdefault("_columns_cache", {})
        key = ("batched-word", self.n_sub, self.n_banks, self.row_bits,
               self.meta_bits)
        word = cache.get(key)
        if word is None:
            sub_c, bank_c, row_c, gap_c = trace.columns(np.int64)
            if (int(sub_c.max()) >= self.n_sub
                    or int(bank_c.max()) >= self.n_banks
                    or int(row_c.max()) >= org.rows_per_bank):
                raise ValueError(
                    f"trace {trace.name!r} addresses outside the "
                    "configured DRAM organization")
            if (int(sub_c.min()) < 0 or int(bank_c.min()) < 0
                    or int(row_c.min()) < 0 or int(gap_c.min()) < 0):
                raise ValueError(
                    f"trace {trace.name!r} has negative coordinates "
                    "or gaps")
            # (subchannel, bank) packed as one global-bank coordinate
            # inside the word.
            gb_c = sub_c * self.n_banks + bank_c
            word = (gap_c << self.meta_bits) | (gb_c << self.row_bits) \
                | row_c
            cache[key] = word
        return word

    def _fill_slots(self) -> None:
        """Seed one pending request per MLP slot, in reference push order.

        The key's tie-break field is the slot's position in that fill
        order (core-major, slot-minor), which reproduces the heap's
        initial sequence numbers; the step loop continues the numbering
        from ``slots`` with one global step counter — within any cell at
        most one push happens per step, so step order *is* per-cell push
        order.
        """
        budgets = self.budgets
        issued_f = self.issued_f
        ncores = self.ncores
        shift = self.shift
        for core in range(self.ncores):
            core_f = self._cells * ncores + core
            for slot in range(self.mlp):
                can = issued_f[core_f] < budgets
                cells = np.nonzero(can)[0]
                if cells.size == 0:
                    continue
                flats = core_f[cells]
                index = issued_f[flats] % self.lengths_f[flats]
                position = self.offsets_f[flats] + index
                issued_f[flats] += 1
                s = core * self.mlp + slot
                word = self.flat_word[position]
                self.key[cells, s] = ((word >> self.meta_bits) << shift) | s
                self.meta_a[cells, s] = word & self.meta_mask

    # ------------------------------------------------------------------
    # Escape-hatch scalar bank operations (mirror repro.dram.bank.Bank)
    # ------------------------------------------------------------------
    def _act(self, cell: int, g: int, row: int, now: int) -> int:
        open_f = self.open_f
        if open_f[g] != _CLOSED:
            raise RuntimeError(
                f"ACT to row {row} while row {int(open_f[g])} is open")
        busy = int(self.busy_f[g])
        if busy < now:
            busy = now
        tracked = int(self.last_f[g]) + self.t_rc
        start = tracked if tracked > busy else busy
        open_f[g] = row
        self.last_f[g] = start
        ready = start + self.t_rcd
        self.busy_f[g] = ready
        self.acts_c[cell] += 1
        return ready

    def _pre(self, g: int, now: int, dar: DARRegister | None = None) -> int:
        open_f = self.open_f
        if dar is not None:
            open_row = int(open_f[g])
            if open_row == _CLOSED:
                raise RuntimeError("PRE+Sample with no open row")
            dar.write(open_row, now)
        busy = int(self.busy_f[g])
        if busy < now:
            busy = now
        earliest = int(self.last_f[g]) + self.t_ras
        start = earliest if earliest > busy else busy
        open_f[g] = _CLOSED
        done = start + self.t_rp
        self.busy_f[g] = done
        return done

    def _reserve_bus(self, sb: int, earliest: int) -> int:
        bus_f = self.bus_f
        busy = int(bus_f[sb])
        start = earliest if earliest > busy else busy
        done = start + self.t_bus
        bus_f[sb] = done
        return done

    def _advance_ref(self, sb: int, now: int) -> None:
        """Replay RefreshScheduler.advance + SubChannel.refresh for one
        ``(cell, subchannel)``: close every row, block banks for tRFC."""
        next_ref = int(self.ref_f[sb])
        base = sb * self.n_banks
        bank_open = self.open_f[base:base + self.n_banks]
        bank_busy = self.busy_f[base:base + self.n_banks]
        t_refi = self.t_refi
        t_rfc = self.t_rfc
        while next_ref <= now:
            bank_open[:] = _CLOSED
            np.maximum(bank_busy, next_ref + t_rfc, out=bank_busy)
            next_ref += t_refi
        self.ref_f[sb] = next_ref

    def _service_escape(self, cell: int, sub: int, bank: int, row: int,
                        now: int, g: int, sb: int) -> int:
        """Scalar service path for one policy-bearing row miss (mirrors
        SubChannelController.service below the hit fast path)."""
        self.esc_c[cell] += 1
        policy = self.policies[cell][sub]
        sample_after = policy.before_activate(bank, row, now)
        if self.open_f[g] != _CLOSED:
            self.conflicts_c[cell] += 1
            self._pre(g, now)
        row_ready = self._act(cell, g, row, now)
        finish = self._reserve_bus(sb, row_ready + self.t_cl)
        if sample_after:
            self._pre(g, finish, dar=self.ports[cell][sub].dars[bank])
            policy.on_sampled(bank, row, finish)
        elif self.closed_page:
            self._pre(g, finish)
        return finish

    def _fail_cell(self, cell: int, exc: BaseException) -> None:
        error = BatchCellError(
            self.members[cell][0],
            f"{type(exc).__name__}: {exc}")
        error.cause = exc
        error.__cause__ = exc
        self.errors[cell] = error
        self.key[cell, :] = _IDLE

    # ------------------------------------------------------------------
    # Step loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        # The hot loop allocates only small transient arrays; a cyclic
        # collection mid-run (triggered by *ambient* heap churn, e.g.
        # scalar-engine column caches built earlier in the process) can
        # double step cost.  Pause automatic GC; nothing here creates
        # reference cycles.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._run_loop()
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run_loop(self) -> None:
        key = self.key
        key_flat = key.reshape(-1)
        meta_flat = self.meta_a.reshape(-1)
        open_f = self.open_f
        busy_f = self.busy_f
        last_f = self.last_f
        bus_f = self.bus_f
        ref_f = self.ref_f
        issued_f = self.issued_f
        completed_f = self.completed_f
        flat_word = self.flat_word
        offsets_f = self.offsets_f
        lengths_f = self.lengths_f
        budgets = self.budgets
        cells_idx = self._cells
        n_sub = self.n_sub
        n_banks = self.n_banks
        banks_per_cell = n_sub * n_banks
        ncores = self.ncores
        mlp = self.mlp
        slots = self.slots
        shift = self.shift
        time_limit = self.time_limit
        row_bits = self.row_bits
        row_mask = self.row_mask
        meta_bits = self.meta_bits
        meta_mask = self.meta_mask
        t_cl = self.t_cl
        t_bus = self.t_bus
        t_rc = self.t_rc
        t_rcd = self.t_rcd
        t_ras = self.t_ras
        t_rp = self.t_rp
        closed_page = self.closed_page
        any_policy = bool(self.policy_mask.any())
        policy_mask = self.policy_mask
        hits_c = self.hits_c
        conflicts_c = self.conflicts_c
        end_time = self.end_time
        maximum = np.maximum
        where = np.where
        nonzero = np.nonzero
        # All-live fast-path constants: when every cell retires a lane
        # the per-lane cell index IS ``arange(count)`` and these
        # products replace the fancy-indexed forms below.
        base_slots = cells_idx * slots
        cells_nsub = cells_idx * n_sub
        cells_banks = cells_idx * banks_per_cell
        cells_ncores = cells_idx * ncores
        step_seq = slots
        while True:
            j = key.argmin(axis=1)
            sidx = base_slots + j
            kv = key_flat[sidx]
            if kv.max() != _IDLE:
                # Common case: every cell still live — skip compaction.
                full = True
                cs = cells_idx
                js = j
                now = kv >> shift
            else:
                cs = nonzero(kv != _IDLE)[0]
                if cs.size == 0:
                    break
                full = False
                js = j[cs]
                sidx = sidx[cs]
                now = kv[cs] >> shift
            meta = meta_flat[sidx]
            row = meta & row_mask
            gb = meta >> row_bits
            if full:
                sb = cells_nsub + gb // n_banks
                g = cells_banks + gb
            else:
                sb = cs * n_sub + gb // n_banks
                g = cs * banks_per_cell + gb
            # Lazy REF: due deadlines replay the scheduler before the
            # row-buffer check (a REF closes every row).
            due = now >= ref_f[sb]
            if due.any():
                for lane in nonzero(due)[0]:
                    self._advance_ref(int(sb[lane]), int(now[lane]))
            failed = False
            open_g = open_f[g]
            hit = open_g == row
            escapes = None
            if any_policy:
                pm = policy_mask if full else policy_mask[cs]
                escapes = nonzero(~hit & pm)[0]
                if escapes.size == 0:
                    escapes = None
            if escapes is None:
                # Merged hit/miss service, fully vectorised: one gather
                # and one scatter per bank column, branch-free via where.
                busy0 = busy_f[g]
                la = last_f[g]
                busy1 = maximum(busy0, now)
                conflict = ~hit & (open_g != _CLOSED)
                pre_done = maximum(la + t_ras, busy1) + t_rp
                busy2 = where(conflict, pre_done, busy1)
                act_start = maximum(la + t_rc, busy2)
                row_ready = act_start + t_rcd
                earliest = where(hit, busy1, row_ready) + t_cl
                finish = maximum(earliest, bus_f[sb]) + t_bus
                bus_f[sb] = finish
                if closed_page:
                    closed_busy = maximum(act_start + t_ras, finish) + t_rp
                    busy_f[g] = where(hit, busy0, closed_busy)
                    open_f[g] = where(hit, row, _CLOSED)
                else:
                    busy_f[g] = where(hit, busy0, row_ready)
                    open_f[g] = row
                last_f[g] = where(hit, la, act_start)
                if full:
                    hits_c += hit
                    conflicts_c += conflict
                else:
                    hits_c[cs] += hit
                    conflicts_c[cs] += conflict
            else:
                # Some lanes carry a policy-bearing miss: service the
                # vectorisable remainder, then the per-event escapes.
                finish = np.empty(cs.size, np.int64)
                keep_mask = np.ones(cs.size, bool)
                keep_mask[escapes] = False
                v = nonzero(keep_mask)[0]
                if v.size:
                    gv = g[v]
                    now_v = now[v]
                    row_v = row[v]
                    open_gv = open_g[v]
                    hit_v = hit[v]
                    busy0 = busy_f[gv]
                    la = last_f[gv]
                    busy1 = maximum(busy0, now_v)
                    conflict = ~hit_v & (open_gv != _CLOSED)
                    pre_done = maximum(la + t_ras, busy1) + t_rp
                    busy2 = where(conflict, pre_done, busy1)
                    act_start = maximum(la + t_rc, busy2)
                    row_ready = act_start + t_rcd
                    earliest = where(hit_v, busy1, row_ready) + t_cl
                    sb_v = sb[v]
                    done = maximum(earliest, bus_f[sb_v]) + t_bus
                    bus_f[sb_v] = done
                    finish[v] = done
                    if closed_page:
                        closed_busy = maximum(act_start + t_ras,
                                              done) + t_rp
                        busy_f[gv] = where(hit_v, busy0, closed_busy)
                        open_f[gv] = where(hit_v, row_v, _CLOSED)
                    else:
                        busy_f[gv] = where(hit_v, busy0, row_ready)
                        open_f[gv] = row_v
                    last_f[gv] = where(hit_v, la, act_start)
                    hits_c[cs[v]] += hit_v
                    conflicts_c[cs[v]] += conflict
                for lane in escapes:
                    cell = int(cs[lane])
                    gb_l = int(gb[lane])
                    try:
                        finish[lane] = self._service_escape(
                            cell, gb_l // n_banks, gb_l % n_banks,
                            int(row[lane]), int(now[lane]), int(g[lane]),
                            int(sb[lane]))
                    except Exception as exc:  # noqa: BLE001
                        self._fail_cell(cell, exc)
                        finish[lane] = -1
                        failed = True
            if failed:
                keep = finish >= 0
                cs = cs[keep]
                js = js[keep]
                finish = finish[keep]
                full = False
                if cs.size == 0:
                    step_seq += 1
                    continue
                sidx = cs * slots + js
            # Completion bookkeeping + next fetch per retired slot.
            if full:
                fc = cells_ncores + js // mlp
                completed_f[fc] += 1
                maximum(end_time, finish, out=end_time)
                can = issued_f[fc] < budgets
            else:
                fc = cs * ncores + js // mlp
                completed_f[fc] += 1
                end_time[cs] = maximum(end_time[cs], finish)
                can = issued_f[fc] < budgets[cs]
            if can.all():
                flats = fc
                kidx = sidx
                finish_b = finish
            else:
                fi = nonzero(can)[0]
                flats = fc[fi]
                kidx = sidx[fi]
                finish_b = finish[fi]
                ni = nonzero(~can)[0]
                key_flat[sidx[ni]] = _IDLE
                done_mask = completed_f[fc[ni]] >= budgets[cs[ni]]
                di = ni[done_mask]
                if di.size:
                    self.finish_f[fc[di]] = finish[di]
            if flats.size:
                index = issued_f[flats] % lengths_f[flats]
                position = offsets_f[flats] + index
                issued_f[flats] += 1
                word = flat_word[position]
                next_time = finish_b + (word >> meta_bits)
                if int(next_time.max()) >= time_limit:
                    raise OverflowError(
                        "simulated time exceeds key-packing range")
                key_flat[kidx] = (next_time << shift) | step_seq
                meta_flat[kidx] = word & meta_mask
            step_seq += 1

    # ------------------------------------------------------------------
    # Result assembly (mirrors repro.sim.runner._finish)
    # ------------------------------------------------------------------
    def result(self, position: int) -> RunResult:
        item = self.members[position][1]
        ncores = self.ncores
        end_time = int(self.end_time[position])
        finish_times = []
        for core in range(ncores):
            finish = int(self.finish_f[position * ncores + core])
            finish_times.append(finish if finish >= 0 else end_time)
        completed = int(self.completed_f[position * ncores:
                                         (position + 1) * ncores].sum())
        commands = int(self.mit_cmds_c[position])
        rows_mitigated = int(self.rows_mit_c[position])
        cell_policies = self.policies[position]
        # Every vector-path miss is exactly one ACT; the escape path
        # counts its own ACTs (service + explicit samples) in acts_c.
        hits = int(self.hits_c[position])
        activations = (completed - hits - int(self.esc_c[position])
                       + int(self.acts_c[position]))
        return RunResult(
            workload=item.traces[0].name if item.traces else "empty",
            policy=item.policy_name,
            finish_times_ps=finish_times,
            end_time_ps=end_time,
            requests_completed=completed,
            activations=activations,
            row_hits=int(self.hits_c[position]),
            row_conflicts=int(self.conflicts_c[position]),
            mitigation_commands=commands,
            rows_mitigated=rows_mitigated,
            average_rlp=rows_mitigated / commands if commands else 0.0,
            bus_busy_ps=completed * self.t_bus,
            subchannels=self.n_sub,
            policy_summaries=([policy.summary()
                               for policy in cell_policies]
                              if cell_policies is not None else []),
        )


def run_batch(system: SystemConfig, items: list[BatchItem],
              collect_errors: bool = False
              ) -> list[RunResult | BatchCellError]:
    """Run a batch of cells sharing one :class:`SystemConfig`.

    Returns one outcome per item, in order.  With
    ``collect_errors=False`` (the default) the first failing cell's
    original exception is raised; with ``collect_errors=True`` a failing
    cell yields a :class:`BatchCellError` in its slot and every other
    cell still completes — the executor uses this to retry failed
    members individually while caching the survivors.

    Items carrying telemetry (explicit or ambient) run on the scalar
    engine inside the batch; everything else streams through the
    columnar step loop.  Either way each cell's
    :meth:`RunResult.to_json` is byte-identical to
    ``run_simulation_reference``.
    """
    outcomes: list[RunResult | BatchCellError | None] = [None] * len(items)
    engine_members: list[tuple[int, BatchItem]] = []
    ambient = obs_runtime.active()
    for index, item in enumerate(items):
        telemetry = item.telemetry if item.telemetry is not None else ambient
        if telemetry is not None:
            try:
                outcomes[index] = run_simulation(
                    system, item.traces, item.sim, item.policy_factory,
                    item.policy_name, telemetry=telemetry)
            except Exception as exc:  # noqa: BLE001 - isolate the cell
                error = BatchCellError(index,
                                       f"{type(exc).__name__}: {exc}")
                error.cause = exc
                error.__cause__ = exc
                outcomes[index] = error
        else:
            engine_members.append((index, item))
    if engine_members:
        engine = _BatchEngine(system, engine_members)
        engine.run()
        for position, (index, _) in enumerate(engine_members):
            error = engine.errors.get(position)
            outcomes[index] = (error if error is not None
                               else engine.result(position))
    if not collect_errors:
        for outcome in outcomes:
            if isinstance(outcome, BatchCellError):
                raise (outcome.cause if outcome.cause is not None
                       else outcome)
    return outcomes  # type: ignore[return-value]


def run_simulation_batched(system: SystemConfig,
                           traces: list[MemoryTrace],
                           sim: SimConfig,
                           policy_factory: PolicyFactory | None = None,
                           policy_name: str = "none",
                           telemetry=None) -> RunResult:
    """Single-cell convenience wrapper over :func:`run_batch`.

    Signature-compatible with :func:`repro.sim.runner.run_simulation`,
    which lets the identity tests sweep the backend axis uniformly.
    """
    outcome = run_batch(system, [BatchItem(
        traces=traces, sim=sim, policy_factory=policy_factory,
        policy_name=policy_name, telemetry=telemetry)])[0]
    return outcome  # type: ignore[return-value]
