"""Simulation runner: wire cores, MC and policies together and run.

The run is a closed queueing network (see :mod:`repro.cpu.core`): every
MLP slot of every core cycles between thinking and memory service.  The
event queue orders slot wake-ups; request service is computed
synchronously against the bank state machines, which is exact for the
arrival-ordered, per-bank-FIFO scheduling this model uses.

Two implementations of the event loop live here:

* :func:`run_simulation` — the optimized hot path.  It keeps the event
  heap as a bare list of packed ``(time, sequence, core, slot,
  subchannel, bank, row)`` tuples driven by the module-level
  :func:`heapq.heappush`/:func:`heapq.heappop`, and inlines the fetch
  bookkeeping of :meth:`~repro.cpu.core.Core.fetch` against the trace's
  flat Python-int columns — zero allocations per event beyond the heap
  entry itself.
* :func:`run_simulation_reference` — the straightforward loop over
  :class:`~repro.sim.engine.EventQueue` and
  :meth:`~repro.cpu.core.Core.fetch` the optimized path was derived
  from.  It is the executable specification: both must produce
  **byte-identical** :meth:`~repro.sim.results.RunResult.to_json` and
  telemetry output for any input (``tests/test_engine_identity.py``
  and the checked-in goldens under ``tests/data/goldens/`` pin this).

Invariants any further optimization must keep (see
``docs/architecture.md``):

* events at equal timestamps are serviced in FIFO push order (the
  sequence tie-break);
* per-core fetch order follows completion order exactly (a slot fetches
  its next request the moment its previous one completes);
* telemetry reads simulator state but never steers it, and the
  timeline's ``queue_depth`` closure is detached even when a policy or
  bank model raises.
"""

from __future__ import annotations

import time
from heapq import heappop, heappush

from repro.cpu.core import Core
from repro.mc.controller import MemoryController
from repro.mc.policy import PolicyFactory
from repro.obs import runtime as obs_runtime
from repro.obs.spans import KIND_ENGINE
from repro.sim.config import SimConfig, SystemConfig
from repro.sim.engine import EventQueue
from repro.sim.results import ComparisonResult, RunResult
from repro.workloads.trace import MemoryTrace


def _setup(system: SystemConfig, traces: list[MemoryTrace],
           sim: SimConfig, policy_factory: PolicyFactory | None,
           policy_name: str, telemetry):
    """Shared run preamble: validate, begin telemetry, build MC+cores."""
    if len(traces) != system.num_cores:
        raise ValueError(
            f"expected {system.num_cores} traces, got {len(traces)}")
    if telemetry is None:
        telemetry = obs_runtime.active()
    workload = traces[0].name if traces else "empty"
    if telemetry is not None:
        telemetry.begin_run(workload, policy_name, sim.seed)
    mc = MemoryController(system.organization, system.timing,
                          policy_factory, seed=sim.seed,
                          page_policy=system.page_policy,
                          telemetry=telemetry)
    cores = [Core(i, traces[i], sim.requests_per_core, system.mlp_per_core)
             for i in range(system.num_cores)]
    return mc, cores, workload, telemetry


def _finish(mc, cores, workload: str, policy_name: str, completed: int,
            end_time: int, system: SystemConfig, telemetry,
            loop_seconds: float) -> RunResult:
    """Shared run epilogue: assemble the result, close out telemetry."""
    finish_times = [core.finish_time_ps if core.finish_time_ps is not None
                    else end_time for core in cores]
    result = RunResult(
        workload=workload,
        policy=policy_name,
        finish_times_ps=finish_times,
        end_time_ps=end_time,
        requests_completed=completed,
        activations=mc.total_activations(),
        row_hits=mc.total_row_hits(),
        row_conflicts=mc.total_row_conflicts(),
        mitigation_commands=mc.total_mitigation_commands(),
        rows_mitigated=mc.device.total_mitigated_rows(),
        average_rlp=mc.average_rlp(),
        bus_busy_ps=mc.bus_busy_ps(),
        subchannels=system.organization.subchannels,
        policy_summaries=mc.policy_summaries(),
    )
    if telemetry is not None:
        telemetry.end_run(result, events=completed, seconds=loop_seconds)
    return result


def run_simulation(system: SystemConfig, traces: list[MemoryTrace],
                   sim: SimConfig,
                   policy_factory: PolicyFactory | None = None,
                   policy_name: str = "none",
                   telemetry=None) -> RunResult:
    """Run one closed-loop simulation to completion.

    Parameters
    ----------
    system:
        Hardware shape (timing, organization, cores, MLP).
    traces:
        One trace per core (wraps if shorter than the request budget).
    sim:
        Request budget and seed.
    policy_factory:
        Mitigation policy to install per sub-channel (``None`` for the
        unprotected baseline).
    policy_name:
        Label recorded in the result.
    telemetry:
        Optional :class:`repro.obs.Telemetry`.  When ``None``, the
        ambient instance (:mod:`repro.obs.runtime`) is used if one has
        been activated; otherwise the run is entirely uninstrumented.
        Telemetry only reads simulator state, so the returned
        :class:`RunResult` is bit-identical with it on or off.
    """
    mc, cores, workload, telemetry = _setup(system, traces, sim,
                                            policy_factory, policy_name,
                                            telemetry)
    controllers = mc.controllers
    # Bare-list heap of (time, sequence, core, slot, sub, bank, row)
    # tuples: unique monotone sequence numbers reproduce EventQueue's
    # FIFO tie-break exactly (comparison never reaches the payload).
    heap: list[tuple[int, int, int, int, int, int, int]] = []
    sequence = 0
    for core in cores:
        sub_col = core.sub_col
        bank_col = core.bank_col
        row_col = core.row_col
        gap_col = core.gap_col
        length = core._length
        for slot in range(core.mlp):
            if core.issued >= core.budget:
                break
            index = core.issued % length
            core.issued += 1
            heappush(heap, (gap_col[index], sequence, core.core_id, slot,
                            sub_col[index], bank_col[index],
                            row_col[index]))
            sequence += 1
    loop_started = 0.0
    spans = None
    loop_span = None
    if telemetry is not None:
        telemetry.timeline.queue_depth = lambda: len(heap)
        loop_started = time.perf_counter()
        spans = telemetry.spans
        if spans is not None:
            # Span begin/end brackets the loop — zero per-event cost.
            loop_span = spans.begin("engine:event_loop", kind=KIND_ENGINE)
    completed = 0
    end_time = 0
    try:
        while heap:
            now, _, core_index, slot, sub, bank, row = heappop(heap)
            finish = controllers[sub].service(bank, row, now)
            core = cores[core_index]
            core.completed += 1
            completed += 1
            if finish > end_time:
                end_time = finish
            issued = core.issued
            if issued < core.budget:
                index = issued % core._length
                core.issued = issued + 1
                heappush(heap, (finish + core.gap_col[index], sequence,
                                core_index, slot, core.sub_col[index],
                                core.bank_col[index], core.row_col[index]))
                sequence += 1
            elif core.completed >= core.budget:
                core.finish_time_ps = finish
    finally:
        # Always detach the queue-depth closure: leaving it behind after
        # a policy/bank exception would leak a dead heap into a shared
        # Telemetry and poison later runs' timeline samples.
        if telemetry is not None:
            telemetry.timeline.queue_depth = None
        if loop_span is not None:
            spans.end(loop_span, meta={"events": completed})
    loop_seconds = (time.perf_counter() - loop_started
                    if telemetry is not None else 0.0)
    if spans is not None:
        with spans.span("engine:finish", kind=KIND_ENGINE):
            return _finish(mc, cores, workload, policy_name, completed,
                           end_time, system, telemetry, loop_seconds)
    return _finish(mc, cores, workload, policy_name, completed, end_time,
                   system, telemetry, loop_seconds)


def run_simulation_reference(system: SystemConfig,
                             traces: list[MemoryTrace],
                             sim: SimConfig,
                             policy_factory: PolicyFactory | None = None,
                             policy_name: str = "none",
                             telemetry=None) -> RunResult:
    """Reference event loop (pre-overhaul code path).

    Semantically identical to :func:`run_simulation` but written against
    the plain :class:`EventQueue`/:meth:`Core.fetch` API, with the
    scheduling-in-the-past guard active.  Kept as the executable
    specification for the byte-identity tests; use it when debugging a
    suspected hot-path divergence.
    """
    mc, cores, workload, telemetry = _setup(system, traces, sim,
                                            policy_factory, policy_name,
                                            telemetry)
    queue = EventQueue()
    for core in cores:
        for slot in range(core.mlp):
            fetched = core.fetch(slot)
            if fetched is None:
                break
            request, gap = fetched
            queue.push(gap, request)
    loop_started = 0.0
    spans = None
    loop_span = None
    if telemetry is not None:
        telemetry.timeline.queue_depth = lambda: len(queue)
        loop_started = time.perf_counter()
        spans = telemetry.spans
        if spans is not None:
            loop_span = spans.begin("engine:event_loop", kind=KIND_ENGINE)
    completed = 0
    end_time = 0
    try:
        while queue:
            now, request = queue.pop()
            finish = mc.service(request.subchannel, request.bank,
                                request.row, now)
            core = cores[request.core]
            core.complete(finish)
            completed += 1
            if finish > end_time:
                end_time = finish
            fetched = core.fetch(request.slot)
            if fetched is not None:
                next_request, gap = fetched
                queue.push(finish + gap, next_request)
    finally:
        if telemetry is not None:
            telemetry.timeline.queue_depth = None
        if loop_span is not None:
            spans.end(loop_span, meta={"events": completed})
    loop_seconds = (time.perf_counter() - loop_started
                    if telemetry is not None else 0.0)
    if spans is not None:
        with spans.span("engine:finish", kind=KIND_ENGINE):
            return _finish(mc, cores, workload, policy_name, completed,
                           end_time, system, telemetry, loop_seconds)
    return _finish(mc, cores, workload, policy_name, completed, end_time,
                   system, telemetry, loop_seconds)


def run_comparison(system: SystemConfig, traces: list[MemoryTrace],
                   sim: SimConfig, policy_factory: PolicyFactory,
                   policy_name: str,
                   baseline: RunResult | None = None) -> ComparisonResult:
    """Run a mitigated configuration against the unprotected baseline.

    The baseline run can be passed in (and reused across policies for the
    same workload/seed) or computed on the fly.
    """
    if baseline is None:
        baseline = run_simulation(system, traces, sim)
    mitigated = run_simulation(system, traces, sim, policy_factory,
                               policy_name)
    return ComparisonResult(baseline=baseline, mitigated=mitigated)
