"""Simulation runner: wire cores, MC and policies together and run.

The run is a closed queueing network (see :mod:`repro.cpu.core`): every
MLP slot of every core cycles between thinking and memory service.  The
event queue orders slot wake-ups; request service is computed
synchronously against the bank state machines, which is exact for the
arrival-ordered, per-bank-FIFO scheduling this model uses.
"""

from __future__ import annotations

import time

from repro.cpu.core import Core
from repro.mc.controller import MemoryController
from repro.mc.policy import PolicyFactory
from repro.obs import runtime as obs_runtime
from repro.sim.config import SimConfig, SystemConfig
from repro.sim.engine import EventQueue
from repro.sim.results import ComparisonResult, RunResult
from repro.workloads.trace import MemoryTrace


def run_simulation(system: SystemConfig, traces: list[MemoryTrace],
                   sim: SimConfig,
                   policy_factory: PolicyFactory | None = None,
                   policy_name: str = "none",
                   telemetry=None) -> RunResult:
    """Run one closed-loop simulation to completion.

    Parameters
    ----------
    system:
        Hardware shape (timing, organization, cores, MLP).
    traces:
        One trace per core (wraps if shorter than the request budget).
    sim:
        Request budget and seed.
    policy_factory:
        Mitigation policy to install per sub-channel (``None`` for the
        unprotected baseline).
    policy_name:
        Label recorded in the result.
    telemetry:
        Optional :class:`repro.obs.Telemetry`.  When ``None``, the
        ambient instance (:mod:`repro.obs.runtime`) is used if one has
        been activated; otherwise the run is entirely uninstrumented.
        Telemetry only reads simulator state, so the returned
        :class:`RunResult` is bit-identical with it on or off.
    """
    if len(traces) != system.num_cores:
        raise ValueError(
            f"expected {system.num_cores} traces, got {len(traces)}")
    if telemetry is None:
        telemetry = obs_runtime.active()
    workload = traces[0].name if traces else "empty"
    if telemetry is not None:
        telemetry.begin_run(workload, policy_name, sim.seed)
    mc = MemoryController(system.organization, system.timing,
                          policy_factory, seed=sim.seed,
                          page_policy=system.page_policy,
                          telemetry=telemetry)
    cores = [Core(i, traces[i], sim.requests_per_core, system.mlp_per_core)
             for i in range(system.num_cores)]
    queue = EventQueue()
    for core in cores:
        for slot in range(core.mlp):
            fetched = core.fetch(slot)
            if fetched is None:
                break
            request, gap = fetched
            queue.push(gap, request)
    if telemetry is not None:
        telemetry.timeline.queue_depth = lambda: len(queue)
        loop_started = time.perf_counter()
    completed = 0
    end_time = 0
    while queue:
        now, request = queue.pop()
        finish = mc.service(request.subchannel, request.bank, request.row,
                            now)
        core = cores[request.core]
        core.complete(finish)
        completed += 1
        if finish > end_time:
            end_time = finish
        fetched = core.fetch(request.slot)
        if fetched is not None:
            next_request, gap = fetched
            queue.push(finish + gap, next_request)
    finish_times = [core.finish_time_ps if core.finish_time_ps is not None
                    else end_time for core in cores]
    result = RunResult(
        workload=workload,
        policy=policy_name,
        finish_times_ps=finish_times,
        end_time_ps=end_time,
        requests_completed=completed,
        activations=mc.total_activations(),
        row_hits=mc.total_row_hits(),
        row_conflicts=mc.total_row_conflicts(),
        mitigation_commands=mc.total_mitigation_commands(),
        rows_mitigated=mc.device.total_mitigated_rows(),
        average_rlp=mc.average_rlp(),
        bus_busy_ps=mc.bus_busy_ps(),
        subchannels=system.organization.subchannels,
        policy_summaries=mc.policy_summaries(),
    )
    if telemetry is not None:
        telemetry.end_run(result, events=completed,
                          seconds=time.perf_counter() - loop_started)
        telemetry.timeline.queue_depth = None
    return result


def run_comparison(system: SystemConfig, traces: list[MemoryTrace],
                   sim: SimConfig, policy_factory: PolicyFactory,
                   policy_name: str,
                   baseline: RunResult | None = None) -> ComparisonResult:
    """Run a mitigated configuration against the unprotected baseline.

    The baseline run can be passed in (and reused across policies for the
    same workload/seed) or computed on the fly.
    """
    if baseline is None:
        baseline = run_simulation(system, traces, sim)
    mitigated = run_simulation(system, traces, sim, policy_factory,
                               policy_name)
    return ComparisonResult(baseline=baseline, mitigated=mitigated)
