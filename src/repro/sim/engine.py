"""Minimal discrete-event engine (integer-picosecond clock).

The memory-system simulation is a closed queueing network: each core owns a
handful of MLP slots that cycle between *thinking* (compute between LLC
misses) and *being serviced* by the memory controller.  The engine is a
plain binary heap of ``(time, sequence, payload)`` entries; the sequence
number makes ordering deterministic for simultaneous events, which keeps
every simulation bit-reproducible for a given seed.

The heap is deliberately exposed as the public :attr:`EventQueue.heap`
list: the hot loop in :func:`repro.sim.runner.run_simulation` operates on
a bare list with the module-level :func:`heapq.heappush` /
:func:`heapq.heappop` and a manually threaded sequence counter, skipping
the per-event method-call overhead of this wrapper.  ``EventQueue`` is
the reference container (and the one non-hot-path callers should use);
any alternative loop must preserve its ordering contract — ascending
time, FIFO among equal timestamps — which ``tests/test_engine.py`` pins
with golden-ordering fixtures.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Iterator


class EventQueue:
    """A deterministic time-ordered event queue.

    Events are arbitrary payloads scheduled at integer-picosecond times.
    Ties are broken by insertion order so that two events scheduled for the
    same instant are always popped in the order they were pushed.
    """

    __slots__ = ("heap", "_sequence", "now_ps")

    def __init__(self) -> None:
        #: The bare ``(time_ps, sequence, payload)`` binary heap.
        self.heap: list[tuple[int, int, Any]] = []
        self._sequence = 0
        self.now_ps = 0

    def __len__(self) -> int:
        return len(self.heap)

    def __bool__(self) -> bool:
        return bool(self.heap)

    def push(self, time_ps: int, payload: Any) -> None:
        """Schedule ``payload`` at ``time_ps``.

        Scheduling in the past is a programming error and raises
        :class:`ValueError`; it would silently reorder causality otherwise.
        """
        if time_ps < self.now_ps:
            raise ValueError(
                f"cannot schedule event at {time_ps} ps; now is "
                f"{self.now_ps} ps")
        heappush(self.heap, (time_ps, self._sequence, payload))
        self._sequence += 1

    def pop(self) -> tuple[int, Any]:
        """Remove and return the earliest ``(time_ps, payload)`` pair."""
        if not self.heap:
            raise IndexError("pop from an empty event queue")
        time_ps, _, payload = heappop(self.heap)
        self.now_ps = time_ps
        return time_ps, payload

    def peek_time(self) -> int | None:
        """Time of the earliest pending event, or ``None`` if empty."""
        if not self.heap:
            return None
        return self.heap[0][0]

    def drain(self) -> Iterator[tuple[int, Any]]:
        """Iterate over all events in time order, consuming them."""
        while self.heap:
            yield self.pop()
