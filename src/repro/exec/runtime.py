"""Ambient sweep executor: a per-thread active :class:`SweepExecutor`.

Experiment runners are invoked through a registry with a fixed
``run(quick=..., seed=...)`` signature, so an executor cannot be threaded
through every call chain (the same constraint that shaped
:mod:`repro.obs.runtime`).  The CLI (or a test/benchmark harness)
*activates* an executor here and
:func:`repro.experiments.common.sweep_designs` picks it up — which is
what lets one executor's memo and cache span every experiment of an
invocation.

Activation is **thread-local**: every activate/read pair in the codebase
happens on one thread (the CLI main thread, a service job worker, a test
body), and the sweep service runs up to ``--job-concurrency`` jobs on
concurrent worker threads, each under its own ambient binding.  A
process-wide slot would let one job's executor (or, worse, one job's
telemetry) leak into a neighbour mid-run; thread-local scoping makes the
concurrent case exactly as isolated as the serial one.  Note that the
*executor object* is still typically shared across threads — the sweep
service activates the same :class:`~repro.exec.SweepExecutor` on every
worker, which is what makes its memo/cache/in-flight dedup span jobs.

With nothing activated on the current thread, ``sweep_designs`` falls
back to a private serial executor per sweep, which preserves the
historical baseline-sharing behaviour exactly.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

_local = threading.local()


def activate(executor) -> None:
    """Make ``executor`` the ambient instance on this thread (``None``
    to clear)."""
    _local.active = executor


def active():
    """This thread's ambient executor, or ``None``."""
    return getattr(_local, "active", None)


def deactivate() -> None:
    """Clear this thread's ambient executor."""
    activate(None)


@contextmanager
def activated(executor):
    """Scope ``executor`` as this thread's ambient for a ``with``
    block."""
    previous = active()
    activate(executor)
    try:
        yield executor
    finally:
        activate(previous)
