"""Ambient sweep executor: a process-wide active :class:`SweepExecutor`.

Experiment runners are invoked through a registry with a fixed
``run(quick=..., seed=...)`` signature, so an executor cannot be threaded
through every call chain (the same constraint that shaped
:mod:`repro.obs.runtime`).  The CLI (or a test/benchmark harness)
*activates* an executor here and
:func:`repro.experiments.common.sweep_designs` picks it up — which is
what lets one executor's memo and cache span every experiment of an
invocation.

With nothing activated, ``sweep_designs`` falls back to a private
serial executor per sweep, which preserves the historical
baseline-sharing behaviour exactly.
"""

from __future__ import annotations

from contextlib import contextmanager

_active = None


def activate(executor) -> None:
    """Make ``executor`` the ambient instance (``None`` to clear)."""
    global _active
    _active = executor


def active():
    """The ambient executor, or ``None``."""
    return _active


def deactivate() -> None:
    """Clear the ambient executor."""
    activate(None)


@contextmanager
def activated(executor):
    """Scope ``executor`` as ambient for a ``with`` block."""
    previous = _active
    activate(executor)
    try:
        yield executor
    finally:
        activate(previous)
