"""Canonical fingerprints for simulation cells.

The run cache (:mod:`repro.exec.cache`) is content-addressed: every
simulation cell is keyed by a SHA-256 digest of a *canonical encoding* of
everything that determines its :class:`~repro.sim.results.RunResult` —
the workload profile, the trace-building system, the (possibly
overridden) run system, the :class:`~repro.sim.config.SimConfig` and the
policy spec.  The encoding is a pure-data JSON document:

* dataclasses become ``{"__dataclass__": "module:Qualname", **fields}``
  so that renaming a config class or adding a field invalidates old
  entries instead of silently aliasing them;
* enums become ``{"__enum__": "module:Qualname", "value": ...}``;
* containers are encoded recursively; dict keys must be strings;
* only JSON-exact scalars are allowed (``str``/``int``/``float``/
  ``bool``/``None``) — floats round-trip exactly through ``repr`` so the
  digest is platform-stable.

Anything else — in particular a bare ``lambda`` policy factory — raises
:class:`FingerprintError`, which the executor treats as "run inline,
never cache".  :data:`CACHE_SCHEMA_VERSION` is folded into every digest;
bump it whenever the meaning of a cached result changes (new RunResult
fields, changed policy defaults, simulator semantics).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json

#: Version of the cell-key/entry layout.  Part of every fingerprint, so
#: bumping it invalidates the whole cache at once.
CACHE_SCHEMA_VERSION = 1


class FingerprintError(TypeError):
    """Raised when an object has no canonical (stable) encoding."""


def _type_ref(obj: object) -> str:
    cls = type(obj)
    return f"{cls.__module__}:{cls.__qualname__}"


def canonical(obj):
    """Encode ``obj`` as canonical pure-JSON data (see module docs)."""
    if obj is None or isinstance(obj, (str, bool, int, float)):
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": _type_ref(obj), "value": canonical(obj.value)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        encoded = {"__dataclass__": _type_ref(obj)}
        for field in dataclasses.fields(obj):
            encoded[field.name] = canonical(getattr(obj, field.name))
        return encoded
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, dict):
        out = {}
        for key in sorted(obj):
            if not isinstance(key, str):
                raise FingerprintError(
                    f"dict keys must be strings, got {key!r}")
            out[key] = canonical(obj[key])
        return out
    raise FingerprintError(
        f"no canonical encoding for {type(obj).__name__}: {obj!r}")


def fingerprint(**parts) -> str:
    """SHA-256 hex digest of the canonical encoding of ``parts``.

    The schema version is always mixed in, so callers only list the
    cell-specific parts.
    """
    document = canonical(dict(parts, schema=CACHE_SCHEMA_VERSION))
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
