"""Per-cell execution policy, terminal failure records and checkpoints.

PR 2's executor was fail-fast: one crashed worker, one hung cell or one
SIGTERM aborted the whole sweep and discarded every completed cell that
had not reached the disk cache.  This module supplies the pieces that
make :class:`~repro.exec.executor.SweepExecutor` fault-tolerant:

* :class:`CellPolicy` — per-attempt timeout and bounded retries with
  exponential backoff.  The backoff jitter is *derived from the cell
  fingerprint*, so two runs of the same sweep sleep identically:
  resilience never introduces nondeterminism.
* :class:`FailedCell` / :class:`SweepFailure` — a cell that exhausts its
  retry budget becomes a terminal record instead of an exception tearing
  down the pool; the sweep finishes (and caches) every other cell first,
  then raises one :class:`SweepFailure` summarising the casualties.
* :func:`validate_result` — structural sanity check on whatever comes
  back across the process boundary, so a corrupted result is retried
  like a crash rather than silently rendered into a table.
* :class:`SweepCheckpoint` — an append-only journal of completed cell
  fingerprints kept next to the run cache.  An interrupted ``--mode
  full`` sweep relaunched with ``--resume`` loads the journal, serves finished
  cells from the cache and re-submits only the remainder; output stays
  byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.sim.results import RunResult

#: Default retry budget: a cell may fail twice and still succeed.
DEFAULT_RETRIES = 2

#: Default backoff base / cap (seconds) between attempts of one cell.
DEFAULT_BACKOFF_S = 0.05
DEFAULT_BACKOFF_CAP_S = 2.0


class CellTimeout(RuntimeError):
    """An attempt exceeded its :class:`CellPolicy` timeout."""


def backoff_delay(fp: str, attempt: int,
                  base_s: float = DEFAULT_BACKOFF_S,
                  cap_s: float = DEFAULT_BACKOFF_CAP_S) -> float:
    """Deterministic exponential backoff with fingerprint-derived jitter.

    The delay before ``attempt`` (1-based: the first retry is attempt 1)
    is ``min(cap, base * 2**(attempt-1))`` scaled into ``[0.5, 1.0)`` by
    a jitter hashed from ``(fp, attempt)`` — decorrelated across cells,
    identical across runs.
    """
    exp = min(cap_s, base_s * (2 ** max(attempt - 1, 0)))
    digest = hashlib.sha256(f"{fp}:{attempt}".encode("ascii")).digest()
    jitter = int.from_bytes(digest[:8], "big") / 2 ** 64
    return exp * (0.5 + 0.5 * jitter)


@dataclass(frozen=True)
class CellPolicy:
    """How hard the executor tries before declaring a cell dead.

    Parameters
    ----------
    timeout_s:
        Per-attempt wall-clock budget (``None`` = unlimited).  Pooled
        attempts time out the future; inline attempts run on a watchdog
        thread that is abandoned on expiry.
    retries:
        Failed attempts retried before the cell becomes a
        :class:`FailedCell` (total attempts = ``retries + 1``).
    backoff_s / backoff_cap_s:
        Exponential backoff base and cap between attempts.
    """

    timeout_s: float | None = None
    retries: int = DEFAULT_RETRIES
    backoff_s: float = DEFAULT_BACKOFF_S
    backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_cap_s < self.backoff_s:
            raise ValueError("need 0 <= backoff_s <= backoff_cap_s")

    @property
    def attempts(self) -> int:
        """Total attempts a cell is given."""
        return self.retries + 1

    def backoff(self, fp: str, attempt: int) -> float:
        """Delay before ``attempt`` (1-based) of cell ``fp``."""
        return backoff_delay(fp, attempt, self.backoff_s,
                             self.backoff_cap_s)


@dataclass(frozen=True)
class FailedCell:
    """Terminal record of a cell that exhausted its retry budget."""

    fingerprint: str
    workload: str
    policy_name: str
    attempts: int
    kind: str  # "crash" | "timeout" | "corrupt" | "pool"
    error: str

    def describe(self) -> str:
        return (f"{self.workload}/{self.policy_name} "
                f"[{self.fingerprint[:12]}]: {self.kind} after "
                f"{self.attempts} attempts: {self.error}")


class SweepFailure(RuntimeError):
    """One or more cells failed terminally (raised after the sweep ran
    and cached everything else, so a relaunch only redoes the losers)."""

    def __init__(self, failures: list[FailedCell]) -> None:
        self.failures = list(failures)
        lines = "\n  ".join(f.describe() for f in self.failures)
        super().__init__(
            f"{len(self.failures)} cell(s) failed terminally:\n  {lines}")


def validate_result(result) -> str | None:
    """Structural sanity check; returns an error string or ``None``.

    Results cross a process boundary and (via the cache) a filesystem;
    anything that is not a well-formed :class:`RunResult` is treated as
    a failed attempt and retried rather than rendered.
    """
    if not isinstance(result, RunResult):
        return f"expected RunResult, got {type(result).__name__}"
    if result.end_time_ps < 0 or result.requests_completed < 0:
        return (f"negative counters (end_time_ps={result.end_time_ps}, "
                f"requests={result.requests_completed})")
    if not result.workload or not result.policy:
        return "missing workload/policy labels"
    return None


def validate_snapshot(snapshot) -> str | None:
    """Structural check of a cell's telemetry snapshot.

    Under telemetry capture every successful attempt must also deliver a
    :class:`~repro.obs.snapshot.TelemetrySnapshot`; anything else (a
    worker that lost it, a mangled pickle) is treated like a corrupt
    result and retried.
    """
    from repro.obs.snapshot import TelemetrySnapshot
    if not isinstance(snapshot, TelemetrySnapshot):
        return (f"expected TelemetrySnapshot, got "
                f"{type(snapshot).__name__}")
    if not isinstance(snapshot.spans, list):
        return (f"snapshot spans section is "
                f"{type(snapshot.spans).__name__}, expected list")
    return None


class SweepCheckpoint:
    """Append-only journal of completed cell fingerprints.

    One JSON line per completed cell, flushed on write, kept next to the
    run cache (``<cache>/checkpoint.jsonl`` by convention).  A fresh run
    truncates the journal; ``resume=True`` loads it instead, and the
    executor reports cells found both here and in the cache as *resumed*.
    Truncated trailing lines (a run killed mid-append) are ignored, so a
    checkpoint can never make a relaunch fail — at worst one cell is
    recomputed.
    """

    SCHEMA = 1

    def __init__(self, path: str | os.PathLike,
                 resume: bool = False) -> None:
        self.path = Path(path)
        self.resume = resume
        self._done: set[str] = set()
        self._previous: frozenset[str] = frozenset()
        self._handle = None
        if resume:
            self._previous = frozenset(self._load())
            self._done = set(self._previous)
        else:
            try:
                self.path.unlink()
            except OSError:
                pass

    def _load(self) -> set[str]:
        done: set[str] = set()
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn tail from a killed run
                    if isinstance(record, dict) and \
                            record.get("schema") == self.SCHEMA and \
                            isinstance(record.get("fp"), str):
                        done.add(record["fp"])
        except OSError:
            pass
        return done

    def was_done(self, fp: str) -> bool:
        """Whether ``fp`` completed in the interrupted run being resumed."""
        return fp in self._previous

    def __contains__(self, fp: str) -> bool:
        return fp in self._done

    def __len__(self) -> int:
        return len(self._done)

    def mark(self, fp: str) -> None:
        """Record ``fp`` as completed (idempotent, flushed immediately)."""
        if fp in self._done:
            return
        self._done.add(fp)
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps({"schema": self.SCHEMA, "fp": fp},
                                      sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the journal file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def describe(self) -> str:
        mode = "resume" if self.resume else "fresh"
        return (f"checkpoint[{self.path}]: {mode} done={len(self._done)} "
                f"previous={len(self._previous)}")
