"""Deterministic fault injection for sweep cells.

The resilience layer (:mod:`repro.exec.resilience`) is only trustworthy
if its failure paths are exercised, and real worker crashes are not
reproducible on demand.  This module injects failures *deterministically
by cell fingerprint*: a fault plan is a list of directives, each naming a
failure kind, a fingerprint selector and how many attempts it poisons.
Because fingerprints are content-addressed
(:mod:`repro.exec.fingerprint`), the same plan fails the same cells in
the same way on every machine, every run.

Plans come from the ``REPRO_FAULTS`` environment variable (read at cell
execution time, so worker processes inherit it across the fork) or are
installed in-process with :func:`install` for tests.  Directive grammar::

    REPRO_FAULTS="kind:selector[:count][@seconds];..."

* ``kind`` — one of

  - ``crash``   — raise :class:`InjectedCrash` before the simulation
    starts (an exception crossing the worker boundary);
  - ``abort``   — hard-kill the worker process with ``os._exit`` (breaks
    the whole pool: exercises :class:`BrokenProcessPool` handling and the
    serial fallback).  Outside a worker it degrades to ``crash`` so a
    fault plan can never kill the parent;
  - ``hang``    — sleep ``seconds`` (default 30) before running, so a
    per-cell timeout fires; without a timeout the cell is merely slow;
  - ``corrupt`` — skip the simulation and return a non-result sentinel,
    which the executor's result validation rejects.

* ``selector`` — a hex fingerprint prefix, or ``*`` for every cell.
* ``count`` — number of initial attempts to poison (default 1), so a
  retried cell succeeds once its attempt index reaches ``count``.
* ``@seconds`` — hang duration (``hang`` only).

Directives are matched in order; the first match wins, so specific
selectors should precede ``*`` catch-alls.  Examples::

    REPRO_FAULTS="crash:*:1"            # every cell crashes once
    REPRO_FAULTS="hang:ab@2;corrupt:cd" # fp ab... hangs 2s, cd... corrupts
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

#: Environment variable holding the ambient fault plan.
FAULTS_ENV = "REPRO_FAULTS"

#: Default sleep of a ``hang`` fault, chosen to exceed any sane per-cell
#: timeout while still letting an un-timed-out run finish eventually.
DEFAULT_HANG_SECONDS = 30.0

#: What a ``corrupt`` fault returns in place of a RunResult.
CORRUPT_SENTINEL = "<corrupted-by-fault-injection>"

KINDS = ("crash", "abort", "hang", "corrupt")

#: Set by the executor's worker initializer; gates ``abort`` so a fault
#: plan can only ever kill worker processes, never the parent.
_in_worker = False

#: In-process plan installed by tests (wins over the environment).
_installed: "FaultPlan | None" = None


class FaultError(ValueError):
    """Raised for an unparseable fault directive."""


class InjectedCrash(RuntimeError):
    """The exception raised by a ``crash`` (or inline ``abort``) fault."""


@dataclass(frozen=True)
class Fault:
    """One fault directive: kind, fingerprint selector, attempt budget."""

    kind: str
    selector: str
    count: int = 1
    seconds: float = DEFAULT_HANG_SECONDS

    def matches(self, fp: str, attempt: int) -> bool:
        """Whether this fault poisons ``fp``'s ``attempt`` (0-based)."""
        if attempt >= self.count:
            return False
        return self.selector == "*" or fp.startswith(self.selector)

    def describe(self) -> str:
        text = f"{self.kind}:{self.selector}"
        if self.count != 1:
            text += f":{self.count}"
        if self.kind == "hang" and self.seconds != DEFAULT_HANG_SECONDS:
            text += f"@{self.seconds:g}"
        return text


def _parse_directive(directive: str) -> Fault:
    spec, _, arg = directive.partition("@")
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise FaultError(
            f"bad fault directive {directive!r} "
            f"(expected kind:selector[:count][@seconds])")
    kind, selector = parts[0].strip(), parts[1].strip()
    if kind not in KINDS:
        raise FaultError(f"unknown fault kind {kind!r} "
                         f"(expected one of {', '.join(KINDS)})")
    if not selector:
        raise FaultError(f"empty selector in fault directive {directive!r}")
    count = 1
    if len(parts) == 3:
        try:
            count = int(parts[2])
        except ValueError:
            raise FaultError(f"bad count in fault directive "
                             f"{directive!r}") from None
        if count < 1:
            raise FaultError(f"count must be >= 1 in {directive!r}")
    seconds = DEFAULT_HANG_SECONDS
    if arg:
        if kind != "hang":
            raise FaultError(f"@seconds only applies to hang faults: "
                             f"{directive!r}")
        try:
            seconds = float(arg)
        except ValueError:
            raise FaultError(f"bad seconds in fault directive "
                             f"{directive!r}") from None
        if seconds <= 0:
            raise FaultError(f"seconds must be > 0 in {directive!r}")
    return Fault(kind=kind, selector=selector, count=count, seconds=seconds)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered list of fault directives (first match wins)."""

    faults: tuple[Fault, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS``-style directive string."""
        directives = [piece.strip()
                      for piece in spec.replace(",", ";").split(";")
                      if piece.strip()]
        return cls(faults=tuple(_parse_directive(d) for d in directives))

    def fault_for(self, fp: str | None, attempt: int) -> Fault | None:
        """The first directive poisoning ``fp`` at ``attempt``, if any."""
        if fp is None:
            return None
        for fault in self.faults:
            if fault.matches(fp, attempt):
                return fault
        return None

    def describe(self) -> str:
        return ";".join(fault.describe() for fault in self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)


def install(plan: FaultPlan | None) -> None:
    """Install an in-process fault plan (``None`` to clear).

    Wins over ``REPRO_FAULTS``; used by tests that inject into inline
    execution without touching the environment.
    """
    global _installed
    _installed = plan


def mark_worker() -> None:
    """Record that this process is a pool worker (enables ``abort``)."""
    global _in_worker
    _in_worker = True


def active_plan() -> FaultPlan | None:
    """The effective fault plan: installed, else parsed from the env."""
    if _installed is not None:
        return _installed
    spec = os.environ.get(FAULTS_ENV, "")
    if not spec:
        return None
    return FaultPlan.parse(spec)


def inject_before(fp: str | None, attempt: int) -> Fault | None:
    """Apply any pre-execution fault for (``fp``, ``attempt``).

    Raises for ``crash``, exits the process for ``abort`` (worker only;
    degrades to ``crash`` in the parent), sleeps for ``hang``.  Returns
    the matched ``corrupt`` fault — the caller substitutes the sentinel —
    or ``None`` when the cell is clean.
    """
    plan = active_plan()
    fault = plan.fault_for(fp, attempt) if plan else None
    if fault is None:
        return None
    if fault.kind == "abort" and _in_worker:
        os._exit(13)
    if fault.kind in ("crash", "abort"):
        raise InjectedCrash(
            f"injected {fault.kind} for cell {fp[:12]} "
            f"(attempt {attempt})")
    if fault.kind == "hang":
        time.sleep(fault.seconds)
        return None
    return fault  # corrupt
