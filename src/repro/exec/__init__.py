"""Sweep execution substrate: parallel fan-out and content-addressed reuse.

Public surface:

* :class:`SweepExecutor` / :class:`Cell` — run independent simulation
  cells across a worker pool (:mod:`repro.exec.executor`);
* :class:`RunCache` — content-addressed on-disk result cache
  (:mod:`repro.exec.cache`);
* :func:`fingerprint` / :func:`canonical` — stable cell fingerprints
  (:mod:`repro.exec.fingerprint`);
* :func:`spec_factory` / :class:`PolicySpec` — picklable,
  fingerprintable policy factories (:mod:`repro.exec.spec`);
* :class:`CellPolicy` / :class:`FailedCell` / :class:`SweepFailure` /
  :class:`SweepCheckpoint` — per-cell retry policy, terminal failure
  records and resumable checkpoints (:mod:`repro.exec.resilience`);
* :class:`FaultPlan` — deterministic fault injection for soak runs and
  tests (:mod:`repro.exec.faults`, ``REPRO_FAULTS``);
* :mod:`repro.exec.runtime` — the ambient executor the CLI activates.

Everything is loaded lazily: policy modules import
:mod:`repro.exec.spec` at definition time, and an eager import of the
executor here would cycle back through ``repro.sim`` into
``repro.mc.policy`` while it is still initialising.
"""

from __future__ import annotations

_LAZY = {
    "CACHE_SCHEMA_VERSION": ("repro.exec.fingerprint",
                             "CACHE_SCHEMA_VERSION"),
    "FingerprintError": ("repro.exec.fingerprint", "FingerprintError"),
    "canonical": ("repro.exec.fingerprint", "canonical"),
    "fingerprint": ("repro.exec.fingerprint", "fingerprint"),
    "PolicySpec": ("repro.exec.spec", "PolicySpec"),
    "spec_factory": ("repro.exec.spec", "spec_factory"),
    "CacheStats": ("repro.exec.cache", "CacheStats"),
    "RunCache": ("repro.exec.cache", "RunCache"),
    "CellPolicy": ("repro.exec.resilience", "CellPolicy"),
    "CellTimeout": ("repro.exec.resilience", "CellTimeout"),
    "FailedCell": ("repro.exec.resilience", "FailedCell"),
    "SweepCheckpoint": ("repro.exec.resilience", "SweepCheckpoint"),
    "SweepFailure": ("repro.exec.resilience", "SweepFailure"),
    "backoff_delay": ("repro.exec.resilience", "backoff_delay"),
    "validate_result": ("repro.exec.resilience", "validate_result"),
    "Fault": ("repro.exec.faults", "Fault"),
    "FaultPlan": ("repro.exec.faults", "FaultPlan"),
    "InjectedCrash": ("repro.exec.faults", "InjectedCrash"),
    "Cell": ("repro.exec.executor", "Cell"),
    "ExecutorStats": ("repro.exec.executor", "ExecutorStats"),
    "SweepExecutor": ("repro.exec.executor", "SweepExecutor"),
    "cell_fingerprint": ("repro.exec.executor", "cell_fingerprint"),
    "runtime": ("repro.exec.runtime", None),
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.exec' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
