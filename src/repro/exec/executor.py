"""Parallel sweep executor with memoised, cache-backed cells.

A *cell* is one independent simulation: build the (deterministic,
calibrated) traces for a workload, then run one policy configuration on
them.  Experiments decompose into flat lists of cells —
``sweep_designs`` submits ``(1 baseline + N designs) × workloads`` — and
:class:`SweepExecutor` executes such lists with three layers of reuse:

1. an **in-memory memo** spanning the executor's lifetime, so the shared
   unprotected baseline of a (workload, system, sim) triple is computed
   once per CLI invocation no matter how many experiments need it;
2. an optional **content-addressed disk cache**
   (:class:`~repro.exec.cache.RunCache`), making warm re-runs
   near-instant across invocations;
3. a **process pool** (``jobs > 1``) fanning the remaining cells out.

Every cell is deterministic — traces and policies derive all randomness
from the cell's own seeds — so execution order cannot change any result:
serial, parallel and cached paths return byte-identical
:class:`~repro.sim.results.RunResult` values, and the caller merges them
back in its own fixed order.

Cells whose policy is not a :class:`~repro.exec.spec.PolicySpec` (a bare
closure) cannot cross a process boundary or be fingerprinted; they are
executed inline in the parent and never cached — correct, just without
the speedups.

Telemetry (:mod:`repro.obs`) counts simulator events in-process and
journals every run, which a worker pool would split across processes and
a cache hit would elide entirely.  The executor therefore refuses to
parallelise or cache while ambient telemetry is active: it falls back to
plain inline execution and warns once on stderr (see
``docs/parallel.md``).
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.exec.cache import RunCache
from repro.exec.fingerprint import (FingerprintError, canonical,
                                    fingerprint)
from repro.exec.spec import PolicySpec
from repro.obs import runtime as obs_runtime
from repro.sim.config import SimConfig, SystemConfig
from repro.sim.results import RunResult
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class Cell:
    """One independent simulation: workload × system × sim × policy.

    ``trace_system`` is the system the traces are built (and calibrated)
    for; ``run_system`` is the system the run executes on.  They differ
    only for designs like PRAC that override hardware timings while
    keeping the baseline's traces, which is how the paper pairs those
    runs.
    """

    workload: WorkloadProfile
    trace_system: SystemConfig
    run_system: SystemConfig
    sim: SimConfig
    policy: PolicySpec | Callable | None
    policy_name: str

    def key(self) -> dict:
        """The cell's identity as canonical-encodable parts."""
        return {
            "workload": self.workload,
            "trace_system": self.trace_system,
            "run_system": self.run_system,
            "sim": self.sim,
            "policy": self.policy,
            "policy_name": self.policy_name,
        }


def cell_fingerprint(cell: Cell) -> str | None:
    """Content fingerprint of ``cell``, or ``None`` if not spec-backed."""
    if not (cell.policy is None or isinstance(cell.policy, PolicySpec)):
        return None
    try:
        return fingerprint(**cell.key())
    except FingerprintError:
        return None


def _worker_init() -> None:
    """Worker bootstrap: never inherit ambient telemetry across a fork."""
    obs_runtime.deactivate()


def _execute_cell(cell: Cell) -> tuple[RunResult, float]:
    """Run one cell to completion (worker- and parent-side entry point).

    Returns the result plus the engine wall-seconds (excluding trace
    building), which feed the executor's aggregate events/sec figure.
    """
    from repro.sim.runner import run_simulation
    from repro.workloads.builder import build_traces

    traces = build_traces(cell.workload, cell.trace_system, cell.sim)
    started = time.perf_counter()
    result = run_simulation(cell.run_system, traces, cell.sim,
                            cell.policy, cell.policy_name)
    return result, time.perf_counter() - started


@dataclass
class ExecutorStats:
    """Work accounting across one executor's lifetime."""

    cells: int = 0
    computed: int = 0
    inline: int = 0
    memo_hits: int = 0
    engine_events: int = 0
    engine_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def events_per_sec(self) -> float:
        """Aggregate engine throughput over all computed cells."""
        if self.engine_seconds <= 0:
            return 0.0
        return self.engine_events / self.engine_seconds

    def describe(self) -> str:
        return (f"cells={self.cells} computed={self.computed} "
                f"memo_hits={self.memo_hits} inline={self.inline} "
                f"wall={self.wall_seconds:.1f}s "
                f"engine={self.events_per_sec:,.0f} events/s")


class SweepExecutor:
    """Executes cell lists with memoisation, caching and a worker pool.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (default) runs every cell inline in the
        parent, which is the reference execution mode.
    cache:
        Optional :class:`RunCache`; hits skip simulation entirely and
        fresh results are persisted for future invocations.
    """

    def __init__(self, jobs: int = 1, cache: RunCache | None = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.stats = ExecutorStats()
        self._memo: dict[str, RunResult] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._warned_telemetry = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _pool_handle(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs,
                                             initializer=_worker_init)
        return self._pool

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_cells(self, cells: list[Cell]) -> list[RunResult]:
        """Execute ``cells`` and return results in submission order."""
        started = time.perf_counter()
        self.stats.cells += len(cells)
        if obs_runtime.active() is not None:
            results = self._run_instrumented(cells)
        else:
            results = self._run(cells)
        self.stats.wall_seconds += time.perf_counter() - started
        return results

    def _run_instrumented(self, cells: list[Cell]) -> list[RunResult]:
        """Telemetry fallback: inline, uncached, unmemoised execution."""
        self.warn_telemetry_fallback()
        results = []
        for cell in cells:
            result, seconds = _execute_cell(cell)
            self._account_computed(result, seconds, inline=True)
            results.append(result)
        return results

    def _run(self, cells: list[Cell]) -> list[RunResult]:
        results: list[RunResult | None] = [None] * len(cells)
        #: fingerprint -> indices still needing a computed result.
        pending: dict[str, list[int]] = {}
        inline: list[int] = []
        for index, cell in enumerate(cells):
            fp = cell_fingerprint(cell)
            if fp is None:
                inline.append(index)
                continue
            known = self._lookup(fp)
            if known is not None:
                results[index] = known
            else:
                pending.setdefault(fp, []).append(index)

        futures: dict[str, Future] = {}
        if self.jobs > 1 and len(pending) > 1:
            pool = self._pool_handle()
            futures = {fp: pool.submit(_execute_cell, cells[indices[0]])
                       for fp, indices in pending.items()}

        # Spec-less cells run while the pool churns in the background.
        for index in inline:
            result, seconds = _execute_cell(cells[index])
            self._account_computed(result, seconds, inline=True)
            results[index] = result

        for fp, indices in pending.items():
            if fp in futures:
                result, seconds = futures[fp].result()
            else:
                result, seconds = _execute_cell(cells[indices[0]])
            self._account_computed(result, seconds)
            self._store(fp, cells[indices[0]], result)
            for index in indices:
                results[index] = result
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Reuse layers
    # ------------------------------------------------------------------
    def _lookup(self, fp: str) -> RunResult | None:
        known = self._memo.get(fp)
        if known is not None:
            self.stats.memo_hits += 1
            return known
        if self.cache is not None:
            cached = self.cache.get(fp)
            if cached is not None:
                self._memo[fp] = cached
                return cached
        return None

    def _store(self, fp: str, cell: Cell, result: RunResult) -> None:
        self._memo[fp] = result
        if self.cache is not None:
            self.cache.put(fp, result, key=canonical(cell.key()))

    def _account_computed(self, result: RunResult, seconds: float,
                          inline: bool = False) -> None:
        self.stats.computed += 1
        if inline:
            self.stats.inline += 1
        self.stats.engine_events += result.requests_completed
        self.stats.engine_seconds += seconds

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def warn_telemetry_fallback(self) -> None:
        """Print the serial-telemetry warning once per executor."""
        if self._warned_telemetry:
            return
        self._warned_telemetry = True
        if self.jobs > 1 or self.cache is not None:
            print("[repro.exec] telemetry is active: falling back to "
                  "serial, uncached execution (see docs/parallel.md)",
                  file=sys.stderr)

    def describe(self) -> str:
        """One-line executor + cache summary for end-of-run reporting."""
        line = f"executor[jobs={self.jobs}]: {self.stats.describe()}"
        if self.cache is not None:
            line += f"; {self.cache.describe()}"
        return line
