"""Parallel sweep executor with memoised, cache-backed, fault-tolerant cells.

A *cell* is one independent simulation: build the (deterministic,
calibrated) traces for a workload, then run one policy configuration on
them.  Experiments decompose into flat lists of cells —
``sweep_designs`` submits ``(1 baseline + N designs) × workloads`` — and
:class:`SweepExecutor` executes such lists with three layers of reuse:

1. an **in-memory memo** spanning the executor's lifetime, so the shared
   unprotected baseline of a (workload, system, sim) triple is computed
   once per CLI invocation no matter how many experiments need it;
2. an optional **content-addressed disk cache**
   (:class:`~repro.exec.cache.RunCache`), making warm re-runs
   near-instant across invocations;
3. a **process pool** (``jobs > 1``) fanning the remaining cells out.

Every cell is deterministic — traces and policies derive all randomness
from the cell's own seeds — so execution order cannot change any result:
serial, parallel and cached paths return byte-identical
:class:`~repro.sim.results.RunResult` values, and the caller merges them
back in its own fixed order.

On top of the reuse layers sits a **resilience layer**
(:mod:`repro.exec.resilience`): each cell runs under a
:class:`~repro.exec.resilience.CellPolicy` (per-attempt timeout, bounded
retries with deterministic fingerprint-jittered backoff); a cell that
exhausts its budget becomes a :class:`~repro.exec.resilience.FailedCell`
terminal record and the sweep finishes everything else before raising
one :class:`~repro.exec.resilience.SweepFailure`.  Results crossing the
process boundary are structurally validated, a repeatedly broken worker
pool degrades to in-process serial execution with a loud warning, and an
optional :class:`~repro.exec.resilience.SweepCheckpoint` journals
completed fingerprints next to the run cache so an interrupted sweep
resumes instead of recomputing.  Failure paths are exercised
deterministically via :mod:`repro.exec.faults` (``REPRO_FAULTS``).

Cells whose policy is not a :class:`~repro.exec.spec.PolicySpec` (a bare
closure) cannot cross a process boundary or be fingerprinted; they are
executed inline in the parent and never cached — correct, just without
the speedups.

The executor is **thread-safe**: any number of threads may call
:meth:`SweepExecutor.run_cells` concurrently on one shared instance (the
sweep service runs up to ``--job-concurrency`` jobs this way).  Shared
state — memo, stats, the worker pool, the in-flight table — sits behind
one lock; per-run knobs (cell policy, backend, progress sink) and
attributed per-run stats bind through :meth:`SweepExecutor.scoped`,
which is thread-local, so concurrent runs never see each other's
configuration.  Concurrent runs share the pool fairly: with more than
one sweep active, each throttles its pooled submissions to roughly
``jobs / active_runs`` outstanding cells instead of flooding the queue.

Concurrent lookups of the *same* fingerprint deduplicate in flight
(singleflight): the first run to scan a missing fingerprint claims it,
later runs attach to the claim and wait for the one computation instead
of redoing it.  The scan is atomic per sweep, so two identical sweeps
racing each other partition cleanly — one computes everything, the other
attaches to everything and finishes with ``computed=0`` and a memo hit
(plus a ``dedup_hits`` mark) per cell: raced, not ordered, same totals.

Telemetry (:mod:`repro.obs`) composes with every layer above.  When
ambient telemetry is active the executor ships a picklable
:class:`~repro.obs.snapshot.CaptureSpec` with each cell; the cell
records into a private in-memory telemetry (worker- or parent-side) and
returns a :class:`~repro.obs.snapshot.TelemetrySnapshot` alongside its
result.  Snapshots ride the memo, are persisted as content-addressed
artifacts next to the cache entry (replayed on warm hits), and are
merged into the ambient telemetry in cell submission order — so serial,
parallel, cached and resumed sweeps produce byte-identical merged
metrics and journals (see ``docs/observability.md``).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from concurrent.futures import (BrokenExecutor, Future,
                                ProcessPoolExecutor)
from concurrent.futures import TimeoutError as FuturesTimeout
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from repro.exec import faults
from repro.exec.cache import RunCache
from repro.exec.fingerprint import (FingerprintError, canonical,
                                    fingerprint)
from repro.exec.resilience import (CellPolicy, CellTimeout, FailedCell,
                                   SweepCheckpoint, SweepFailure,
                                   validate_result, validate_snapshot)
from repro.exec.spec import PolicySpec
from repro.obs import runtime as obs_runtime
from repro.obs.progress import SweepProgress
from repro.obs.snapshot import (CaptureSpec, TelemetrySnapshot,
                                capture_snapshot, merge_snapshot)
from repro.obs.spans import KIND_ATTEMPT, KIND_CELL, KIND_SWEEP
from repro.sim.config import SimConfig, SystemConfig
from repro.sim.results import RunResult
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class Cell:
    """One independent simulation: workload × system × sim × policy.

    ``trace_system`` is the system the traces are built (and calibrated)
    for; ``run_system`` is the system the run executes on.  They differ
    only for designs like PRAC that override hardware timings while
    keeping the baseline's traces, which is how the paper pairs those
    runs.
    """

    workload: WorkloadProfile
    trace_system: SystemConfig
    run_system: SystemConfig
    sim: SimConfig
    policy: PolicySpec | Callable | None
    policy_name: str

    def key(self) -> dict:
        """The cell's identity as canonical-encodable parts."""
        return {
            "workload": self.workload,
            "trace_system": self.trace_system,
            "run_system": self.run_system,
            "sim": self.sim,
            "policy": self.policy,
            "policy_name": self.policy_name,
        }


def cell_fingerprint(cell: Cell, backend: str = "scalar") -> str | None:
    """Content fingerprint of ``cell``, or ``None`` if not spec-backed.

    ``backend`` participates in the fingerprint whenever it deviates
    from the scalar reference engine: batched results are byte-identical
    by contract, but keying them separately means a cache can never mask
    an identity regression — and scalar fingerprints (the historical
    format) are unchanged.
    """
    if not (cell.policy is None or isinstance(cell.policy, PolicySpec)):
        return None
    parts = cell.key()
    if backend != "scalar":
        parts["backend"] = backend
    try:
        return fingerprint(**parts)
    except FingerprintError:
        return None


def _worker_init() -> None:
    """Worker bootstrap: never inherit ambient telemetry across a fork,
    and arm process-killing fault kinds (they must never fire inline)."""
    obs_runtime.deactivate()
    faults.mark_worker()


def _execute_cell(cell: Cell, fp: str | None = None, attempt: int = 0,
                  capture: CaptureSpec | None = None) \
        -> tuple[RunResult | object, float, TelemetrySnapshot | None]:
    """Run one cell to completion (worker- and parent-side entry point).

    Returns the result, the engine wall-seconds (excluding trace
    building — they feed the executor's aggregate events/sec figure),
    and — when ``capture`` is given — the cell's telemetry snapshot.
    The capture telemetry is private to this call and passed explicitly,
    so an ambient parent telemetry can never double-count an inline
    cell.  ``fp``/``attempt`` key deterministic fault injection
    (:mod:`repro.exec.faults`); with no plan active they are inert.
    """
    from repro.sim.runner import run_simulation
    from repro.workloads.builder import build_traces

    corrupt = faults.inject_before(fp, attempt)
    if corrupt is not None:
        return faults.CORRUPT_SENTINEL, 0.0, None
    if capture is None:
        traces = build_traces(cell.workload, cell.trace_system, cell.sim)
        started = time.perf_counter()
        result = run_simulation(cell.run_system, traces, cell.sim,
                                cell.policy, cell.policy_name)
        return result, time.perf_counter() - started, None
    local = capture.build()
    # The attempt span is exec-side: which attempt succeeded and in
    # which process is execution detail, spliced out of the normalized
    # tree while its phase children survive.
    attempt_span = local.spans.begin(
        "attempt", kind=KIND_ATTEMPT, exec_side=True,
        meta={"attempt": attempt, "pid": os.getpid()})
    try:
        with local.phase("build_traces"):
            traces = build_traces(cell.workload, cell.trace_system,
                                  cell.sim)
        started = time.perf_counter()
        with local.phase(f"run:{cell.policy_name}"):
            result = run_simulation(cell.run_system, traces, cell.sim,
                                    cell.policy, cell.policy_name,
                                    telemetry=local)
        seconds = time.perf_counter() - started
    finally:
        local.spans.end(attempt_span)
    return result, seconds, capture_snapshot(local)


def _execute_batch(cells: list[Cell], fps: list[str | None],
                   capture: CaptureSpec | None = None) -> list:
    """Run one batch-compatible cell group (worker/parent entry point).

    Returns one outcome per cell, in order: either the same
    ``(result, seconds, snapshot)`` tuple :func:`_execute_cell`
    produces, or a :class:`~repro.sim.batched.BatchCellError` when that
    member failed — a failing member never takes its batch-mates down,
    so the executor caches the survivors and retries only the loser.

    Members are engine-batched through
    :func:`~repro.sim.batched.run_batch`; under telemetry ``capture``
    each member instead runs the identity-pinned scalar engine with its
    own private capture (instrumentation samples per-event state at
    scalar rate anyway), still inside this single dispatch.  Fault
    injection stays per-member, keyed on each member's fingerprint at
    attempt 0.
    """
    from repro.sim.batched import BatchCellError, BatchItem, run_batch
    from repro.workloads.builder import build_traces

    outcomes: list = [None] * len(cells)
    members: list[int] = []
    items: list = []
    for index, cell in enumerate(cells):
        try:
            corrupt = faults.inject_before(fps[index], 0)
        except Exception as exc:  # noqa: BLE001 — isolate the member
            error = BatchCellError(index, f"{type(exc).__name__}: {exc}")
            error.cause = exc
            outcomes[index] = error
            continue
        if corrupt is not None:
            outcomes[index] = (faults.CORRUPT_SENTINEL, 0.0, None)
            continue
        if capture is not None:
            try:
                outcomes[index] = _execute_cell(cell, capture=capture)
            except Exception as exc:  # noqa: BLE001
                error = BatchCellError(index,
                                       f"{type(exc).__name__}: {exc}")
                error.cause = exc
                outcomes[index] = error
            continue
        try:
            traces = build_traces(cell.workload, cell.trace_system,
                                  cell.sim)
        except Exception as exc:  # noqa: BLE001
            error = BatchCellError(index, f"{type(exc).__name__}: {exc}")
            error.cause = exc
            outcomes[index] = error
            continue
        members.append(index)
        items.append(BatchItem(traces=traces, sim=cell.sim,
                               policy_factory=cell.policy,
                               policy_name=cell.policy_name,
                               telemetry=None))
    if items:
        run_system = cells[members[0]].run_system
        started = time.perf_counter()
        results = run_batch(run_system, items, collect_errors=True)
        share = (time.perf_counter() - started) / len(items)
        for index, result in zip(members, results):
            if isinstance(result, BatchCellError):
                outcomes[index] = BatchCellError(index, result.message)
            else:
                outcomes[index] = (result, share, None)
    return outcomes


@dataclass
class ExecutorStats:
    """Work accounting across one executor's lifetime."""

    cells: int = 0
    computed: int = 0
    inline: int = 0
    batched: int = 0
    memo_hits: int = 0
    #: memo hits that were *raced*: the fingerprint was in flight on
    #: another run when this run scanned it, so this run attached to the
    #: one computation instead of redoing it.  Every dedup hit is also
    #: counted as a memo hit — dedup refines the hit, it does not
    #: replace it.
    dedup_hits: int = 0
    resumed: int = 0
    retries: int = 0
    timeouts: int = 0
    failed: int = 0
    fallbacks: int = 0
    engine_events: int = 0
    engine_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def events_per_sec(self) -> float:
        """Aggregate engine throughput over all computed cells."""
        if self.engine_seconds <= 0:
            return 0.0
        return self.engine_events / self.engine_seconds

    def describe(self) -> str:
        line = (f"cells={self.cells} computed={self.computed} "
                f"memo_hits={self.memo_hits} inline={self.inline} "
                f"retries={self.retries} timeouts={self.timeouts}")
        if self.batched:
            line += f" batched={self.batched}"
        if self.dedup_hits:
            line += f" dedup_hits={self.dedup_hits}"
        if self.resumed:
            line += f" resumed={self.resumed}"
        if self.failed:
            line += f" failed={self.failed}"
        if self.fallbacks:
            line += f" fallbacks={self.fallbacks}"
        line += (f" wall={self.wall_seconds:.1f}s "
                 f"engine={self.events_per_sec:,.0f} events/s")
        return line


class _Flight:
    """One in-flight fingerprint computation other runs can attach to.

    ``outcome`` is published before ``done`` is set: a
    :class:`FailedCell` for a terminal failure, else ``None`` — waiters
    distinguish success from abandonment by whether the memo holds the
    result when they re-check, and re-claim the fingerprint themselves
    if it does not.
    """

    __slots__ = ("done", "outcome")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.outcome: FailedCell | None = None


@dataclass
class ScopedRun:
    """One thread's private view of a shared :class:`SweepExecutor`.

    Produced by :meth:`SweepExecutor.scoped`: while the binding is
    active on a thread, that thread's ``run_cells`` calls use these
    knobs (``None`` falls back to the executor default) and every stat
    the run generates is *additionally* accumulated into ``stats`` —
    attributed deltas, with no snapshot arithmetic against the global
    counters that concurrent runs are mutating at the same time.
    """

    policy: CellPolicy | None = None
    backend: str | None = None
    progress: SweepProgress | None = None
    stats: ExecutorStats = field(default_factory=ExecutorStats)


class SweepExecutor:
    """Executes cell lists with memoisation, caching and a worker pool.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (default) runs every cell inline in the
        parent, which is the reference execution mode.
    cache:
        Optional :class:`RunCache`; hits skip simulation entirely and
        fresh results are persisted for future invocations.
    policy:
        Per-cell :class:`CellPolicy` (timeout, retries, backoff).  The
        default retries twice with no timeout — a clean run is a single
        attempt with zero overhead.
    checkpoint:
        Optional :class:`SweepCheckpoint` journalling completed cell
        fingerprints; pair it with ``cache`` so a resumed run can serve
        the journalled cells without recomputation.
    progress:
        Optional :class:`~repro.obs.progress.SweepProgress` fed with
        cell-level events (submitted / hit / resumed / computed /
        retried / failed) for live reporting.
    backend:
        Engine backend for computed cells: ``"scalar"`` (reference,
        default), ``"batched"`` or ``"auto"``.  Non-scalar backends run
        :func:`~repro.experiments.common.plan_backends` over each
        submitted cell list and dispatch compatible groups through the
        columnar batch engine — byte-identical results, one Python
        dispatch per step for the whole group.  A per-attempt
        ``timeout_s`` disables batching (the batch engine has no
        per-member timeout), and a member that fails inside a batch is
        retried alone on the scalar path while its batch-mates are
        cached normally.
    """

    #: Pool breakages tolerated before degrading to serial execution.
    POOL_FAILURE_LIMIT = 2

    def __init__(self, jobs: int = 1, cache: RunCache | None = None,
                 policy: CellPolicy | None = None,
                 checkpoint: SweepCheckpoint | None = None,
                 progress: SweepProgress | None = None,
                 backend: str = "scalar") -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if backend not in ("scalar", "batched", "auto"):
            raise ValueError("backend must be one of "
                             "('scalar', 'batched', 'auto'), "
                             f"got {backend!r}")
        self.jobs = jobs
        self.cache = cache
        self._policy = policy if policy is not None else CellPolicy()
        self.checkpoint = checkpoint
        self._progress_sink = progress
        self._backend = backend
        self.stats = ExecutorStats()
        self.failures: list[FailedCell] = []
        #: fingerprint -> (result, snapshot-or-None); snapshots are kept
        #: so a memo hit under telemetry can replay the cell's capture.
        self._memo: dict[str, tuple[RunResult,
                                    TelemetrySnapshot | None]] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._pool_breaks = 0
        self._pool_disabled = False
        #: One reentrant lock guards all cross-thread state: memo,
        #: global stats, failures, the pool handle and the in-flight
        #: table.  Held across each sweep's whole scan phase so
        #: claim-or-attach is atomic per sweep.
        self._lock = threading.RLock()
        #: fingerprint -> _Flight for cells being computed right now.
        self._inflight: dict[str, _Flight] = {}
        self._active_runs = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Per-thread scoped bindings
    # ------------------------------------------------------------------
    def _binding(self) -> ScopedRun | None:
        return getattr(self._local, "binding", None)

    @contextmanager
    def scoped(self, policy: CellPolicy | None = None,
               backend: str | None = None,
               progress: SweepProgress | None = None):
        """Bind per-thread knobs and attributed stats for a ``with``
        block.

        Yields a :class:`ScopedRun` whose ``stats`` accumulate exactly
        the work this thread's ``run_cells`` calls generate — the way
        the sweep service attributes counters to one job while other
        jobs share the same executor.  ``None`` knobs fall back to the
        executor's defaults.  Bindings nest (the previous one is
        restored on exit) and never leak across threads.
        """
        if backend is not None and backend not in ("scalar", "batched",
                                                   "auto"):
            raise ValueError("backend must be one of "
                             "('scalar', 'batched', 'auto'), "
                             f"got {backend!r}")
        binding = ScopedRun(policy=policy, backend=backend,
                            progress=progress)
        previous = self._binding()
        self._local.binding = binding
        try:
            yield binding
        finally:
            self._local.binding = previous

    @property
    def policy(self) -> CellPolicy:
        binding = self._binding()
        if binding is not None and binding.policy is not None:
            return binding.policy
        return self._policy

    @policy.setter
    def policy(self, value: CellPolicy) -> None:
        self._policy = value

    @property
    def backend(self) -> str:
        binding = self._binding()
        if binding is not None and binding.backend is not None:
            return binding.backend
        return self._backend

    @backend.setter
    def backend(self, value: str) -> None:
        self._backend = value

    @property
    def progress(self) -> SweepProgress | None:
        binding = self._binding()
        if binding is not None and binding.progress is not None:
            return binding.progress
        return self._progress_sink

    @progress.setter
    def progress(self, value: SweepProgress | None) -> None:
        self._progress_sink = value

    def _stat(self, name: str, amount=1) -> None:
        """Bump one stat globally and on the thread's binding, if any."""
        with self._lock:
            setattr(self.stats, name, getattr(self.stats, name) + amount)
        binding = self._binding()
        if binding is not None:
            setattr(binding.stats, name,
                    getattr(binding.stats, name) + amount)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool and checkpoint down (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        if self.checkpoint is not None:
            self.checkpoint.close()

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _pool_handle(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs, initializer=_worker_init)
            return self._pool

    def _pool_usable(self) -> bool:
        with self._lock:
            return self.jobs > 1 and not self._pool_disabled

    def _note_pool_failure(self, pool: ProcessPoolExecutor | None) -> None:
        """Record one pool breakage; degrade to serial past the limit.

        ``pool`` is the executor the failed future came from: a stale
        pool that was already replaced is ignored, so one breakage never
        counts once per in-flight future.
        """
        with self._lock:
            if pool is None or pool is not self._pool:
                return
            self._pool_breaks += 1
            try:
                self._pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            self._pool = None
            if self._pool_breaks < self.POOL_FAILURE_LIMIT or \
                    self._pool_disabled:
                return
            self._pool_disabled = True
            breaks = self._pool_breaks
        self._stat("fallbacks")
        self._obs_inc("exec.fallbacks")
        self._span_event("pool_fallback", {"breaks": breaks})
        print(f"[repro.exec] worker pool failed {breaks} times; "
              f"falling back to in-process serial execution",
              file=sys.stderr)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_cells(self, cells: list[Cell],
                  plan=None) -> list[RunResult]:
        """Execute ``cells`` and return results in submission order.

        Cells that fail terminally (retry budget exhausted) are reported
        in one :class:`SweepFailure` raised *after* every other cell has
        completed and been cached/checkpointed, so a relaunch — with
        ``--resume`` or a warm cache — redoes only the losers.

        With ambient telemetry active, every cell additionally captures
        a :class:`TelemetrySnapshot` (in the worker, inline, or replayed
        from memo/cache) and the snapshots are merged into the ambient
        telemetry here, in submission order — one merged run per cell
        occurrence, whatever the execution mode.

        ``plan`` optionally pre-binds the backend assignment (a
        :class:`~repro.experiments.common.BatchPlan` for exactly this
        cell list); by default a non-scalar executor plans here.
        """
        started = time.perf_counter()
        self._stat("cells", len(cells))
        failures: list[FailedCell] = []
        telemetry = obs_runtime.active()
        capture = CaptureSpec.from_telemetry(telemetry) \
            if telemetry is not None else None
        tracer = telemetry.spans if telemetry is not None else None
        sweep_span = None if tracer is None else tracer.begin(
            "sweep", kind=KIND_SWEEP, meta={"cells": len(cells)})
        if self.progress is not None:
            self.progress.add_cells(len(cells))
        with self._lock:
            self._active_runs += 1
        try:
            try:
                results, snaps = self._run(cells, failures, capture,
                                           plan)
            finally:
                if self.progress is not None:
                    self.progress.finish()
            if telemetry is not None:
                self._merge_all(telemetry, tracer, cells, snaps)
        finally:
            with self._lock:
                self._active_runs -= 1
            if sweep_span is not None:
                tracer.end(sweep_span)
        self._stat("wall_seconds", time.perf_counter() - started)
        if failures:
            with self._lock:
                self.failures.extend(failures)
            raise SweepFailure(failures)
        return results

    def _merge_all(self, telemetry, tracer, cells: list[Cell],
                   snaps: list[TelemetrySnapshot | None]) -> None:
        """Merge cell snapshots in submission order.

        With span tracing on, each snapshot is merged inside a ``cell``
        span so the worker-recorded subtree (attempt → phases → engine)
        grafts under it; cell spans carry only structural metadata, so
        the normalized tree is identical across execution modes.
        """
        for index, snap in enumerate(snaps):
            if snap is None:
                continue
            if tracer is None:
                merge_snapshot(telemetry, snap)
                continue
            cell = cells[index]
            span = tracer.begin(
                f"{cell.workload.name}/{cell.policy_name}",
                kind=KIND_CELL,
                meta={"workload": cell.workload.name,
                      "policy": cell.policy_name, "index": index},
                rebase=True)
            try:
                merge_snapshot(telemetry, snap)
            finally:
                tracer.end(span)

    def _run(self, cells: list[Cell], failures: list[FailedCell],
             capture: CaptureSpec | None, plan=None):
        results: list[RunResult | None] = [None] * len(cells)
        snaps: list[TelemetrySnapshot | None] = [None] * len(cells)
        if plan is None and cells and self.backend != "scalar" \
                and self.policy.timeout_s is None:
            # Late import: experiments.common builds cells *from* this
            # module, so the planner cannot be imported at module level.
            from repro.experiments.common import plan_backends
            plan = plan_backends(cells, self.backend)
        backends = None if plan is None else plan.backends
        fps: list[str | None] = [None] * len(cells)
        #: fingerprint -> indices this run will compute itself (owned).
        pending: dict[str, list[int]] = {}
        #: fingerprint -> indices attached to another run's computation.
        attached: dict[str, list[int]] = {}
        #: owned fingerprint -> its claim in the shared in-flight table.
        flights: dict[str, _Flight] = {}
        inline: list[int] = []
        # The scan holds the lock end to end so claim-or-attach is
        # atomic per sweep: two identical concurrent sweeps partition
        # cleanly — whichever scans first owns every cell, the other
        # attaches to every cell — never an interleaved split.
        with self._lock:
            for index, cell in enumerate(cells):
                fp = cell_fingerprint(
                    cell,
                    "scalar" if backends is None else backends[index])
                fps[index] = fp
                if fp is None:
                    inline.append(index)
                    continue
                if fp in pending:
                    pending[fp].append(index)
                    continue
                if fp in attached:
                    attached[fp].append(index)
                    continue
                known = self._lookup(fp, capture)
                if known is not None:
                    self._mark_done(fp)
                    results[index], snaps[index] = known
                    continue
                flight = self._inflight.get(fp)
                if flight is not None:
                    attached[fp] = [index]
                    continue
                flights[fp] = self._inflight[fp] = _Flight()
                pending[fp] = [index]

        try:
            self._run_owned(cells, fps, pending, flights, inline,
                            results, snaps, failures, capture, plan)
            for fp, indices in attached.items():
                outcome = self._await_flight(fp, cells[indices[0]],
                                             capture)
                if isinstance(outcome, FailedCell):
                    failures.append(outcome)
                    continue
                result, snap = outcome
                self._mark_done(fp)
                for index in indices:
                    results[index] = result
                    snaps[index] = snap
        finally:
            # Abandon mop-up: if anything above raised, release every
            # claim this run still holds so attached runs re-claim and
            # compute instead of waiting forever.
            for fp, flight in flights.items():
                self._finish_flight(fp, flight)
        return results, snaps

    def _run_owned(self, cells: list[Cell], fps: list[str | None],
                   pending: dict[str, list[int]],
                   flights: dict[str, "_Flight"], inline: list[int],
                   results: list, snaps: list,
                   failures: list[FailedCell],
                   capture: CaptureSpec | None, plan) -> None:
        """Compute every fingerprint this run owns (claimed at scan)."""
        chunks = self._batch_chunks(plan, fps, pending, cells)
        in_batches = {fp for _, chunk_fps in chunks for fp in chunk_fps}
        singles = [(fp, indices) for fp, indices in pending.items()
                   if fp not in in_batches]

        with self._lock:
            shared = self._active_runs > 1
        use_pool = self._pool_usable() and \
            (shared or (len(singles) + len(chunks)) > 1)
        batch_futures: list[tuple[list[Cell], list[str],
                                  Future | None,
                                  ProcessPoolExecutor | None]] = []
        for chunk_cells, chunk_fps in chunks:
            future = pool = None
            if use_pool and self._pool_usable():
                try:
                    pool = self._pool_handle()
                    future = pool.submit(_execute_batch, chunk_cells,
                                         chunk_fps, capture)
                except Exception:
                    self._note_pool_failure(self._pool)
                    future = pool = None
            batch_futures.append((chunk_cells, chunk_fps, future, pool))

        # Fair-share sliding window: a lone run submits every single
        # eagerly (the historical behaviour); with other runs active,
        # each keeps only about jobs/active_runs cells outstanding so
        # one big sweep cannot flood the shared pool and starve its
        # neighbours.  The window re-fills as cells resolve, and adapts
        # as runs start and finish.
        futures: dict[str, tuple[Future, ProcessPoolExecutor]] = {}
        cursor = 0

        def fill_window() -> None:
            nonlocal cursor
            while cursor < len(singles):
                with self._lock:
                    active = max(1, self._active_runs)
                if active > 1 and \
                        len(futures) >= -(-self.jobs // active) + 1:
                    return
                fp, indices = singles[cursor]
                submitted = self._submit(cells[indices[0]], fp, 0,
                                         capture)
                if submitted is None:
                    return  # pool unusable; resolve loop runs inline
                futures[fp] = submitted
                cursor += 1

        if use_pool:
            fill_window()

        # Spec-less cells run while the pool churns in the background.
        for index in inline:
            result, seconds, snap = _execute_cell(cells[index],
                                                  capture=capture)
            self._account_computed(result, seconds, inline=True)
            results[index] = result
            snaps[index] = snap

        for fp, indices in singles:
            future, pool = futures.pop(fp, (None, None))
            outcome = self._resolve_cell(fp, cells[indices[0]], future,
                                         pool, capture)
            if use_pool:
                fill_window()
            if isinstance(outcome, FailedCell):
                failures.append(outcome)
                self._finish_flight(fp, flights[fp], failed=outcome)
                continue
            result, seconds, snap = outcome
            self._account_computed(result, seconds)
            self._store(fp, cells[indices[0]], result, snap)
            self._mark_done(fp)
            self._finish_flight(fp, flights[fp])
            for index in indices:
                results[index] = result
                snaps[index] = snap

        for chunk_cells, chunk_fps, future, pool in batch_futures:
            outcomes = None
            if future is not None:
                try:
                    outcomes = future.result()
                except BrokenExecutor:
                    self._note_pool_failure(pool)
                except Exception:
                    outcomes = None
            else:
                try:
                    outcomes = _execute_batch(chunk_cells, chunk_fps,
                                              capture)
                except Exception:
                    outcomes = None
            if outcomes is None or len(outcomes) != len(chunk_fps):
                # The whole batch dispatch died (broken pool, engine
                # construction error): every member retries alone.
                outcomes = [None] * len(chunk_fps)
            for member, fp in enumerate(chunk_fps):
                outcome = self._finish_batch_member(
                    chunk_cells[member], fp, outcomes[member], capture)
                if isinstance(outcome, FailedCell):
                    failures.append(outcome)
                    self._finish_flight(fp, flights[fp], failed=outcome)
                    continue
                result, seconds, snap = outcome
                self._account_computed(result, seconds)
                self._store(fp, chunk_cells[member], result, snap)
                self._mark_done(fp)
                self._finish_flight(fp, flights[fp])
                for index in pending[fp]:
                    results[index] = result
                    snaps[index] = snap

    # ------------------------------------------------------------------
    # In-flight deduplication (singleflight)
    # ------------------------------------------------------------------
    def _finish_flight(self, fp: str, flight: "_Flight",
                       failed: FailedCell | None = None) -> None:
        """Retire ``fp``'s claim and wake attached waiters (idempotent).

        The identity check keeps a late mop-up from evicting a *new*
        claim another run installed after this one abandoned the
        fingerprint.
        """
        with self._lock:
            if self._inflight.get(fp) is flight:
                del self._inflight[fp]
        if not flight.done.is_set():
            flight.outcome = failed
            flight.done.set()

    def _await_flight(self, fp: str, cell: Cell,
                      capture: CaptureSpec | None):
        """Take ``fp`` from the run that owns it (or inherit the claim).

        Returns ``(result, snapshot)`` — counted as a memo hit plus a
        dedup hit, since the fingerprint was raced rather than replayed
        from an earlier run — or the owner's :class:`FailedCell`.  If
        the owner abandoned the claim without publishing a result, this
        run re-claims and computes the cell itself.
        """
        while True:
            with self._lock:
                known = self._lookup(fp, capture)
                if known is not None:
                    self._stat("dedup_hits")
                    self._obs_inc("exec.dedup_hits")
                    self._span_event("dedup_hit",
                                     {"fingerprint": fp[:12]})
                    return known
                flight = self._inflight.get(fp)
                if flight is None:
                    flight = self._inflight[fp] = _Flight()
                    claimed = True
                else:
                    claimed = False
            if claimed:
                break
            flight.done.wait()
            if flight.outcome is not None:
                self._stat("failed")
                self._obs_inc("exec.failed")
                self._progress("failed")
                return flight.outcome
            # outcome None: success (memo will hit on re-check) or an
            # abandoned claim (re-check finds nothing and re-claims).
        outcome = self._resolve_cell(fp, cell, None, None, capture)
        if isinstance(outcome, FailedCell):
            self._finish_flight(fp, flight, failed=outcome)
            return outcome
        result, seconds, snap = outcome
        self._account_computed(result, seconds)
        self._store(fp, cell, result, snap)
        self._finish_flight(fp, flight)
        return result, snap

    def inflight_cells(self) -> int:
        """Unique fingerprints currently being computed, across all
        concurrent runs (the ``repro_scheduler_inflight_cells`` gauge)."""
        with self._lock:
            return len(self._inflight)

    def _batch_chunks(self, plan, fps: list[str | None],
                      pending: dict[str, list[int]],
                      cells: list[Cell]) \
            -> list[tuple[list[Cell], list[str]]]:
        """Batched ``(cells, fingerprints)`` chunks still needing compute.

        Plan groups are filtered to pending fingerprints and deduplicated
        (one engine lane per unique cell, however often it recurs in the
        sweep); with a usable pool each chunk is split evenly across the
        workers so even a lone big batch saturates ``--jobs N``.
        """
        if plan is None or not plan.groups:
            return []
        chunks: list[tuple[list[Cell], list[str]]] = []
        seen: set[str] = set()
        for group in plan.groups:
            chunk_cells: list[Cell] = []
            chunk_fps: list[str] = []
            for index in group:
                fp = fps[index]
                if fp is None or fp in seen or fp not in pending:
                    continue
                seen.add(fp)
                chunk_cells.append(cells[index])
                chunk_fps.append(fp)
            if chunk_fps:
                chunks.append((chunk_cells, chunk_fps))
        if self._pool_usable() and chunks:
            split: list[tuple[list[Cell], list[str]]] = []
            for chunk_cells, chunk_fps in chunks:
                parts = min(self.jobs, len(chunk_fps))
                size = -(-len(chunk_fps) // parts)
                for start in range(0, len(chunk_fps), size):
                    split.append((chunk_cells[start:start + size],
                                  chunk_fps[start:start + size]))
            chunks = split
        return chunks

    def _finish_batch_member(self, cell: Cell, fp: str, outcome,
                             capture: CaptureSpec | None):
        """Accept one batch member's outcome, or retry it standalone.

        A valid ``(result, seconds, snapshot)`` tuple is accepted as-is;
        anything else — a :class:`~repro.sim.batched.BatchCellError`, a
        corrupt result, a missing snapshot under capture — sends the
        member through :meth:`_resolve_cell` alone with a fresh attempt
        budget, so one bad cell never poisons its batch-mates.
        """
        if isinstance(outcome, tuple):
            result, seconds, snap = outcome
            problem = validate_result(result)
            if problem is None and capture is not None:
                problem = validate_snapshot(snap)
            if problem is None:
                self._stat("batched")
                return result, seconds, snap
        self._stat("retries")
        self._obs_inc("exec.retries")
        self._progress("retried")
        self._span_event("batch_retry", {"policy": cell.policy_name})
        return self._resolve_cell(fp, cell, None, None, capture)

    # ------------------------------------------------------------------
    # Resilience
    # ------------------------------------------------------------------
    def _resolve_cell(self, fp: str | None, cell: Cell,
                      future: Future | None,
                      pool: ProcessPoolExecutor | None,
                      capture: CaptureSpec | None = None):
        """Drive one cell through the retry policy.

        Returns ``(result, seconds, snapshot)`` on success or a
        :class:`FailedCell` once the attempt budget is spent.  ``future``
        is the already in-flight first attempt (pooled path); retries
        re-submit to the pool while it is healthy and drop to inline
        execution otherwise.  Under telemetry capture, a structurally
        missing snapshot is treated exactly like a corrupt result.
        """
        attempt = 0
        while True:
            kind = error = None
            try:
                if future is not None:
                    result, seconds, snap = future.result(
                        timeout=self.policy.timeout_s)
                else:
                    result, seconds, snap = self._attempt_inline(
                        cell, fp, attempt, capture)
                problem = validate_result(result)
                if problem is None and capture is not None:
                    problem = validate_snapshot(snap)
                if problem is None:
                    return result, seconds, snap
                kind, error = "corrupt", problem
            except (FuturesTimeout, CellTimeout) as exc:
                kind = "timeout"
                error = str(exc) or (
                    f"attempt exceeded {self.policy.timeout_s:g}s"
                    if self.policy.timeout_s else "attempt timed out")
                self._stat("timeouts")
                self._obs_inc("exec.timeouts")
                self._span_event("timeout",
                                 {"policy": cell.policy_name,
                                  "attempt": attempt})
            except BrokenExecutor as exc:
                kind = "pool"
                error = f"{type(exc).__name__}: {exc}"
                self._note_pool_failure(pool)
            except Exception as exc:
                kind = "crash"
                error = f"{type(exc).__name__}: {exc}"

            attempt += 1
            if attempt >= self.policy.attempts:
                self._stat("failed")
                self._obs_inc("exec.failed")
                self._progress("failed")
                self._span_event("cell_failed",
                                 {"policy": cell.policy_name,
                                  "kind": kind})
                return FailedCell(
                    fingerprint=fp or "(unfingerprintable)",
                    workload=cell.workload.name,
                    policy_name=cell.policy_name,
                    attempts=attempt, kind=kind, error=error)
            self._stat("retries")
            self._obs_inc("exec.retries")
            self._progress("retried")
            self._span_event("retry", {"policy": cell.policy_name,
                                       "kind": kind,
                                       "attempt": attempt})
            time.sleep(self.policy.backoff(fp or cell.policy_name,
                                           attempt))
            submitted = self._submit(cell, fp, attempt, capture)
            future, pool = submitted if submitted else (None, None)

    def _submit(self, cell: Cell, fp: str | None, attempt: int,
                capture: CaptureSpec | None = None) \
            -> tuple[Future, ProcessPoolExecutor] | None:
        """Submit one attempt to the pool, or ``None`` for inline."""
        if not self._pool_usable():
            return None
        try:
            pool = self._pool_handle()
            return pool.submit(_execute_cell, cell, fp, attempt,
                               capture), pool
        except Exception:
            self._note_pool_failure(self._pool)
            return None

    def _attempt_inline(self, cell: Cell, fp: str | None, attempt: int,
                        capture: CaptureSpec | None = None):
        """One in-process attempt, under the policy timeout if set.

        The timeout runs the cell on a daemon watchdog thread and
        abandons it on expiry — the thread finishes (or sleeps out an
        injected hang) in the background while the retry proceeds.
        """
        timeout = self.policy.timeout_s
        if timeout is None:
            return _execute_cell(cell, fp, attempt, capture)
        box: list = []

        def target() -> None:
            try:
                box.append(("ok", _execute_cell(cell, fp, attempt,
                                                capture)))
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                box.append(("err", exc))

        thread = threading.Thread(
            target=target, daemon=True,
            name=f"repro-cell-{(fp or cell.policy_name)[:12]}")
        thread.start()
        thread.join(timeout)
        if not box:
            raise CellTimeout(f"inline attempt exceeded {timeout:g}s")
        status, payload = box[0]
        if status == "err":
            raise payload
        return payload

    def _mark_done(self, fp: str) -> None:
        if self.checkpoint is not None:
            self.checkpoint.mark(fp)

    def _obs_inc(self, name: str) -> None:
        """Mirror a resilience event into the ambient metrics registry."""
        telemetry = obs_runtime.active()
        if telemetry is not None:
            telemetry.registry.counter(name).inc()

    def _span_event(self, name: str, meta: dict | None = None) -> None:
        """Record an exec-side event on the open sweep span, if any."""
        tracer = obs_runtime.active_spans()
        if tracer is not None:
            tracer.event(name, meta)

    def _progress(self, kind: str, seconds: float | None = None) -> None:
        if self.progress is not None:
            self.progress.record(kind, seconds)

    # ------------------------------------------------------------------
    # Reuse layers
    # ------------------------------------------------------------------
    def _lookup(self, fp: str, capture: CaptureSpec | None = None) \
            -> tuple[RunResult, TelemetrySnapshot | None] | None:
        """Serve ``fp`` from memo or cache (call with ``_lock`` held).

        Under telemetry capture a known result only counts when its
        snapshot is also available (memoised or as the cache's telemetry
        artifact) — otherwise the cell recomputes so the merged
        telemetry stays complete.  Without capture, any stored snapshot
        is withheld from the return value so nothing gets merged.
        """
        entry = self._memo.get(fp)
        if entry is not None:
            result, snap = entry
            if capture is None or snap is not None:
                self._stat("memo_hits")
                self._progress("hit")
                self._span_event("memo_hit", {"fingerprint": fp[:12]})
                return result, (snap if capture is not None else None)
        if self.cache is not None:
            if capture is not None:
                cached = self.cache.get_with_telemetry(fp)
            else:
                plain = self.cache.get(fp)
                cached = None if plain is None else (plain, None)
            if cached is not None:
                result, snap = cached
                resumed = self.checkpoint is not None and \
                    self.checkpoint.was_done(fp)
                if resumed:
                    self._stat("resumed")
                self._progress("resumed" if resumed else "hit")
                self._span_event("resumed" if resumed else "cache_hit",
                                 {"fingerprint": fp[:12]})
                self._memo[fp] = (result, snap)
                return result, snap
        return None

    def _store(self, fp: str, cell: Cell, result: RunResult,
               snap: TelemetrySnapshot | None = None) -> None:
        with self._lock:
            self._memo[fp] = (result, snap)
            if self.cache is not None:
                self.cache.put(fp, result, key=canonical(cell.key()))
                if snap is not None:
                    self.cache.put_telemetry(fp, snap)

    def _account_computed(self, result: RunResult, seconds: float,
                          inline: bool = False) -> None:
        self._stat("computed")
        if inline:
            self._stat("inline")
        self._stat("engine_events", result.requests_completed)
        self._stat("engine_seconds", seconds)
        self._progress("computed", seconds)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line executor + cache summary for end-of-run reporting."""
        line = f"executor[jobs={self.jobs}]: {self.stats.describe()}"
        if self.cache is not None:
            line += f"; {self.cache.describe()}"
        if self.checkpoint is not None:
            line += f"; {self.checkpoint.describe()}"
        return line
