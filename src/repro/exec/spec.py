"""Declarative, picklable policy-factory specs.

The sweep executor ships simulation cells to worker processes and keys
them in a content-addressed cache.  Both need the *policy factory* of a
cell to be (a) picklable and (b) fingerprintable — neither of which holds
for the closures the ``*_factory`` helpers historically returned.

:func:`spec_factory` fixes that at the definition site: decorating a
factory-producing function makes it return a :class:`PolicySpec` — a
frozen record of *which* function was called with *which* arguments —
instead of the closure itself.  The spec is

* **callable** exactly like the closure (``spec(context) -> policy``), so
  every existing call site keeps working;
* **picklable** (strings and argument values only), so cells cross the
  process boundary;
* **canonically encodable** (a plain dataclass), so it participates in
  cache fingerprints.

Materialisation resolves the decorated function by dotted path and calls
the *undecorated* original (``__wrapped__``), so workers rebuild the
closure from source-of-truth code rather than from pickled bytecode.
"""

from __future__ import annotations

import functools
import importlib
from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class PolicySpec:
    """One policy factory as data: function reference plus arguments.

    Attributes
    ----------
    ref:
        ``"module:qualname"`` of the decorated factory-producing
        function.
    args / kwargs:
        The call's positional arguments and (sorted) keyword items.
        Values must be picklable and canonically encodable — in practice
        ints, floats, bools, strings and enums.
    """

    ref: str
    args: tuple = ()
    kwargs: tuple = field(default_factory=tuple)

    def resolve(self) -> Callable:
        """The undecorated factory-producing function behind :attr:`ref`."""
        module_name, _, qualname = self.ref.partition(":")
        target = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
        return getattr(target, "__wrapped__", target)

    def materialize(self) -> Callable:
        """Rebuild the underlying policy factory (the original closure)."""
        return self.resolve()(*self.args, **dict(self.kwargs))

    def __call__(self, context):
        """Build a policy for ``context``, exactly like the raw factory."""
        return self.materialize()(context)

    def describe(self) -> str:
        """Compact human-readable rendering (for logs and cache keys)."""
        parts = [repr(value) for value in self.args]
        parts += [f"{key}={value!r}" for key, value in self.kwargs]
        return f"{self.ref}({', '.join(parts)})"


def spec_factory(fn: Callable) -> Callable:
    """Decorator: make a factory-producing function return specs.

    ``fn(*args, **kwargs)`` must return a policy factory (a callable of
    one ``PolicyContext`` argument).  The decorated version returns an
    equivalent :class:`PolicySpec` instead.  ``functools.wraps`` keeps
    the public signature (and ``__wrapped__`` access for
    materialisation) intact.
    """
    ref = f"{fn.__module__}:{fn.__qualname__}"

    @functools.wraps(fn)
    def wrapper(*args, **kwargs) -> PolicySpec:
        return PolicySpec(ref=ref, args=tuple(args),
                          kwargs=tuple(sorted(kwargs.items())))

    return wrapper
