"""Content-addressed on-disk cache of simulation results.

One :class:`~repro.sim.results.RunResult` per entry, addressed by the
cell fingerprint of :mod:`repro.exec.fingerprint`.  Layout::

    <root>/<fp[:2]>/<fp>.json          # the result entry
    <root>/<fp[:2]>/<fp>.obs.json     # optional telemetry artifact

Each entry stores the schema version, its own fingerprint, the decoded
cell key (purely for human debugging — ``get`` never trusts it) and the
result's constructor fields.  The telemetry artifact (written only when
the cell executed under telemetry capture) holds the cell's
:class:`~repro.obs.snapshot.TelemetrySnapshot` so a warm hit can replay
the cell's telemetry instead of silently eliding it.  Guarantees:

* **Writes are atomic** (temp file + ``os.replace``), so a killed run
  never leaves a half-written entry behind.
* **Corruption never propagates**: any undecodable, wrong-schema or
  wrong-shape entry is counted, deleted best-effort and reported as a
  miss, so the cell is simply recomputed.
* **Results round-trip exactly**: entries hold only JSON-exact values
  (ints and floats), so a cached :meth:`RunResult.to_json` is
  byte-identical to the freshly computed one.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.exec.fingerprint import CACHE_SCHEMA_VERSION
from repro.obs import runtime as obs_runtime
from repro.obs.snapshot import (TelemetrySnapshot, snapshot_from_doc,
                                snapshot_to_doc)
from repro.sim.results import RunResult

_RESULT_FIELDS = frozenset(
    field.name for field in dataclasses.fields(RunResult))

#: Bucket bounds (µs, inclusive) of the cache-hit service-time
#: histogram.  Hits are dominated by JSON decode of the entry plus the
#: telemetry sidecar, so the range spans sub-100µs result-only hits
#: through multi-ms sidecar replays on slow filesystems.
HIT_LATENCY_BUCKETS_US = (50, 100, 250, 500, 1000, 2500, 5000,
                          10000, 25000, 50000)


def _observe_hit_latency(seconds: float) -> None:
    """Record one cache-hit service time into the ambient registry.

    The ``exec.`` prefix routes it to the execution-side section of the
    metrics snapshot (wall-clock, excluded from the deterministic
    ``metrics`` comparison), and hits are recorded parent-side only, so
    the histogram never rides a worker snapshot merge.
    """
    telemetry = obs_runtime.active()
    if telemetry is None:
        return
    telemetry.registry.histogram(
        "exec.cache.hit_latency_us",
        HIT_LATENCY_BUCKETS_US).observe(seconds * 1e6)


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`RunCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def describe(self) -> str:
        return (f"hits={self.hits} misses={self.misses} "
                f"stores={self.stores} corrupt={self.corrupt}")


class RunCache:
    """Content-addressed store of :class:`RunResult` entries."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def path_for(self, fingerprint: str) -> Path:
        """Entry path for ``fingerprint`` (two-level fan-out)."""
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def telemetry_path_for(self, fingerprint: str) -> Path:
        """Telemetry-artifact path for ``fingerprint``."""
        return self.root / fingerprint[:2] / f"{fingerprint}.obs.json"

    def checkpoint_path(self) -> Path:
        """Conventional location of the sweep checkpoint journal.

        The checkpoint (:class:`~repro.exec.resilience.SweepCheckpoint`)
        lives next to the entries it refers to, so wiping the cache
        directory also wipes the resume state that depends on it.
        """
        return self.root / "checkpoint.jsonl"

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> RunResult | None:
        """The cached result, or ``None`` on miss/corruption."""
        started = time.perf_counter()
        result = self._load_result(fingerprint)
        if result is None:
            return None
        self.stats.hits += 1
        _observe_hit_latency(time.perf_counter() - started)
        return result

    def get_with_telemetry(self, fingerprint: str) \
            -> tuple[RunResult, TelemetrySnapshot] | None:
        """Result *plus* its replayable telemetry snapshot, or ``None``.

        A hit requires both halves: an entry without a (valid) telemetry
        artifact is a miss, so a cache populated without telemetry never
        silently serves telemetry-blind results to an instrumented run —
        the cell recomputes and stores the artifact for next time.
        """
        started = time.perf_counter()
        result = self._load_result(fingerprint)
        if result is None:
            return None
        snapshot = self._load_telemetry(fingerprint)
        if snapshot is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        _observe_hit_latency(time.perf_counter() - started)
        return result, snapshot

    def _load_result(self, fingerprint: str) -> RunResult | None:
        path = self.path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            return self._discard_corrupt(path)
        result = self._decode(entry, fingerprint)
        if result is None:
            return self._discard_corrupt(path)
        return result

    def _load_telemetry(self, fingerprint: str) \
            -> TelemetrySnapshot | None:
        """Decode the telemetry artifact (no hit/miss accounting)."""
        path = self.telemetry_path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return self._discard_corrupt_artifact(path)
        if not isinstance(entry, dict) \
                or entry.get("schema") != CACHE_SCHEMA_VERSION \
                or entry.get("fingerprint") != fingerprint:
            return self._discard_corrupt_artifact(path)
        snapshot = snapshot_from_doc(entry.get("snapshot"))
        if snapshot is None:
            return self._discard_corrupt_artifact(path)
        return snapshot

    def _decode(self, entry, fingerprint: str) -> RunResult | None:
        if not isinstance(entry, dict):
            return None
        if entry.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        if entry.get("fingerprint") != fingerprint:
            return None
        payload = entry.get("result")
        if not isinstance(payload, dict) or \
                set(payload) != _RESULT_FIELDS:
            return None
        try:
            return RunResult(**payload)
        except TypeError:
            return None

    def _discard_corrupt(self, path: Path) -> None:
        """Count, delete (best-effort) and miss a corrupt entry."""
        self.stats.corrupt += 1
        self.stats.misses += 1
        try:
            path.unlink()
        except OSError:
            pass
        return None

    def _discard_corrupt_artifact(self, path: Path) -> None:
        """Count and delete a corrupt telemetry artifact (no miss —
        the caller accounts the lookup as a whole)."""
        self.stats.corrupt += 1
        try:
            path.unlink()
        except OSError:
            pass
        return None

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------
    def put(self, fingerprint: str, result: RunResult,
            key: dict | None = None) -> None:
        """Atomically persist ``result`` under ``fingerprint``.

        ``key`` is the canonical cell-key document; it is stored verbatim
        so a human can ``cat`` an entry and see what produced it.
        """
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "key": key or {},
            "result": dataclasses.asdict(result),
        }
        self._write_atomic(self.path_for(fingerprint), fingerprint, entry)
        self.stats.stores += 1

    def put_telemetry(self, fingerprint: str,
                      snapshot: TelemetrySnapshot) -> None:
        """Atomically persist a cell's telemetry snapshot artifact.

        Stored beside the result entry and versioned/addressed the same
        way; not counted as a separate store (it is a sidecar of the
        entry written by :meth:`put`).
        """
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "snapshot": snapshot_to_doc(snapshot),
        }
        # No sort_keys here: journal records inside the snapshot must
        # round-trip with their key order intact so a replayed record
        # serialises byte-identically to its original emission.
        self._write_atomic(self.telemetry_path_for(fingerprint),
                           fingerprint, entry, sort_keys=False)

    def _write_atomic(self, path: Path, fingerprint: str,
                      entry: dict, sort_keys: bool = True) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent,
            prefix=f".{fingerprint[:8]}.", suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(entry, handle, sort_keys=sort_keys)
                handle.write("\n")
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def describe(self) -> str:
        """One-line summary (root plus hit/miss counters)."""
        return f"cache[{self.root}]: {self.stats.describe()}"
