"""Command-line entry point: ``dream-repro`` / ``python -m repro.cli``.

Subcommands:

* ``list`` — show the available experiments (one per paper table/figure).
* ``run <names...>`` — run experiments and print their result tables
  (``--full`` sweeps all 22 workloads; default is the quick subset).
* ``storage <t_rh>`` — print the full-size storage comparison.
* ``security <t_rh>`` — print the revised DREAM-R parameters.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.security import revised_parameters
from repro.core.storage import compare_storage
from repro.experiments import registry


def _cmd_list(_args: argparse.Namespace) -> int:
    for name in registry.names():
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = args.experiments or registry.names()
    for name in names:
        runner = registry.get(name)
        start = time.time()
        result = runner(quick=not args.full, seed=args.seed)
        if args.json:
            print(result.to_json())
        else:
            print(result.render())
            if args.chart:
                from repro.analysis.charts import chart_result

                chart = chart_result(result.rows)
                if chart:
                    print()
                    print(chart)
            print(f"[{name} finished in {time.time() - start:.1f}s]")
            print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    names = args.experiments or registry.names()
    sections = ["# DREAM reproduction report", ""]
    for name in names:
        runner = registry.get(name)
        start = time.time()
        result = runner(quick=not args.full, seed=args.seed)
        sections.append(f"## {name}: {result.title}")
        sections.append("")
        sections.append("```")
        sections.append(result.render())
        sections.append("```")
        sections.append(f"_regenerated in {time.time() - start:.1f}s_")
        sections.append("")
    report = "\n".join(sections)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0


def _cmd_storage(args: argparse.Namespace) -> int:
    comparison = compare_storage(args.t_rh)
    print(f"T_RH = {comparison.t_rh}")
    print(f"  DREAM-C : {comparison.dream_c_kb:8.2f} KB/bank")
    print(f"  Graphene: {comparison.graphene_kb:8.2f} KB/bank "
          f"({comparison.graphene_ratio:.1f}x DREAM-C)")
    print(f"  ABACuS  : {comparison.abacus_kb:8.2f} KB/bank "
          f"({comparison.abacus_ratio:.1f}x DREAM-C)")
    return 0


def _cmd_security(args: argparse.Namespace) -> int:
    print(revised_parameters(args.t_rh).describe())
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.deployment import plan_deployment

    plan = plan_deployment(args.t_rh, args.budget)
    print(plan.describe())
    return 0 if plan.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="dream-repro",
        description="DREAM (ISCA 2025) reproduction harness")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(
        func=_cmd_list)

    run_parser = sub.add_parser("run", help="run experiments")
    run_parser.add_argument("experiments", nargs="*",
                            help="experiment names (default: all)")
    run_parser.add_argument("--full", action="store_true",
                            help="sweep all 22 workloads")
    run_parser.add_argument("--seed", type=int, default=2025)
    run_parser.add_argument("--json", action="store_true",
                            help="emit machine-readable JSON")
    run_parser.add_argument("--chart", action="store_true",
                            help="append a terminal bar chart")
    run_parser.set_defaults(func=_cmd_run)

    report_parser = sub.add_parser(
        "report", help="run experiments and write a combined report")
    report_parser.add_argument("experiments", nargs="*",
                               help="experiment names (default: all)")
    report_parser.add_argument("--full", action="store_true")
    report_parser.add_argument("--seed", type=int, default=2025)
    report_parser.add_argument("-o", "--output",
                               help="write the report to a file")
    report_parser.set_defaults(func=_cmd_report)

    storage_parser = sub.add_parser("storage",
                                    help="storage comparison at a threshold")
    storage_parser.add_argument("t_rh", type=int)
    storage_parser.set_defaults(func=_cmd_storage)

    security_parser = sub.add_parser(
        "security", help="revised DREAM-R parameters at a threshold")
    security_parser.add_argument("t_rh", type=int)
    security_parser.set_defaults(func=_cmd_security)

    plan_parser = sub.add_parser(
        "plan", help="recommend a deployment for a threshold and budget")
    plan_parser.add_argument("t_rh", type=int)
    plan_parser.add_argument("--budget", type=float, default=5.0,
                             help="slowdown budget in percent")
    plan_parser.set_defaults(func=_cmd_plan)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
