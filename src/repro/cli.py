"""Command-line entry point: ``dream-repro`` / ``python -m repro.cli``.

Subcommands:

* ``list`` — show the available experiments (one per paper table/figure).
* ``run <names...>`` — run experiments and print their result tables
  (``--mode full`` sweeps all 22 workloads; default is the quick
  subset).
* ``report`` — run experiments and write a combined markdown report.
* ``serve`` — start the long-running sweep service (async HTTP job
  API over the shared run cache; see ``docs/service.md``).
* ``submit <name>`` — submit one experiment to a running service,
  stream its progress events, and print the result JSON.
* ``jobs [id]`` — list a service's jobs (or show one job record).
* ``top --url URL...`` — live dashboard over one or more running
  services (jobs by state, cells/s, cache hit rate, queue depth, RSS;
  ``--once`` prints a single snapshot).
* ``stats <journal.jsonl>`` — summarise a telemetry run journal;
  ``stats --access-log FILE`` summarises a service access log instead.
* ``trace <events.jsonl>`` — analyse a DRFM/RLP mitigation event trace.
* ``spans <spans.json>`` — analyse a sweep span trace (critical path,
  per-worker breakdown, Chrome-trace export for Perfetto);
  ``spans --url http://.../v1/jobs/<id>/spans`` analyses a remote
  job's spans straight off a running service.
* ``bench check|record`` — the benchmark-regression observatory: gate
  the committed benchmark snapshots against ``BENCH_history.jsonl``.
* ``storage <t_rh>`` — print the full-size storage comparison.
* ``security <t_rh>`` — print the revised DREAM-R parameters.
* ``plan <t_rh>`` — recommend a deployment for a slowdown budget.

Subcommands that consume an artifact (``stats``/``trace``/``spans``/
``bench``) or a service endpoint (``submit``/``jobs``) share one error
taxonomy (:mod:`repro.analysis.artifacts`): an unusable artifact or an
unreachable service prints ``error: ...`` and exits 2; a loadable
artifact whose check fails (empty journal, regression, failed job)
exits 1.

``run`` and ``report`` accept the telemetry flags ``--journal FILE``
(JSONL run journal), ``--metrics-out FILE`` (metrics snapshot JSON),
``--profile`` (wall-clock phase table), ``--trace FILE`` (bounded
mitigation event trace for ``trace``), ``--spans FILE`` (hierarchical
sweep span trace for ``spans``) and ``--sample-every N`` (timeline
cadence in tREFI).  Telemetry is off unless one of these is given, and
enabling it does not change any simulated result.

They also accept the sweep-execution flags ``--jobs N`` (fan simulation
cells over N worker processes; ``0`` = all cores), ``--cache-dir DIR``
(content-addressed run cache: warm re-runs skip simulation entirely),
``--no-cache`` (ignore ``--cache-dir`` for one invocation),
``--requests N`` (per-core request-budget override for smoke runs),
``--backend {scalar,batched,auto}`` (engine backend selection; batched
runs compatible sweep cells through one columnar step loop) and
``--progress`` (live TTY progress line), plus the resilience flags
``--retries N`` (per-cell retry budget), ``--timeout S`` (per-attempt
wall-clock limit) and ``--resume`` (continue an interrupted sweep from
the checkpoint journal next to the run cache).  Results are
byte-identical across serial, parallel, cached and resumed executions,
and telemetry composes with all of them: cells capture per-cell
snapshots that are merged deterministically in cell order, so the
merged metrics/journal outputs are byte-identical too (see
``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.artifacts import ArtifactError
from repro.core.security import revised_parameters
from repro.core.storage import compare_storage
from repro.exec import runtime as exec_runtime
from repro.exec.cache import RunCache
from repro.exec.executor import SweepExecutor
from repro.exec.resilience import CellPolicy, SweepCheckpoint, SweepFailure
from repro.experiments import registry
from repro.experiments.common import RunOptions
from repro.obs import runtime as obs_runtime
from repro.obs.profiling import Stopwatch

#: Default sweep-service port (``repro serve`` / ``repro submit``).
DEFAULT_SERVICE_PORT = 8731

#: Environment-variable precedence, rendered into ``--help``.
ENV_HELP = """\
environment variables (command-line flags always win):
  REPRO_FULL=1         default --mode full for run/report/submit (and
                       the benchmark harness); --mode overrides it
  REPRO_SERVICE_URL    default service URL for submit/jobs when --url
                       is not given (otherwise
                       http://127.0.0.1:8731)
  REPRO_JOBS=N         default worker count when --jobs is not given
                       (0 = all cores)
  REPRO_CACHE_DIR=DIR  default run-cache directory when --cache-dir is
                       not given (--no-cache disables either source)
  REPRO_FAULTS=SPEC    deterministic fault injection for soak testing,
                       e.g. "crash:*:1;hang:ab@2;corrupt:cd" — see
                       docs/parallel.md for the grammar

engine backends (--backend, results byte-identical across all three):
  scalar               the reference event loop (default)
  batched              columnar batch engine: compatible cells of a
                       sweep advance through one numpy step loop —
                       ~6x whole-sweep throughput on policy-free grids
  auto                 batched only where a sweep has >= 4 compatible
                       policy-free cells (shared baselines); everything
                       else stays scalar

sweep service workflows (docs/service.md):
  dream-repro serve --cache-dir .svc-cache --access-log access.jsonl
                                               start the job service
  dream-repro submit fig9                      submit + stream + print
                                               the deterministic result
  dream-repro jobs                             list jobs and their
                                               cache-coalescing counters
  dream-repro top --url http://host:8731       live dashboard (jobs,
                                               cells/s, cache, RSS)

observability workflows:
  dream-repro run fig5 --spans spans.json      record a sweep span trace
  dream-repro spans spans.json                 critical path + breakdown
  dream-repro spans --url http://host:8731/v1/jobs/j1/spans
                                               same analysis on a remote
                                               job's spans
  dream-repro spans spans.json --chrome-trace out.json
                                               export for Perfetto
  dream-repro stats --access-log access.jsonl  per-route latency/error
                                               summary of a service log
  dream-repro bench check                      gate committed benchmark
                                               snapshots against history
  dream-repro bench record --note "..."        append current numbers to
                                               BENCH_history.jsonl
"""


def _cmd_list(_args: argparse.Namespace) -> int:
    for name in registry.names():
        print(name)
    return 0


def _build_telemetry(args: argparse.Namespace):
    """Construct a Telemetry from CLI flags, or ``None`` if all are off."""
    if not (args.journal or args.metrics_out or args.profile
            or args.trace or args.spans):
        return None
    from repro.obs import Telemetry
    from repro.obs.timeline import DEFAULT_SAMPLE_EVERY_REFI

    sample_every = args.sample_every or DEFAULT_SAMPLE_EVERY_REFI
    return Telemetry(journal_path=args.journal,
                     sample_every_refi=sample_every,
                     profile=args.profile,
                     trace=bool(args.trace),
                     spans=bool(args.spans))


def _emit_telemetry(args: argparse.Namespace, telemetry) -> None:
    """Finalize telemetry: journal close, metrics dump, profile print.

    File-written notices go to stderr so stdout stays pure data
    (``--json`` output must be byte-comparable across runs whose
    telemetry files merely have different names).
    """
    if telemetry is None:
        return
    telemetry.finalize()
    if args.metrics_out:
        telemetry.write_metrics(args.metrics_out)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    if args.journal:
        print(f"journal written to {args.journal}", file=sys.stderr)
    if args.trace:
        telemetry.trace.write_jsonl(args.trace)
        suffix = f" ({telemetry.trace.dropped} dropped at capacity)" \
            if telemetry.trace.dropped else ""
        print(f"trace written to {args.trace} "
              f"({len(telemetry.trace)} events){suffix}", file=sys.stderr)
    if args.spans:
        telemetry.write_spans(args.spans)
        print(f"spans written to {args.spans} "
              f"({telemetry.spans.span_count()} spans); analyse with "
              f"'dream-repro spans {args.spans}'", file=sys.stderr)
    if args.profile:
        print()
        print("== wall-clock profile ==")
        print(telemetry.profiler.render())


def _resolve_mode(args: argparse.Namespace) -> str:
    """Sweep mode from ``--mode`` or ``REPRO_FULL=1``, in that order.

    (The pre-2.0 ``--full`` alias was removed after its deprecation
    cycle; spell it ``--mode full``.)
    """
    if args.mode is not None:
        return args.mode
    return "full" if os.environ.get("REPRO_FULL", "") == "1" else "quick"


def _env_jobs() -> int | None:
    """Worker count from ``REPRO_JOBS``, or ``None`` when unset/bad."""
    raw = os.environ.get("REPRO_JOBS", "")
    try:
        return int(raw) if raw else None
    except ValueError:
        return None


def _build_executor(args: argparse.Namespace,
                    telemetry) -> SweepExecutor | None:
    """Construct a SweepExecutor from CLI flags, or ``None`` if all off.

    Flags beat the ``REPRO_JOBS``/``REPRO_CACHE_DIR`` environment
    defaults.  Telemetry composes with every executor feature: cells
    capture per-cell snapshots (in workers, inline, or replayed from
    the cache's telemetry artifacts) that merge deterministically in
    cell order — ``telemetry`` is accepted only for interface symmetry.
    """
    del telemetry  # telemetry no longer constrains execution
    jobs_flag = args.jobs if args.jobs is not None else _env_jobs()
    jobs = jobs_flag if jobs_flag is not None else 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR", "")
    cache = None
    if cache_dir and not args.no_cache:
        cache = RunCache(cache_dir)
    if args.resume and cache is None:
        print("error: --resume needs a run cache (--cache-dir DIR or "
              "REPRO_CACHE_DIR) holding the interrupted sweep's results",
              file=sys.stderr)
        raise SystemExit(2)
    defaults = CellPolicy()
    policy = CellPolicy(
        timeout_s=args.timeout,
        retries=args.retries if args.retries is not None
        else defaults.retries)
    backend = getattr(args, "backend", "scalar")
    wants_executor = (args.retries is not None or
                      args.timeout is not None or args.resume or
                      args.progress or backend != "scalar")
    if jobs == 1 and cache is None and jobs_flag is None and \
            not wants_executor:
        return None
    checkpoint = None
    if cache is not None:
        checkpoint = SweepCheckpoint(cache.checkpoint_path(),
                                     resume=args.resume)
    progress = None
    if args.progress:
        from repro.obs.progress import SweepProgress
        progress = SweepProgress()
    return SweepExecutor(jobs=jobs, cache=cache, policy=policy,
                         checkpoint=checkpoint, progress=progress,
                         backend=backend)


def _emit_executor(executor: SweepExecutor | None) -> None:
    if executor is not None:
        print(f"[repro.exec] {executor.describe()}", file=sys.stderr)


def _run_options(args: argparse.Namespace) -> RunOptions:
    """One :class:`RunOptions` record from the normalized CLI flags."""
    return RunOptions(mode=_resolve_mode(args),
                      requests_per_core=args.requests,
                      seed=args.seed,
                      retries=args.retries,
                      timeout_s=args.timeout,
                      resume=args.resume,
                      backend=getattr(args, "backend", "scalar"))


def _cmd_run(args: argparse.Namespace) -> int:
    names = args.experiments or registry.names()
    telemetry = _build_telemetry(args)
    executor = _build_executor(args, telemetry)
    options = _run_options(args)
    failed: list[str] = []
    with obs_runtime.activated(telemetry), \
            exec_runtime.activated(executor):
        try:
            for name in names:
                watch = Stopwatch()
                try:
                    result = registry.run_experiment(name, options)
                except SweepFailure as failure:
                    failed.append(name)
                    print(f"[repro.exec] {name}: {failure}",
                          file=sys.stderr)
                    continue
                if args.json:
                    print(result.to_json())
                else:
                    print(result.render())
                    if args.chart:
                        from repro.analysis.charts import chart_result

                        chart = chart_result(result.rows)
                        if chart:
                            print()
                            print(chart)
                    print(f"[{name} finished in {watch.elapsed_s:.1f}s]")
                    print()
        finally:
            if executor is not None:
                executor.close()
    _emit_executor(executor)
    _emit_telemetry(args, telemetry)
    if failed:
        print(f"[repro.cli] {len(failed)} experiment(s) had failed "
              f"cells: {', '.join(failed)} — completed cells are cached; "
              f"rerun (with --resume) to retry only the failures",
              file=sys.stderr)
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    names = args.experiments or registry.names()
    telemetry = _build_telemetry(args)
    executor = _build_executor(args, telemetry)
    options = _run_options(args)
    failed: list[str] = []
    sections = ["# DREAM reproduction report", ""]
    with obs_runtime.activated(telemetry), \
            exec_runtime.activated(executor):
        try:
            for name in names:
                watch = Stopwatch()
                try:
                    result = registry.run_experiment(name, options)
                except SweepFailure as failure:
                    failed.append(name)
                    print(f"[repro.exec] {name}: {failure}",
                          file=sys.stderr)
                    continue
                sections.append(f"## {name}: {result.title}")
                sections.append("")
                sections.append("```")
                sections.append(result.render())
                sections.append("```")
                sections.append(f"_regenerated in "
                                f"{watch.elapsed_s:.1f}s_")
                sections.append("")
        finally:
            if executor is not None:
                executor.close()
    report = "\n".join(sections)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
        print(f"report written to {args.output}")
    else:
        print(report)
    _emit_executor(executor)
    _emit_telemetry(args, telemetry)
    if failed:
        print(f"[repro.cli] {len(failed)} experiment(s) had failed "
              f"cells: {', '.join(failed)} — completed cells are cached; "
              f"rerun (with --resume) to retry only the failures",
              file=sys.stderr)
        return 1
    return 0


def _load_artifact(loader, *args):
    """Run an artifact loader under the unified error taxonomy.

    Any :class:`ArtifactError` (missing / invalid / newer-schema
    artifact, unreachable service) prints one consistent
    ``error: <message>`` line on stderr and exits 2 — every subcommand
    that consumes an artifact goes through here.
    """
    try:
        return loader(*args)
    except ArtifactError as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(error.exit_code)


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.analysis.artifacts import load_journal_records
    from repro.analysis.charts import bar_chart

    if bool(args.journal) == bool(args.access_log):
        print("error: stats needs exactly one input: a journal file "
              "or --access-log FILE", file=sys.stderr)
        return 2
    if args.access_log:
        from repro.analysis.access import render_access, summarize_access
        from repro.analysis.artifacts import load_access_records

        records = _load_artifact(load_access_records, args.access_log)
        if not records:
            print(f"{args.access_log}: empty access log")
            return 1
        print(f"== access log: {args.access_log} ==")
        print(render_access(summarize_access(records)))
        return 0

    records = _load_artifact(load_journal_records, args.journal)
    if not records:
        print(f"{args.journal}: empty journal")
        return 1
    by_kind: dict[str, list[dict]] = {}
    for record in records:
        by_kind.setdefault(record["kind"], []).append(record)
    print(f"== journal: {args.journal} ==")
    print("records: " + ", ".join(
        f"{kind}={len(items)}" for kind, items in sorted(by_kind.items())))

    summaries = by_kind.get("summary", [])
    for summary in summaries[:args.max_runs]:
        print(f"run {summary.get('run', '?')}: "
              f"{summary.get('workload')}/{summary.get('policy')} "
              f"end={summary.get('end_time_ps')} ps, "
              f"requests={summary.get('requests')}, "
              f"hit-rate={summary.get('row_hit_rate')}, "
              f"mitigations={summary.get('mitigations')}, "
              f"rlp={summary.get('rlp')}")
    if len(summaries) > args.max_runs:
        print(f"(+{len(summaries) - args.max_runs} more runs; "
              f"raise --max-runs to list them)")

    mitigations = by_kind.get("mitigation", [])
    if mitigations:
        per_command: dict[str, list[int]] = {}
        for record in mitigations:
            per_command.setdefault(str(record.get("cmd")), []).append(
                int(record.get("rlp", 0)))
        print()
        print("mitigation commands:")
        for command, rlps in sorted(per_command.items()):
            mean_rlp = sum(rlps) / len(rlps)
            print(f"  {command:8} x{len(rlps):<6} avg rlp={mean_rlp:.2f}")

    samples = by_kind.get("sample", [])
    if samples:
        print()
        print("activations per sample tick (all sub-channels):")
        per_tick: dict[int, int] = {}
        for record in samples:
            tick = int(record.get("tick", 0))
            per_tick[tick] = per_tick.get(tick, 0) + int(
                record.get("acts", 0))
        items = [(f"t{tick}", float(acts))
                 for tick, acts in sorted(per_tick.items())]
        if len(items) > args.max_bars:
            # Re-bucket long runs so the chart stays terminal-sized.
            step = -(-len(items) // args.max_bars)
            items = [
                (f"t{i * step}",
                 sum(value for _, value in items[i * step:(i + 1) * step]))
                for i in range(-(-len(items) // step))
            ]
        print(bar_chart(items, unit=" acts"))

    for profile in by_kind.get("profile", []):
        phases = profile.get("phases", {})
        if phases:
            print()
            print("wall-clock phases:")
            for name, data in sorted(phases.items(),
                                     key=lambda kv: -kv[1]["seconds"]):
                print(f"  {name:24} {data['seconds']:9.3f}s "
                      f"x{data['calls']}")
        throughput = profile.get("throughput", {})
        if throughput.get("events"):
            print(f"engine throughput: "
                  f"{throughput['events_per_sec']:,.0f} events/s")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.artifacts import load_journal_records
    from repro.analysis.trace import analyze_trace, render_trace

    records = _load_artifact(load_journal_records, args.trace)
    summaries = analyze_trace(records)
    if not any(summary.events for summary in summaries.values()):
        print(f"{args.trace}: no mitigation events "
              f"(run with --journal or --trace on a mitigated design)")
        return 1
    print(render_trace(summaries, width=args.width))
    return 0


def _cmd_spans(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.analysis.artifacts import load_spans_doc, load_spans_url
    from repro.analysis.spans import chrome_trace, render_spans

    if bool(args.spans) == bool(args.url):
        print("error: spans needs exactly one input: a spans file or "
              "--url http://.../v1/jobs/<id>/spans", file=sys.stderr)
        return 2
    if args.url:
        doc = _load_artifact(load_spans_url, args.url)
    else:
        doc = _load_artifact(load_spans_doc, args.spans)
    print(render_spans(doc, top=args.top))
    if args.chrome_trace:
        trace = chrome_trace(doc.roots)
        with open(args.chrome_trace, "w", encoding="utf-8") as handle:
            json_module.dump(trace, handle)
            handle.write("\n")
        print(f"chrome trace written to {args.chrome_trace} "
              f"({len(trace['traceEvents'])} events); open in "
              f"https://ui.perfetto.dev", file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import time

    from repro.analysis import regression
    from repro.analysis.artifacts import (load_bench_metrics,
                                          run_bench_check)

    history = args.history or os.path.join(args.results_dir,
                                           regression.HISTORY_FILE)
    if args.action == "record":
        metrics = _load_artifact(load_bench_metrics, args.results_dir)
        entry = regression.append_history(history, metrics, time.time(),
                                          note=args.note)
        print(f"recorded {len(metrics)} metrics to {history} "
              f"(ts={entry['ts']})")
        return 0
    report = _load_artifact(run_bench_check, args.results_dir, history,
                            args.threshold)
    print(report.describe())
    return 0 if report.ok else 1


def _service_url(args: argparse.Namespace) -> str:
    """Service base URL: ``--url``, then ``REPRO_SERVICE_URL``, then the
    default local port."""
    if args.url:
        return args.url
    return os.environ.get("REPRO_SERVICE_URL",
                          f"http://127.0.0.1:{DEFAULT_SERVICE_PORT}")


def _service_call(call, *call_args, **call_kwargs):
    """Run one client call under the unified error taxonomy: an
    unreachable service or an HTTP error prints ``error: ...`` and
    exits 2, matching the artifact-loader discipline."""
    from repro.service.client import ServiceError

    try:
        return call(*call_args, **call_kwargs)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(2)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.obs.resource import ResourceSampler
    from repro.service.jobs import JobScheduler
    from repro.service.server import AccessLog, SweepService

    jobs_flag = args.jobs if args.jobs is not None else _env_jobs()
    jobs = jobs_flag if jobs_flag is not None else 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR", "")
    cache = RunCache(cache_dir) if cache_dir else None
    concurrency = args.job_concurrency \
        if args.job_concurrency is not None \
        else int(os.environ.get("REPRO_JOB_CONCURRENCY", "1") or "1")
    if concurrency < 1:
        print("error: --job-concurrency must be >= 1", file=sys.stderr)
        return 2
    executor = SweepExecutor(jobs=jobs, cache=cache)
    scheduler = JobScheduler(executor, spans=not args.no_spans,
                             concurrency=concurrency)
    access_log = AccessLog(args.access_log) if args.access_log else None
    resources = ResourceSampler(scheduler.registry)
    service = SweepService(scheduler, host=args.host, port=args.port,
                           access_log=access_log,
                           queue_limit=args.queue_limit,
                           resources=resources)

    async def serve() -> None:
        await service.start()
        print(f"[repro.service] listening on {service.url} "
              f"(job concurrency {concurrency}; "
              f"{executor.describe()})", file=sys.stderr)
        if access_log is not None:
            print(f"[repro.service] access log: {access_log.path}",
                  file=sys.stderr)
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{service.port}\n")
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    resources.start()
    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("[repro.service] shutting down", file=sys.stderr)
    finally:
        resources.stop()
        scheduler.close()
        if access_log is not None:
            access_log.close()
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.analysis.top import TopDashboard

    urls = args.url or [_service_url(args)]
    dashboard = TopDashboard(urls, interval_s=args.interval)
    if args.once:
        return dashboard.run_once()
    return dashboard.run()


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError, SweepClient

    options = RunOptions(mode=_resolve_mode(args),
                         requests_per_core=args.requests,
                         seed=args.seed,
                         retries=args.retries,
                         timeout_s=args.timeout,
                         backend=args.backend)
    client = SweepClient(_service_url(args))
    failed_error = None
    try:
        job_id = client.submit(args.experiment, options)
        print(f"[repro.service] submitted {args.experiment} as "
              f"{job_id} to {client.base_url}", file=sys.stderr)
        for event in client.stream(job_id):
            if not args.quiet:
                print(f"[{job_id}] " + " ".join(
                    f"{key}={event[key]}" for key in sorted(event)
                    if key not in ("job", "seq")), file=sys.stderr)
            if event.get("kind") == "state" and \
                    event.get("state") == "failed":
                failed_error = event.get("error") or "job failed"
        if failed_error is None:
            text = client.result(job_id)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(2)
    if failed_error is not None:
        print(f"[repro.service] job {job_id} failed: {failed_error}",
              file=sys.stderr)
        return 1
    print(text)
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.service.client import SweepClient

    client = SweepClient(_service_url(args))
    if args.job:
        record = _service_call(client.job, args.job)
        print(json_module.dumps(record, indent=2, sort_keys=True))
        return 0
    records = _service_call(client.jobs)
    if not records:
        print("no jobs")
        return 0
    # The service lists by submission time already; re-sort defensively
    # (older services predate the ordering contract) with queued jobs'
    # queue position as the tiebreak so the start order reads top-down.
    records.sort(key=lambda record: (
        record.get("submitted_unix", 0.0),
        record.get("queue_position")
        if record.get("queue_position") is not None else -1,
        record.get("job", "")))
    for record in records:
        counters = record.get("counters", {})
        line = (f"{record['job']:6} {record['state']:8} "
                f"{record['experiment']}")
        if record["state"] == "queued" and \
                record.get("queue_position") is not None:
            line += f"  queue_position={record['queue_position']}"
        if record["state"] in ("done", "failed"):
            line += (f"  cells={counters.get('cells', 0)} "
                     f"computed={counters.get('computed', 0)} "
                     f"memo_hits={counters.get('memo_hits', 0)}")
            if counters.get("dedup_hits"):
                line += f" dedup_hits={counters['dedup_hits']}"
        if record.get("error"):
            line += f"  error: {record['error']}"
        print(line)
    return 0


def _cmd_storage(args: argparse.Namespace) -> int:
    comparison = compare_storage(args.t_rh)
    print(f"T_RH = {comparison.t_rh}")
    print(f"  DREAM-C : {comparison.dream_c_kb:8.2f} KB/bank")
    print(f"  Graphene: {comparison.graphene_kb:8.2f} KB/bank "
          f"({comparison.graphene_ratio:.1f}x DREAM-C)")
    print(f"  ABACuS  : {comparison.abacus_kb:8.2f} KB/bank "
          f"({comparison.abacus_ratio:.1f}x DREAM-C)")
    return 0


def _cmd_security(args: argparse.Namespace) -> int:
    print(revised_parameters(args.t_rh).describe())
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.deployment import plan_deployment

    plan = plan_deployment(args.t_rh, args.budget)
    print(plan.describe())
    return 0 if plan.ok else 1


def _add_mode_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--mode", choices=("quick", "full"),
                        help="sweep mode: quick = representative "
                             "workload subset (default), full = all 22 "
                             "workloads")


def _add_exec_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, metavar="N",
                        help="fan simulation cells over N worker "
                             "processes (0 = all cores; default serial, "
                             "or REPRO_JOBS)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="content-addressed run cache directory "
                             "(re-runs of identical cells are "
                             "near-instant; default REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir for this invocation")
    parser.add_argument("--requests", type=int, metavar="N",
                        help="per-core request-budget override "
                             "(smoke/CI runs)")
    parser.add_argument("--backend",
                        choices=("scalar", "batched", "auto"),
                        default="scalar",
                        help="engine backend: scalar (reference event "
                             "loop), batched (columnar batch engine "
                             "for compatible cells), or auto (batched "
                             "only for groups of >= 4 policy-free "
                             "compatible cells); results are "
                             "byte-identical either way")
    parser.add_argument("--retries", type=int, metavar="N",
                        help="per-cell retry budget before a cell is "
                             "declared failed (default 2)")
    parser.add_argument("--timeout", type=float, metavar="S",
                        help="per-attempt wall-clock limit in seconds "
                             "(default unlimited)")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted sweep from the "
                             "checkpoint journal next to the run cache "
                             "(requires --cache-dir)")
    parser.add_argument("--progress", action="store_true",
                        help="live sweep progress line on stderr (TTY); "
                             "mirrored into exec.progress.* metrics "
                             "elsewhere")


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--journal", metavar="FILE",
                        help="write a JSONL telemetry journal")
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="write a metrics snapshot (JSON)")
    parser.add_argument("--profile", action="store_true",
                        help="print wall-clock phase timings")
    parser.add_argument("--trace", metavar="FILE",
                        help="write a bounded JSONL mitigation event "
                             "trace for the `trace` subcommand")
    parser.add_argument("--sample-every", type=int, metavar="N",
                        help="timeline sampling period in tREFI "
                             "(default 8)")
    parser.add_argument("--spans", metavar="FILE",
                        help="write a hierarchical sweep span trace "
                             "(JSON) for the `spans` subcommand")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="dream-repro",
        description="DREAM (ISCA 2025) reproduction harness",
        epilog=ENV_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    from repro import __version__
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(
        func=_cmd_list)

    run_parser = sub.add_parser(
        "run", help="run experiments", epilog=ENV_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    run_parser.add_argument("experiments", nargs="*",
                            help="experiment names (default: all)")
    _add_mode_flags(run_parser)
    run_parser.add_argument("--seed", type=int, default=2025)
    run_parser.add_argument("--json", action="store_true",
                            help="emit machine-readable JSON")
    run_parser.add_argument("--chart", action="store_true",
                            help="append a terminal bar chart")
    _add_exec_flags(run_parser)
    _add_telemetry_flags(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    report_parser = sub.add_parser(
        "report", help="run experiments and write a combined report",
        epilog=ENV_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    report_parser.add_argument("experiments", nargs="*",
                               help="experiment names (default: all)")
    _add_mode_flags(report_parser)
    report_parser.add_argument("--seed", type=int, default=2025)
    report_parser.add_argument("-o", "--output",
                               help="write the report to a file")
    _add_exec_flags(report_parser)
    _add_telemetry_flags(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    serve_parser = sub.add_parser(
        "serve", help="start the long-running sweep service "
                      "(async HTTP job API; see docs/service.md)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int,
                              default=DEFAULT_SERVICE_PORT,
                              help=f"bind port (0 = ephemeral; default "
                                   f"{DEFAULT_SERVICE_PORT})")
    serve_parser.add_argument("--port-file", metavar="FILE",
                              help="write the bound port to FILE once "
                                   "listening (for scripts using "
                                   "--port 0)")
    serve_parser.add_argument("--jobs", type=int, metavar="N",
                              help="worker processes for each sweep "
                                   "(0 = all cores; default serial, or "
                                   "REPRO_JOBS)")
    serve_parser.add_argument("--job-concurrency", type=int,
                              default=None, metavar="N",
                              help="jobs executing at once over the "
                                   "shared executor pool (default 1, or"
                                   " REPRO_JOB_CONCURRENCY; identical "
                                   "concurrent jobs coalesce via "
                                   "in-flight dedup)")
    serve_parser.add_argument("--cache-dir", metavar="DIR",
                              help="content-addressed run cache shared "
                                   "by all jobs (default "
                                   "REPRO_CACHE_DIR)")
    serve_parser.add_argument("--access-log", metavar="FILE",
                              help="append one JSONL record per request "
                                   "(summarise with 'stats "
                                   "--access-log FILE')")
    serve_parser.add_argument("--queue-limit", type=int, default=None,
                              metavar="N",
                              help="readiness high-water mark: /v1/readyz"
                                   " (and new submissions) answer 503 "
                                   "while N jobs are already queued "
                                   "(default 64)")
    serve_parser.add_argument("--no-spans", action="store_true",
                              help="disable per-job span capture "
                                   "(/v1/jobs/<id>/spans answers 404)")
    serve_parser.set_defaults(func=_cmd_serve)

    top_parser = sub.add_parser(
        "top", help="live dashboard over running sweep services "
                    "(jobs by state, cells/s, cache hit rate, queue "
                    "depth, RSS)")
    top_parser.add_argument("--url", metavar="URL", action="append",
                            help="service base URL; repeat for several "
                                 "instances (default REPRO_SERVICE_URL, "
                                 "else http://127.0.0.1:"
                                 f"{DEFAULT_SERVICE_PORT})")
    top_parser.add_argument("--interval", type=float, default=2.0,
                            metavar="S",
                            help="seconds between polls (default 2)")
    top_parser.add_argument("--once", action="store_true",
                            help="print one snapshot and exit (exit 2 "
                                 "when no instance answered)")
    top_parser.set_defaults(func=_cmd_top)

    submit_parser = sub.add_parser(
        "submit", help="submit one experiment to a running service, "
                       "stream its events, and print the result JSON",
        epilog=ENV_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    submit_parser.add_argument("experiment", help="experiment name")
    submit_parser.add_argument("--url", metavar="URL",
                               help="service base URL (default "
                                    "REPRO_SERVICE_URL, else "
                                    "http://127.0.0.1:"
                                    f"{DEFAULT_SERVICE_PORT})")
    _add_mode_flags(submit_parser)
    submit_parser.add_argument("--seed", type=int, default=2025)
    submit_parser.add_argument("--requests", type=int, metavar="N",
                               help="per-core request-budget override "
                                    "(smoke/CI runs)")
    submit_parser.add_argument("--backend",
                               choices=("scalar", "batched", "auto"),
                               default="scalar",
                               help="engine backend for this job")
    submit_parser.add_argument("--retries", type=int, metavar="N",
                               help="per-cell retry budget")
    submit_parser.add_argument("--timeout", type=float, metavar="S",
                               help="per-attempt wall-clock limit")
    submit_parser.add_argument("--quiet", action="store_true",
                               help="suppress the per-event progress "
                                    "lines on stderr")
    submit_parser.set_defaults(func=_cmd_submit)

    jobs_parser = sub.add_parser(
        "jobs", help="list a running service's jobs (or show one "
                     "job record as JSON)")
    jobs_parser.add_argument("job", nargs="?",
                             help="job id to show in full (default: "
                                  "list all jobs)")
    jobs_parser.add_argument("--url", metavar="URL",
                             help="service base URL (default "
                                  "REPRO_SERVICE_URL, else "
                                  "http://127.0.0.1:"
                                  f"{DEFAULT_SERVICE_PORT})")
    jobs_parser.set_defaults(func=_cmd_jobs)

    stats_parser = sub.add_parser(
        "stats", help="summarise a telemetry journal (JSONL), or a "
                      "service access log via --access-log")
    stats_parser.add_argument("journal", nargs="?",
                              help="journal file to read (omit when "
                                   "using --access-log)")
    stats_parser.add_argument("--access-log", metavar="FILE",
                              help="summarise a 'serve --access-log' "
                                   "request log instead (per-route "
                                   "requests, errors, latency "
                                   "percentiles, bytes)")
    stats_parser.add_argument("--max-bars", type=int, default=24,
                              help="bucket the sample chart to at most "
                                   "this many bars")
    stats_parser.add_argument("--max-runs", type=int, default=24,
                              help="list at most this many run summaries")
    stats_parser.set_defaults(func=_cmd_stats)

    trace_parser = sub.add_parser(
        "trace", help="analyse a DRFM/RLP mitigation event trace "
                      "(journal or --trace output, JSONL)")
    trace_parser.add_argument("trace",
                              help="journal / event-trace file to read")
    trace_parser.add_argument("--width", type=int, default=40,
                              help="histogram bar width in columns")
    trace_parser.set_defaults(func=_cmd_trace)

    spans_parser = sub.add_parser(
        "spans", help="analyse a sweep span trace (--spans output): "
                      "critical path, per-worker breakdown, "
                      "Chrome-trace export")
    spans_parser.add_argument("spans", nargs="?",
                              help="spans file to read (--spans FILE "
                                   "output; omit when using --url)")
    spans_parser.add_argument("--url", metavar="URL",
                              help="analyse a remote job instead: the "
                                   "service's /v1/jobs/<id>/spans "
                                   "endpoint")
    spans_parser.add_argument("--chrome-trace", metavar="OUT",
                              help="also export Chrome trace-event JSON "
                                   "(loadable in Perfetto)")
    spans_parser.add_argument("--top", type=int, default=10,
                              help="critical-path depth to print "
                                   "(default 10)")
    spans_parser.set_defaults(func=_cmd_spans)

    bench_parser = sub.add_parser(
        "bench", help="benchmark-regression observatory over the "
                      "committed snapshot files")
    bench_parser.add_argument("action", choices=("check", "record"),
                              help="check = gate current snapshots "
                                   "against history (exit 1 on "
                                   "regression); record = append them "
                                   "to the history log")
    bench_parser.add_argument("--results-dir",
                              default="benchmarks/results",
                              metavar="DIR",
                              help="directory holding BENCH_*.json "
                                   "(default benchmarks/results)")
    bench_parser.add_argument("--history", metavar="FILE",
                              help="history JSONL (default "
                                   "<results-dir>/BENCH_history.jsonl)")
    bench_parser.add_argument("--threshold", type=float, default=20.0,
                              metavar="PCT",
                              help="regression threshold in percent; "
                                   "best AND median must both drop "
                                   "beyond it (default 20)")
    bench_parser.add_argument("--note", default="",
                              help="free-form note stored with a "
                                   "recorded entry")
    bench_parser.set_defaults(func=_cmd_bench)

    storage_parser = sub.add_parser("storage",
                                    help="storage comparison at a threshold")
    storage_parser.add_argument("t_rh", type=int)
    storage_parser.set_defaults(func=_cmd_storage)

    security_parser = sub.add_parser(
        "security", help="revised DREAM-R parameters at a threshold")
    security_parser.add_argument("t_rh", type=int)
    security_parser.set_defaults(func=_cmd_security)

    plan_parser = sub.add_parser(
        "plan", help="recommend a deployment for a threshold and budget")
    plan_parser.add_argument("t_rh", type=int)
    plan_parser.add_argument("--budget", type=float, default=5.0,
                             help="slowdown budget in percent")
    plan_parser.set_defaults(func=_cmd_plan)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
