"""Lightweight metrics registry: counters, gauges, fixed-bucket histograms.

No external dependencies — plain Python objects with hierarchical dotted
names (``mc.sc0.drfm_sb_issued``).  The registry is the store; instruments
are handed out once at wiring time and mutated directly on the hot path,
so recording a value is one attribute increment with no name lookup.

Snapshot/reset semantics: :meth:`MetricsRegistry.snapshot` captures every
instrument into a plain ``dict`` (JSON-serialisable), and
:meth:`MetricsRegistry.reset` zeroes them all, which lets one registry
span several simulation runs with per-run deltas.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def snapshot(self) -> float:
        return self.value


#: Default histogram buckets for realised RLP (1..32 rows per command).
RLP_BUCKETS = (1, 2, 4, 8, 16, 32)


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``buckets`` are inclusive upper bounds in increasing order; values
    above the last bound land in the overflow bucket.  The histogram
    keeps count/total so mean is exact even though the distribution is
    bucketed.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "count", "total")

    def __init__(self, name: str,
                 buckets: tuple[float, ...] = RLP_BUCKETS) -> None:
        if not buckets:
            raise ValueError("at least one bucket bound is required")
        if list(buckets) != sorted(buckets):
            raise ValueError("bucket bounds must be increasing")
        self.name = name
        self.bounds = tuple(buckets)
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        index = bisect.bisect_left(self.bounds, value)
        if index >= len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "buckets": {f"le_{bound}": count for bound, count
                        in zip(self.bounds, self.counts)},
            "overflow": self.overflow,
        }


@dataclass
class MetricsRegistry:
    """Registry of named instruments with hierarchical dotted names.

    Registering the same name twice returns the existing instrument (so
    independent components can share a counter); registering a name as a
    different instrument kind raises.
    """

    _instruments: dict = field(default_factory=dict)

    def _register(self, name: str, kind: type, *args):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}")
            return existing
        instrument = kind(name, *args)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._register(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._register(name, Gauge)

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = RLP_BUCKETS) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._register(name, Histogram, buckets)

    def get(self, name: str):
        """The instrument registered under ``name`` (or ``None``)."""
        return self._instruments.get(name)

    def names(self, prefix: str = "") -> list[str]:
        """Sorted registered names, optionally filtered by prefix."""
        return sorted(name for name in self._instruments
                      if name.startswith(prefix))

    def snapshot(self, prefix: str = "") -> dict:
        """All instrument values as a plain JSON-serialisable dict."""
        return {name: self._instruments[name].snapshot()
                for name in self.names(prefix)}

    def reset(self) -> None:
        """Zero every registered instrument (registrations survive)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments
