"""Observability subsystem: metrics, timelines, journaling, profiling.

Telemetry is strictly **opt-in**: nothing in this package runs unless a
:class:`Telemetry` instance is constructed and handed to (or activated
for) a simulation.  Every instrumented hot-path site in the simulator
guards on a single ``is None`` check, so the disabled path costs one
pointer comparison.

The facade wires four independent pieces together:

* :mod:`repro.obs.metrics`   — counters / gauges / histograms with
  hierarchical names (``mc.sc0.drfm_sb_issued``);
* :mod:`repro.obs.timeline`  — per-sub-channel time series sampled every
  N tREFI of *simulated* time;
* :mod:`repro.obs.journal`   — schema-versioned JSONL run journal
  (file-backed or in-memory);
* :mod:`repro.obs.profiling` — wall-clock phase timers and the engine
  events/sec throughput gauge;
* :mod:`repro.obs.trace`     — bounded structured trace of mitigation
  events (analysed by ``repro trace``);
* :mod:`repro.obs.snapshot`  — picklable per-cell snapshots plus the
  deterministic cross-process merge used by ``repro.exec``;
* :mod:`repro.obs.progress`  — TTY-aware live sweep progress reporter;
* :mod:`repro.obs.spans`     — opt-in hierarchical span tracing across
  the sweep fabric (exported by ``repro spans``).

Telemetry never perturbs simulation results: it only reads simulator
state and maintains its own side structures, so identical seeds produce
identical :class:`~repro.sim.results.RunResult`\\ s with telemetry on or
off (enforced by ``tests/test_obs_determinism.py``).

Telemetry composes with parallel and cached execution: workers capture
per-cell :class:`~repro.obs.snapshot.TelemetrySnapshot`\\ s which the
parent merges deterministically in cell submission order, so serial,
``--jobs N``, warm-cache and ``--resume`` sweeps produce byte-identical
merged metrics and journals (``tests/test_obs_parallel.py``).
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager

from repro.dram.commands import Command
from repro.obs import runtime
from repro.obs.journal import (RunJournal, SCHEMA_VERSION, load_journal,
                               read_journal)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               RLP_BUCKETS)
from repro.obs.profiling import (PhaseTimer, Profiler, Stopwatch,
                                 ThroughputGauge)
from repro.obs.timeline import (DEFAULT_SAMPLE_EVERY_REFI, TimelineSample,
                                TimelineSampler)
from repro.obs.trace import DEFAULT_TRACE_LIMIT, EventTrace
from repro.obs.snapshot import (CaptureSpec, SNAPSHOT_SCHEMA_VERSION,
                                TelemetrySnapshot, capture_snapshot,
                                merge_snapshot, snapshot_from_doc,
                                snapshot_to_doc)
from repro.obs.progress import SweepProgress
from repro.obs.spans import (SPANS_SCHEMA_VERSION, Span, SpanTracer,
                             normalized_tree, span_from_doc, span_to_doc)

__all__ = [
    "CaptureSpec",
    "Command",
    "Counter",
    "DEFAULT_SAMPLE_EVERY_REFI",
    "DEFAULT_TRACE_LIMIT",
    "EventTrace",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "Profiler",
    "RLP_BUCKETS",
    "RunJournal",
    "SCHEMA_VERSION",
    "SNAPSHOT_SCHEMA_VERSION",
    "SPANS_SCHEMA_VERSION",
    "Span",
    "SpanTracer",
    "Stopwatch",
    "SubchannelTelemetry",
    "SweepProgress",
    "Telemetry",
    "TelemetrySnapshot",
    "ThroughputGauge",
    "TimelineSample",
    "TimelineSampler",
    "capture_snapshot",
    "load_journal",
    "merge_snapshot",
    "normalized_tree",
    "read_journal",
    "runtime",
    "span_from_doc",
    "span_to_doc",
    "snapshot_from_doc",
    "snapshot_to_doc",
]


class SubchannelTelemetry:
    """Pre-bound per-sub-channel instruments (hot-path handle).

    Instrument objects are resolved once at wiring time; recording a
    mitigation is then plain attribute increments plus (when a journal is
    attached) one JSONL record.
    """

    __slots__ = ("index", "journal", "trace", "mitigations",
                 "rows_mitigated", "rlp_hist", "drfm_sb", "drfm_ab", "nrr")

    def __init__(self, telemetry: "Telemetry", index: int) -> None:
        registry = telemetry.registry
        prefix = f"mc.sc{index}."
        self.index = index
        self.journal = telemetry.journal
        self.trace = telemetry.trace
        self.mitigations = registry.counter(prefix + "mitigations")
        self.rows_mitigated = registry.counter(prefix + "rows_mitigated")
        self.rlp_hist = registry.histogram(prefix + "rlp")
        self.drfm_sb = registry.counter(prefix + "drfm_sb_issued")
        self.drfm_ab = registry.counter(prefix + "drfm_ab_issued")
        self.nrr = registry.counter(prefix + "nrr_issued")

    def mitigation(self, policy_name: str, event,
                   valid_dars: int = 0) -> None:
        """Record one executed mitigation command (a MitigationEvent)."""
        rlp = event.rlp
        self.mitigations.inc()
        self.rows_mitigated.inc(rlp)
        self.rlp_hist.observe(rlp)
        command = event.command
        if command is Command.DRFM_SB:
            self.drfm_sb.inc()
        elif command is Command.DRFM_AB:
            self.drfm_ab.inc()
        elif command is Command.NRR:
            self.nrr.inc()
        if self.journal is not None or self.trace is not None:
            record = {"v": SCHEMA_VERSION, "kind": "mitigation",
                      "sc": self.index, "t_ps": event.time_ps,
                      "cmd": command.value, "policy": policy_name,
                      "bank": event.trigger_bank,
                      "blocked": event.blocked_banks,
                      "rlp": rlp, "dars": valid_dars}
            if self.journal is not None:
                self.journal.append_record(record)
            if self.trace is not None:
                self.trace.record(record)


class Telemetry:
    """Facade bundling registry, timeline sampler, journal and profiler.

    Parameters
    ----------
    journal_path:
        Write a JSONL journal to this file (``None`` disables file
        output).
    journal_memory:
        Keep journal records in memory instead (tests, in-process
        consumers).  Ignored when ``journal_path`` is given.
    sample_every_refi:
        Timeline sampling period in tREFI units.
    profile:
        Whether the caller intends to render wall-clock profiling; phase
        timers are always maintained (they are per-run, not per-event),
        the flag only gates reporting (including the journal's closing
        ``profile`` record — wall-clock is nondeterministic, so it only
        enters the journal on request).
    trace:
        Keep a bounded :class:`~repro.obs.trace.EventTrace` of
        individual mitigation events for the ``repro trace`` analyzer.
    trace_limit:
        Event capacity of that trace.
    spans:
        Record a hierarchical :class:`~repro.obs.spans.SpanTracer` of
        sweep execution (exported by ``repro spans``).  Off by default;
        every span site guards on ``telemetry.spans is None``.
    """

    def __init__(self, journal_path: str | None = None,
                 journal_memory: bool = False,
                 sample_every_refi: int = DEFAULT_SAMPLE_EVERY_REFI,
                 profile: bool = False,
                 trace: bool = False,
                 trace_limit: int = DEFAULT_TRACE_LIMIT,
                 spans: bool = False) -> None:
        self.registry = MetricsRegistry()
        self.journal: RunJournal | None = None
        if journal_path is not None:
            self.journal = RunJournal(journal_path)
        elif journal_memory:
            self.journal = RunJournal()
        self.timeline = TimelineSampler(sample_every_refi,
                                        journal=self.journal)
        self.profiler = Profiler()
        self.profile = profile
        self.trace: EventTrace | None = \
            EventTrace(trace_limit) if trace else None
        self.spans: SpanTracer | None = SpanTracer() if spans else None
        self.run_index = -1
        self._channels: dict[int, SubchannelTelemetry] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def channel(self, index: int) -> SubchannelTelemetry:
        """The per-sub-channel instrument handle (created on demand)."""
        channel = self._channels.get(index)
        if channel is None:
            channel = SubchannelTelemetry(self, index)
            self._channels[index] = channel
        return channel

    def phase(self, name: str):
        """Context manager timing one wall-clock phase.

        With span tracing on, the same region is also recorded as a
        ``phase`` span, so profiler totals and the span tree describe
        the same boundaries.
        """
        if self.spans is None:
            return self.profiler.phase(name)
        return self._phase_with_span(name)

    @contextmanager
    def _phase_with_span(self, name: str):
        with self.spans.span(name), self.profiler.phase(name):
            yield

    # ------------------------------------------------------------------
    # Run lifecycle (called by the simulation runner)
    # ------------------------------------------------------------------
    def begin_run(self, workload: str, policy: str, seed: int) -> None:
        """Mark the start of one simulation run."""
        self.run_index += 1
        if self.journal is not None:
            self.journal.write("run_start", run=self.run_index,
                               workload=workload, policy=policy, seed=seed)

    def end_run(self, result, events: int, seconds: float) -> None:
        """Fold one completed run into throughput, counters and journal.

        Wall-clock quantities go to the profiler only — the counters
        and the journal's ``summary`` record carry exclusively simulated
        numbers, so merged journals and the ``metrics`` section stay
        byte-identical across serial/parallel/cached execution.
        """
        self.profiler.throughput.record(events, seconds)
        registry = self.registry
        registry.counter("sim.runs").inc()
        registry.counter("sim.requests").inc(events)
        if self.journal is not None:
            self.journal.write(
                "summary", run=self.run_index, workload=result.workload,
                policy=result.policy, end_time_ps=result.end_time_ps,
                requests=result.requests_completed,
                activations=result.activations,
                row_hit_rate=round(result.row_hit_rate, 4),
                mitigations=result.mitigation_commands,
                rows_mitigated=result.rows_mitigated,
                rlp=round(result.average_rlp, 3),
                bus_utilization=round(result.bus_utilization, 4))

    def absorb(self, snapshot: TelemetrySnapshot) -> None:
        """Merge one cell's captured snapshot into this telemetry."""
        merge_snapshot(self, snapshot)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Registry plus profiler state as one JSON-serialisable dict.

        The ``metrics`` section holds only deterministic, simulated-time
        instruments; execution-side counters (``exec.*`` — retries,
        cache traffic, progress events) are split into ``exec`` and
        wall-clock figures into ``profiling``, so ``metrics`` can be
        compared byte-for-byte across execution modes.
        """
        metrics = {}
        executor = {}
        for name, value in self.registry.snapshot().items():
            if name.startswith("exec."):
                executor[name] = value
            else:
                metrics[name] = value
        return {
            "schema_version": SCHEMA_VERSION,
            "metrics": metrics,
            "exec": executor,
            "profiling": self.profiler.snapshot(),
            "timeline_samples": len(self.timeline.samples),
        }

    def write_metrics(self, path: str) -> None:
        """Dump :meth:`snapshot` as pretty JSON to ``path``, atomically.

        Temp file + ``os.replace`` (the :class:`RunCache` pattern), so a
        killed run never leaves a half-written metrics file behind.
        """
        directory = os.path.dirname(os.path.abspath(path))
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=directory,
            prefix=".metrics.", suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(self.snapshot(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def spans_doc(self) -> dict:
        """Span forest plus profiling context, JSON-serialisable.

        This is the on-disk format of ``--spans FILE`` and the input of
        the ``repro spans`` analyzer; profiling rides along so the
        critical path can be sanity-checked against phase wall time.
        """
        tracer = self.spans if self.spans is not None else SpanTracer()
        return {
            "schema": SPANS_SCHEMA_VERSION,
            "profiling": self.profiler.snapshot(),
            "spans": tracer.to_docs(),
        }

    def write_spans(self, path: str) -> None:
        """Dump :meth:`spans_doc` as JSON to ``path``, atomically."""
        directory = os.path.dirname(os.path.abspath(path))
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=directory,
            prefix=".spans.", suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(self.spans_doc(), handle, indent=2)
                handle.write("\n")
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def finalize(self) -> None:
        """Write the closing profile record and close the journal."""
        if self._finalized:
            return
        self._finalized = True
        if self.journal is not None:
            if self.profile and self.profiler.phases.seconds:
                self.journal.write("profile",
                                   **self.profiler.snapshot())
            self.journal.close()
