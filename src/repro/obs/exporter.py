"""Prometheus text-exposition rendering of the obs metrics registry.

The sweep service's ``GET /v1/metrics`` endpoint — and anything else
that wants to expose an ambient :class:`~repro.obs.metrics
.MetricsRegistry` to a scraper — renders through this module.  It
implements the classic Prometheus *text exposition format* (version
0.0.4): ``# HELP`` / ``# TYPE`` comment lines followed by sample lines,
counters suffixed ``_total``, histograms exploded into cumulative
``_bucket{le="..."}`` series plus ``_sum``/``_count``.

Three layers live here:

* **name/label hygiene** — registry names are hierarchical and dotted
  (``mc.sc0.rlp``); :func:`sanitize_metric_name` maps them onto the
  exposition grammar (``repro_mc_sc0_rlp``) and
  :func:`escape_label_value` applies the format's backslash escaping;
* :class:`Exposition` — a small builder collecting metric families
  (counter / gauge / histogram, with optional labels and help text) and
  rendering them in one deterministic pass;
* :func:`parse_exposition` — a strict ``promtool check metrics``-style
  line-format validator used by the tests and the CI smoke job, so the
  served document is checked against the grammar we claim to emit, not
  against our own renderer's habits.

Everything here is wall-clock- and load-bearing state (queue depths,
RSS, hit counters), so the exposition surface is explicitly **outside**
the byte-identity determinism contract — see ``docs/observability.md``.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Content type the exposition format is served under.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Metric-family kinds the renderer emits and the validator accepts.
KINDS = ("counter", "gauge", "histogram", "summary", "untyped")

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_CHARS_RE = re.compile(r"[^a-zA-Z0-9_:]")


class ExpositionFormatError(ValueError):
    """A document that violates the text exposition grammar; the
    message carries the offending line number and content."""


def sanitize_metric_name(name: str, prefix: str = "") -> str:
    """Map an arbitrary (dotted, hyphenated...) name onto the metric
    grammar ``[a-zA-Z_:][a-zA-Z0-9_:]*``.

    Invalid characters become ``_``; a leading digit is guarded with
    ``_``; an optional ``prefix`` (assumed already valid) is joined
    with ``_`` — ``sanitize_metric_name("mc.sc0.rlp", "repro")`` is
    ``"repro_mc_sc0_rlp"``.
    """
    cleaned = _INVALID_CHARS_RE.sub("_", name) or "_"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"{prefix}_{cleaned}" if prefix else cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the format: backslash, double quote and
    newline become ``\\\\``, ``\\"`` and ``\\n``."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def format_sample_value(value: float) -> str:
    """Render a sample value: integral values without a decimal point,
    non-finite values as ``+Inf``/``-Inf``/``NaN``."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_labels(labels: dict[str, str] | None) -> str:
    if not labels:
        return ""
    pairs = []
    for name in sorted(labels):
        if not _LABEL_NAME_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
        pairs.append(f'{name}="{escape_label_value(str(labels[name]))}"')
    return "{" + ",".join(pairs) + "}"


@dataclass
class _Family:
    """One metric family: a TYPE/HELP header plus its sample lines."""

    name: str
    kind: str
    help: str | None = None
    samples: list[str] = field(default_factory=list)

    def render(self) -> list[str]:
        lines = []
        if self.help is not None:
            help_text = self.help.replace("\\", "\\\\") \
                .replace("\n", "\\n")
            lines.append(f"# HELP {self.name} {help_text}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        lines.extend(self.samples)
        return lines


class Exposition:
    """Builder for one text-exposition document.

    Families render in insertion order; sample lines within a family
    render in insertion order too, so callers that feed sorted inputs
    (e.g. :func:`collect_registry`) get a deterministic document.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _family(self, name: str, kind: str,
                help_text: str | None) -> _Family:
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}; run it "
                             f"through sanitize_metric_name first")
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(name, kind,
                                                    help_text)
        elif family.kind != kind:
            raise ValueError(f"metric {name!r} already added as "
                             f"{family.kind}, not {kind}")
        return family

    def counter(self, name: str, value: float,
                labels: dict[str, str] | None = None,
                help_text: str | None = None) -> None:
        """Add one counter sample; the sample name gains the
        conventional ``_total`` suffix if not already present."""
        sample = name if name.endswith("_total") else name + "_total"
        family = self._family(sample, "counter", help_text)
        family.samples.append(
            f"{sample}{_render_labels(labels)} "
            f"{format_sample_value(value)}")

    def gauge(self, name: str, value: float,
              labels: dict[str, str] | None = None,
              help_text: str | None = None) -> None:
        """Add one gauge sample."""
        family = self._family(name, "gauge", help_text)
        family.samples.append(
            f"{name}{_render_labels(labels)} "
            f"{format_sample_value(value)}")

    def histogram(self, name: str, *, bounds: tuple[float, ...],
                  counts: list[int], overflow: int, count: int,
                  total: float, labels: dict[str, str] | None = None,
                  help_text: str | None = None) -> None:
        """Add one histogram: cumulative ``_bucket`` series (closed by
        the mandatory ``le="+Inf"`` bucket), then ``_sum``/``_count``.

        ``bounds``/``counts``/``overflow``/``count``/``total`` mirror
        :class:`~repro.obs.metrics.Histogram`'s fields — per-bucket
        counts are converted to the format's cumulative convention
        here.
        """
        family = self._family(name, "histogram", help_text)
        base = dict(labels) if labels else {}
        cumulative = 0
        for bound, bucket_count in zip(bounds, counts):
            cumulative += bucket_count
            bucket_labels = dict(base)
            bucket_labels["le"] = format_sample_value(float(bound))
            family.samples.append(
                f"{name}_bucket{_render_labels(bucket_labels)} "
                f"{cumulative}")
        inf_labels = dict(base)
        inf_labels["le"] = "+Inf"
        family.samples.append(
            f"{name}_bucket{_render_labels(inf_labels)} "
            f"{cumulative + overflow}")
        family.samples.append(
            f"{name}_sum{_render_labels(base)} "
            f"{format_sample_value(total)}")
        family.samples.append(
            f"{name}_count{_render_labels(base)} {count}")

    def render(self) -> str:
        """The document: families in insertion order, trailing newline."""
        lines: list[str] = []
        for family in self._families.values():
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""


def collect_registry(exposition: Exposition, registry: MetricsRegistry,
                     prefix: str = "repro") -> None:
    """Fold every instrument of ``registry`` into ``exposition``.

    Names are sanitized under ``prefix`` and iterated in sorted order,
    so the same registry contents always render the same document.
    """
    for name in registry.names():
        instrument = registry.get(name)
        metric = sanitize_metric_name(name, prefix)
        if isinstance(instrument, Histogram):
            exposition.histogram(
                metric, bounds=instrument.bounds,
                counts=list(instrument.counts),
                overflow=instrument.overflow,
                count=instrument.count, total=instrument.total)
        elif isinstance(instrument, Counter):
            exposition.counter(metric, instrument.value)
        elif isinstance(instrument, Gauge):
            exposition.gauge(metric, instrument.value)


# ----------------------------------------------------------------------
# Validation / parsing (the promtool-style line checker)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Sample:
    """One parsed sample line."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float

    def label(self, name: str, default: str | None = None) -> str | None:
        for key, value in self.labels:
            if key == name:
                return value
        return default


def _parse_value(raw: str, line_no: int) -> float:
    special = {"+Inf": math.inf, "-Inf": -math.inf, "Inf": math.inf,
               "NaN": math.nan}
    if raw in special:
        return special[raw]
    try:
        return float(raw)
    except ValueError:
        raise ExpositionFormatError(
            f"line {line_no}: invalid sample value {raw!r}") from None


def _parse_labels(raw: str, line_no: int) -> tuple[tuple[str, str], ...]:
    """Parse the ``{name="value",...}`` body (without the braces)."""
    labels: list[tuple[str, str]] = []
    position = 0
    length = len(raw)
    while position < length:
        equals = raw.find("=", position)
        if equals < 0:
            raise ExpositionFormatError(
                f"line {line_no}: malformed label pair near "
                f"{raw[position:]!r}")
        name = raw[position:equals].strip()
        if not _LABEL_NAME_RE.match(name):
            raise ExpositionFormatError(
                f"line {line_no}: invalid label name {name!r}")
        position = equals + 1
        if position >= length or raw[position] != '"':
            raise ExpositionFormatError(
                f"line {line_no}: label value of {name!r} is not "
                f"quoted")
        position += 1
        value_chars: list[str] = []
        while True:
            if position >= length:
                raise ExpositionFormatError(
                    f"line {line_no}: unterminated label value for "
                    f"{name!r}")
            char = raw[position]
            if char == "\\":
                if position + 1 >= length:
                    raise ExpositionFormatError(
                        f"line {line_no}: dangling escape in label "
                        f"value for {name!r}")
                escape = raw[position + 1]
                if escape == "n":
                    value_chars.append("\n")
                elif escape in ("\\", '"'):
                    value_chars.append(escape)
                else:
                    raise ExpositionFormatError(
                        f"line {line_no}: invalid escape "
                        f"'\\{escape}' in label value for {name!r}")
                position += 2
                continue
            if char == '"':
                position += 1
                break
            value_chars.append(char)
            position += 1
        labels.append((name, "".join(value_chars)))
        if position < length:
            if raw[position] != ",":
                raise ExpositionFormatError(
                    f"line {line_no}: expected ',' between labels, "
                    f"got {raw[position]!r}")
            position += 1
    return tuple(labels)


def parse_exposition(text: str) -> list[Sample]:
    """Parse and validate a text-exposition document.

    Enforces the grammar the way ``promtool check metrics`` does:
    metric and label names must match the format's character classes,
    label values must be correctly quoted and escaped, values must
    parse as floats (or the ``+Inf``/``-Inf``/``NaN`` specials), every
    ``# TYPE`` must use a known kind, appear at most once per family,
    and precede that family's samples.  Raises
    :class:`ExpositionFormatError` on the first violation; returns the
    parsed :class:`Sample` list otherwise.
    """
    samples: list[Sample] = []
    typed: dict[str, str] = {}
    seen_families: set[str] = set()
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _METRIC_NAME_RE.match(parts[2]):
                    raise ExpositionFormatError(
                        f"line {line_no}: {parts[1]} line without a "
                        f"valid metric name")
                if parts[1] == "TYPE":
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in KINDS:
                        raise ExpositionFormatError(
                            f"line {line_no}: unknown metric type "
                            f"{kind!r}")
                    if parts[2] in typed:
                        raise ExpositionFormatError(
                            f"line {line_no}: duplicate TYPE for "
                            f"{parts[2]!r}")
                    if parts[2] in seen_families:
                        raise ExpositionFormatError(
                            f"line {line_no}: TYPE for {parts[2]!r} "
                            f"after its samples")
                    typed[parts[2]] = kind
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ExpositionFormatError(
                    f"line {line_no}: unbalanced braces")
            name = line[:brace].strip()
            labels = _parse_labels(line[brace + 1:close], line_no)
            rest = line[close + 1:].split()
        else:
            fields = line.split()
            name = fields[0] if fields else ""
            labels = ()
            rest = fields[1:]
        if not _METRIC_NAME_RE.match(name):
            raise ExpositionFormatError(
                f"line {line_no}: invalid metric name {name!r}")
        if not rest or len(rest) > 2:  # optional trailing timestamp
            raise ExpositionFormatError(
                f"line {line_no}: expected '<name>[{{labels}}] "
                f"<value> [timestamp]'")
        value = _parse_value(rest[0], line_no)
        for family, kind in typed.items():
            if kind == "histogram" and (
                    name in (f"{family}_sum", f"{family}_count",
                             f"{family}_bucket")):
                seen_families.add(family)
                break
        else:
            seen_families.add(name)
        samples.append(Sample(name=name, labels=labels, value=value))
    return samples


def sample_value(samples: list[Sample], name: str,
                 **labels: str) -> float | None:
    """The value of the first sample matching ``name`` and ``labels``
    (a convenience for tests and the CI smoke assertions)."""
    wanted = tuple(sorted(labels.items()))
    for sample in samples:
        if sample.name != name:
            continue
        if all(sample.label(key) == value for key, value in wanted):
            return sample.value
    return None
