"""Hierarchical span tracing across the sweep fabric.

A *span* is one timed region of the sweep with a name, a kind, optional
structured metadata, point-in-time *events* and nested child spans.  The
tracer records the execution of a sweep as a tree::

    sweep                      (one per SweepExecutor.run_cells call)
    └── cell                   (one per cell, in submission order)
        └── attempt            (exec-side: where/when the cell computed)
            ├── build_traces   (phase)
            └── run:<policy>   (phase)
                ├── engine:event_loop
                └── engine:finish

with cache hits, retries, timeouts and pool-break fallbacks recorded as
*span events* on the enclosing span.

Spans are strictly opt-in (``Telemetry(spans=True)``) and cross process
boundaries by riding the :class:`~repro.obs.snapshot.TelemetrySnapshot`
capture/merge path: a worker's capture telemetry records the cell's
subtree, :func:`~repro.obs.snapshot.capture_snapshot` freezes it into
document form, and the parent grafts it under the cell span at merge
time — so the same subtree is replayed identically whether the cell ran
inline, in a worker, or straight out of the ``<fp>.obs.json`` cache
sidecar.

Determinism contract (``tests/test_obs_spans.py``): the **normalized**
tree — wall-clock fields stripped, execution-side spans spliced out and
execution-side events dropped — is byte-identical across serial,
``--jobs N``, warm-cache and ``--resume`` sweeps.  Anything
nondeterministic (timings, worker pids, attempt indices, cache-hit
events) must therefore be marked ``exec_side`` or live in the stripped
wall-clock fields; ``meta`` of a non-exec span must hold simulated /
structural values only.

Timeline semantics: span *durations* are measured wall-clock where the
work actually ran; span *placement* is logical.  Worker-side spans are
recorded in real time, but the parent's per-cell merge spans are opened
with ``rebase=True``: a rebased span starts where its previous sibling
ended (or at its parent's start) and ends where its last child ends,
never consulting the wall clock — so the cells of a sweep lay out
sequentially in submission order even though the merge happens long
after the computation it describes.  That keeps the tree
mode-independent: the sweep root spans ``max(real elapsed, serialized
work)``, and the critical path (:mod:`repro.analysis.spans`) — the sum
of measured durations along the longest chain — matches the profiling
wall time of a serial sweep and measures *total work* for a parallel
or cache-served one.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

#: Version stamped into span documents; bump on breaking changes.
SPANS_SCHEMA_VERSION = 1

#: Well-known span kinds (free-form strings; these are the ones the
#: executor/runner emit and the analyzer groups by).
KIND_SWEEP = "sweep"
KIND_CELL = "cell"
KIND_ATTEMPT = "attempt"
KIND_PHASE = "phase"
KIND_ENGINE = "engine"


class Span:
    """One timed region: name, kind, meta, events, children.

    ``t0_s``/``t1_s`` are seconds relative to the owning tracer's epoch
    (``t1_s`` is ``None`` while the span is open).  ``exec_side`` marks
    spans whose existence depends on *how* the sweep executed (attempts,
    retries) rather than *what* it computed; they are spliced out of the
    normalized tree.
    """

    __slots__ = ("name", "kind", "t0_s", "t1_s", "meta", "events",
                 "children", "exec_side")

    def __init__(self, name: str, kind: str = KIND_PHASE,
                 t0_s: float = 0.0, t1_s: float | None = None,
                 meta: dict | None = None, exec_side: bool = False) -> None:
        self.name = name
        self.kind = kind
        self.t0_s = t0_s
        self.t1_s = t1_s
        self.meta = dict(meta) if meta else {}
        self.events: list[dict] = []
        self.children: list[Span] = []
        self.exec_side = exec_side

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return 0.0 if self.t1_s is None else self.t1_s - self.t0_s

    def walk(self):
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, kind={self.kind!r}, "
                f"dur={self.duration_s:.6f}s, "
                f"children={len(self.children)})")


class SpanTracer:
    """Records a span tree against a private monotonic epoch.

    The tracer keeps an open-span stack: :meth:`begin` attaches the new
    span to the innermost open span (or as a new root) and pushes it;
    :meth:`end` closes it.  A span never starts before its previous
    sibling ended — real time moves only forward, and grafted subtrees
    (whose recorded times belong to another process's epoch) are laid
    out sequentially at the insertion point.
    """

    __slots__ = ("epoch", "roots", "_stack", "_rebased")

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        #: ids of open spans placed logically (``begin(rebase=True)``).
        self._rebased: set[int] = set()

    def now(self) -> float:
        """Seconds since the tracer's epoch."""
        return time.perf_counter() - self.epoch

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, name: str, kind: str = KIND_PHASE,
              meta: dict | None = None, exec_side: bool = False,
              rebase: bool = False) -> Span:
        """Open a span nested under the innermost open span.

        ``rebase=True`` places the span logically instead of at the
        wall clock: it starts where its previous sibling ended (or at
        its parent's start) and :meth:`end` will close it at its last
        child's end.  The executor uses this for the per-cell merge
        spans, whose grafted content describes work that happened
        earlier, elsewhere.
        """
        siblings = self._stack[-1].children if self._stack else self.roots
        t0 = self._cursor() if rebase else \
            max(self.now(), self._cursor())
        span = Span(name, kind, t0_s=t0, meta=meta, exec_side=exec_side)
        siblings.append(span)
        self._stack.append(span)
        if rebase:
            self._rebased.add(id(span))
        return span

    def end(self, span: Span, meta: dict | None = None) -> None:
        """Close ``span``; its end extends to cover every child.

        Rebased spans end at their last child (they live on the logical
        timeline); everything else ends no earlier than now.
        """
        if meta:
            span.meta.update(meta)
        end = span.t0_s if id(span) in self._rebased else self.now()
        self._rebased.discard(id(span))
        for child in span.children:
            if child.t1_s is not None and child.t1_s > end:
                end = child.t1_s
        if end < span.t0_s:
            end = span.t0_s
        span.t1_s = end
        if span in self._stack:
            while self._stack and self._stack.pop() is not span:
                pass

    def _cursor(self) -> float:
        """The logical insertion point at the current nesting level:
        the previous sibling's end, else the open parent's start, else
        0.0 at the root."""
        siblings = self._stack[-1].children if self._stack else self.roots
        if siblings and siblings[-1].t1_s is not None:
            return siblings[-1].t1_s
        if self._stack:
            return self._stack[-1].t0_s
        return 0.0

    @contextmanager
    def span(self, name: str, kind: str = KIND_PHASE,
             meta: dict | None = None, exec_side: bool = False):
        """Context manager form of :meth:`begin`/:meth:`end`."""
        span = self.begin(name, kind, meta=meta, exec_side=exec_side)
        try:
            yield span
        finally:
            self.end(span)

    def event(self, name: str, meta: dict | None = None,
              exec_side: bool = True) -> dict | None:
        """Record a point-in-time event on the innermost open span.

        Dropped (returns ``None``) when no span is open — events only
        make sense inside a region.  Events default to ``exec_side``
        because nearly all of them (cache hits, retries, timeouts)
        describe execution, not simulation.
        """
        if not self._stack:
            return None
        record: dict = {"name": name, "t_s": self.now(),
                        "exec": bool(exec_side)}
        if meta:
            record["meta"] = dict(meta)
        self._stack[-1].events.append(record)
        return record

    def current(self) -> Span | None:
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # Cross-process graft
    # ------------------------------------------------------------------
    def graft_docs(self, docs: list) -> list[Span]:
        """Adopt span documents (another tracer's subtree) here.

        The documents are copied into fresh :class:`Span` objects (the
        source — typically a cached, replayable snapshot — is never
        mutated) and rebased as a block: relative offsets inside the
        subtree are preserved, and the block is placed at the logical
        insertion cursor — the previous sibling's end, else the open
        parent's start (the wall clock is irrelevant: the block
        describes work that already happened, possibly in another
        process).  Undecodable documents are skipped — a damaged
        sidecar degrades to a thinner tree, never an exception.
        """
        spans = [span for span in map(span_from_doc, docs)
                 if span is not None]
        if not spans:
            return []
        siblings = self._stack[-1].children if self._stack else self.roots
        cursor = self._cursor() if self._stack else \
            max(self.now(), self._cursor())
        shift = cursor - min(span.t0_s for span in spans)
        for span in spans:
            _shift(span, shift)
            siblings.append(span)
        return spans

    def to_docs(self) -> list[dict]:
        """Every root span in document form."""
        return [span_to_doc(root) for root in self.roots]

    def span_count(self) -> int:
        """Total spans recorded (all roots, all depths)."""
        return sum(1 for root in self.roots for _ in root.walk())


def _shift(span: Span, delta_s: float) -> None:
    span.t0_s += delta_s
    if span.t1_s is not None:
        span.t1_s += delta_s
    for event in span.events:
        event["t_s"] = event.get("t_s", 0.0) + delta_s
    for child in span.children:
        _shift(child, delta_s)


# ----------------------------------------------------------------------
# Document form (JSON-able, rides TelemetrySnapshot and span files)
# ----------------------------------------------------------------------
def span_to_doc(span: Span) -> dict:
    """JSON-serialisable document form of ``span`` (deep copy)."""
    return {
        "name": span.name,
        "kind": span.kind,
        "t0_s": span.t0_s,
        "t1_s": span.t1_s,
        "exec": span.exec_side,
        "meta": dict(span.meta),
        "events": [dict(event) for event in span.events],
        "children": [span_to_doc(child) for child in span.children],
    }


def span_from_doc(doc) -> Span | None:
    """Rebuild a span from its document form.

    Returns ``None`` on structural mismatch so a corrupt span document
    is treated like a missing one (mirrors ``snapshot_from_doc``).
    """
    if not isinstance(doc, dict):
        return None
    name = doc.get("name")
    kind = doc.get("kind")
    t0 = doc.get("t0_s")
    t1 = doc.get("t1_s")
    meta = doc.get("meta", {})
    events = doc.get("events", [])
    children = doc.get("children", [])
    if not isinstance(name, str) or not isinstance(kind, str):
        return None
    if not isinstance(t0, (int, float)):
        return None
    if t1 is not None and not isinstance(t1, (int, float)):
        return None
    if not isinstance(meta, dict) or not isinstance(events, list) \
            or not isinstance(children, list):
        return None
    if not all(isinstance(event, dict) and isinstance(event.get("name"),
                                                      str)
               for event in events):
        return None
    span = Span(name, kind, t0_s=float(t0),
                t1_s=None if t1 is None else float(t1),
                meta=meta, exec_side=bool(doc.get("exec", False)))
    span.events = [dict(event) for event in events]
    for child_doc in children:
        child = span_from_doc(child_doc)
        if child is None:
            return None
        span.children.append(child)
    return span


# ----------------------------------------------------------------------
# Normalization (the cross-mode determinism contract)
# ----------------------------------------------------------------------
def normalized_tree(spans: list[Span]) -> list[dict]:
    """The deterministic skeleton of a span forest.

    Strips every wall-clock field, drops execution-side events, and
    *splices* execution-side spans — their (non-exec) children are
    promoted into the parent's child list in order, so a cell's phase
    spans survive the removal of the ``attempt`` wrapper around them.
    Serial, parallel, warm-cache and resumed sweeps must produce
    byte-identical normalized trees (compare ``json.dumps`` with
    ``sort_keys=True``).
    """
    normalized: list[dict] = []
    for span in spans:
        if span.exec_side:
            normalized.extend(normalized_tree(span.children))
            continue
        normalized.append({
            "name": span.name,
            "kind": span.kind,
            "meta": dict(span.meta),
            "events": [
                {"name": event["name"], "meta": event.get("meta", {})}
                for event in span.events if not event.get("exec", True)
            ],
            "children": normalized_tree(span.children),
        })
    return normalized
