"""Ambient telemetry: a process-wide active :class:`~repro.obs.Telemetry`.

Experiment runners are invoked through a registry with a fixed
``run(quick=..., seed=...)`` signature, so telemetry cannot be threaded
through every call chain without breaking 20+ entry points.  Instead the
CLI (or a test/benchmark harness) *activates* a telemetry object here and
:func:`~repro.sim.runner.run_simulation` picks it up when no explicit one
is passed.

The default is ``None`` — with nothing activated, every instrumented
site reduces to a single ``is None`` check, which keeps the disabled-path
overhead unmeasurable.
"""

from __future__ import annotations

from contextlib import contextmanager

_active = None


def activate(telemetry) -> None:
    """Make ``telemetry`` the ambient instance (``None`` to clear)."""
    global _active
    _active = telemetry


def active():
    """The ambient telemetry instance, or ``None``."""
    return _active


def deactivate() -> None:
    """Clear the ambient telemetry."""
    activate(None)


def active_spans():
    """The ambient telemetry's span tracer, or ``None``.

    Collapses the two-level guard (telemetry active? spans enabled?)
    into one call for instrumentation sites that only emit spans.
    """
    telemetry = _active
    return None if telemetry is None else telemetry.spans


@contextmanager
def activated(telemetry):
    """Scope ``telemetry`` as ambient for a ``with`` block."""
    previous = _active
    activate(telemetry)
    try:
        yield telemetry
    finally:
        activate(previous)
