"""Ambient telemetry: a per-thread active :class:`~repro.obs.Telemetry`.

Experiment runners are invoked through a registry with a fixed
``run(quick=..., seed=...)`` signature, so telemetry cannot be threaded
through every call chain without breaking 20+ entry points.  Instead the
CLI (or a test/benchmark harness) *activates* a telemetry object here and
:func:`~repro.sim.runner.run_simulation` picks it up when no explicit one
is passed.

Activation is **thread-local**: every instrumented site reads the
ambient slot on the same thread that activated it (the CLI main thread,
a service job worker, a test body), and the sweep service runs
concurrent jobs each under a private per-job :class:`Telemetry` — a
process-wide slot would bleed one job's metrics and spans into a
neighbour running at the same time.  Pool workers never inherit an
ambient telemetry either way (:func:`~repro.exec.executor._worker_init`
deactivates on bootstrap); cells record through explicit
:class:`~repro.obs.snapshot.CaptureSpec` objects instead.

The default is ``None`` — with nothing activated, every instrumented
site reduces to a single ``is None`` check, which keeps the disabled-path
overhead unmeasurable.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

_local = threading.local()


def activate(telemetry) -> None:
    """Make ``telemetry`` the ambient instance on this thread (``None``
    to clear)."""
    _local.active = telemetry


def active():
    """This thread's ambient telemetry instance, or ``None``."""
    return getattr(_local, "active", None)


def deactivate() -> None:
    """Clear this thread's ambient telemetry."""
    activate(None)


def active_spans():
    """The ambient telemetry's span tracer, or ``None``.

    Collapses the two-level guard (telemetry active? spans enabled?)
    into one call for instrumentation sites that only emit spans.
    """
    telemetry = active()
    return None if telemetry is None else telemetry.spans


@contextmanager
def activated(telemetry):
    """Scope ``telemetry`` as this thread's ambient for a ``with``
    block."""
    previous = active()
    activate(telemetry)
    try:
        yield telemetry
    finally:
        activate(previous)
