"""Lightweight process-resource sampling (RSS, open file descriptors).

The sweep service's metrics exposition wants two load-bearing gauges a
Python process cannot read from its own interpreter state: resident-set
size and the open-fd count.  :class:`ResourceSampler` reads both from
``/proc/self`` (with a ``resource.getrusage`` fallback for non-Linux
hosts) and publishes them as ``proc.rss_bytes`` / ``proc.open_fds``
gauges in a :class:`~repro.obs.metrics.MetricsRegistry`.

Sampling is cheap (two small ``/proc`` reads) and happens two ways:

* **on demand** — the metrics endpoint calls :meth:`sample` at scrape
  time so the exposition always carries fresh values;
* **periodically** — :meth:`start` runs a daemon thread sampling every
  ``interval_s``, so in-process consumers of the registry (and a crash
  post-mortem of the last written metrics snapshot) see recent values
  even when nobody scrapes.

Both gauges are wall-clock/host-state quantities: they live outside
the deterministic ``metrics`` byte-identity contract (the exporter's
docs state the scope; see ``docs/observability.md``).
"""

from __future__ import annotations

import os
import threading

from repro.obs.metrics import MetricsRegistry

#: Default seconds between background samples.
DEFAULT_INTERVAL_S = 5.0

#: Registry gauge names the sampler publishes.
RSS_GAUGE = "proc.rss_bytes"
OPEN_FDS_GAUGE = "proc.open_fds"


def rss_bytes() -> int:
    """Current resident-set size in bytes (0 when unreadable).

    Prefers ``/proc/self/statm`` (second field: resident pages); falls
    back to ``getrusage`` peak RSS (kilobytes on Linux) elsewhere.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource as resource_module

        usage = resource_module.getrusage(resource_module.RUSAGE_SELF)
        return int(usage.ru_maxrss) * 1024
    except (ImportError, OSError, ValueError):
        return 0


def open_fds() -> int:
    """Number of open file descriptors (0 when unreadable)."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return 0


class ResourceSampler:
    """Samples process RSS / open-fd gauges into a metrics registry.

    Usable three ways: call :meth:`sample` directly, run the background
    thread via :meth:`start`/:meth:`stop`, or context-manage it (enter
    starts, exit stops).  ``start`` takes an initial sample before the
    thread's first interval so gauges are never zero-by-omission.
    """

    def __init__(self, registry: MetricsRegistry,
                 interval_s: float = DEFAULT_INTERVAL_S) -> None:
        self.registry = registry
        self.interval_s = interval_s
        self.samples = 0
        self._rss = registry.gauge(RSS_GAUGE)
        self._fds = registry.gauge(OPEN_FDS_GAUGE)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def sample(self) -> dict:
        """Take one sample; sets both gauges, returns the values."""
        rss = rss_bytes()
        fds = open_fds()
        self._rss.set(rss)
        self._fds.set(fds)
        self.samples += 1
        return {"rss_bytes": rss, "open_fds": fds}

    # ------------------------------------------------------------------
    # Background thread
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the daemon sampler thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self.sample()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-resource-sampler",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the sampler thread (idempotent; safe if never started)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def __enter__(self) -> "ResourceSampler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
