"""Time-series sampling driven by simulated time.

The sampler piggybacks on the REF cadence (the simulator's only periodic
heartbeat, see :class:`~repro.dram.refresh.RefreshScheduler`): every
``sample_every_refi`` REF commands it snapshots one sub-channel's
counters, differences them against the previous tick, and records a
:class:`TimelineSample` — activations per window, DRFM issue counts and
achieved RLP, RMAQ hits/skips, row-hit rate, open-bank occupancy and
event-queue depth.

Sampling is read-only: it never touches policy RNG streams or bank
timing, so enabling it cannot perturb simulated behaviour.  Because it
runs once per N tREFI (not per request) its wall-clock cost is noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

#: Default sampling period in tREFI units.
DEFAULT_SAMPLE_EVERY_REFI = 8


@dataclass(frozen=True)
class TimelineSample:
    """One sampler tick for one sub-channel (interval deltas)."""

    subchannel: int
    tick: int
    time_ps: int
    ref_index: int
    activations: int
    row_hits: int
    row_conflicts: int
    row_hit_rate: float
    samples: int
    mitigation_commands: int
    mitigated_rows: int
    rlp: float
    selections: int
    rmaq_hits: int
    rmaq_skips: int
    open_banks: int
    valid_dars: int
    queue_depth: int

    def to_record(self) -> dict:
        """Journal payload for this sample."""
        return {
            "sc": self.subchannel,
            "tick": self.tick,
            "t_ps": self.time_ps,
            "ref": self.ref_index,
            "acts": self.activations,
            "hits": self.row_hits,
            "conflicts": self.row_conflicts,
            "hit_rate": round(self.row_hit_rate, 4),
            "samples": self.samples,
            "drfm": self.mitigation_commands,
            "rows_mitigated": self.mitigated_rows,
            "rlp": round(self.rlp, 3),
            "selections": self.selections,
            "rmaq_hits": self.rmaq_hits,
            "rmaq_skips": self.rmaq_skips,
            "open_banks": self.open_banks,
            "valid_dars": self.valid_dars,
            "queue_depth": self.queue_depth,
        }


class _Cursor:
    """Previous cumulative counters for one attached sub-channel."""

    __slots__ = ("controller", "policy", "previous", "ticks")

    def __init__(self, controller, policy) -> None:
        self.controller = controller
        self.policy = policy
        self.previous = self.cumulative()
        self.ticks = 0

    def cumulative(self) -> dict:
        subchannel = self.controller.subchannel
        activations = row_hits = row_conflicts = samples = 0
        for bank in subchannel.banks:  # one pass, not four
            stats = bank.stats
            activations += stats.activations
            row_hits += stats.row_hits
            row_conflicts += stats.row_conflicts
            samples += stats.samples
        totals = {
            "activations": activations,
            "row_hits": row_hits,
            "row_conflicts": row_conflicts,
            "samples": samples,
            "mitigation_commands": subchannel.stats.mitigation_commands,
            "mitigated_rows": subchannel.stats.mitigated_rows,
            "selections": 0,
            "rmaq_hits": 0,
            "rmaq_skips": 0,
        }
        policy = self.policy
        if policy is not None:
            totals["selections"] = policy.stats.selections
            totals["rmaq_skips"] = policy.stats.samples_skipped_rate_limit
            totals["rmaq_hits"] = _rmaq_hits(policy)
        return totals


def _rmaq_hits(policy) -> int:
    """Total RMAQ hits of a policy (per-bank list or single queue)."""
    rmaq = getattr(policy, "rmaq", None)
    if rmaq is None:
        return 0
    if isinstance(rmaq, list):
        return sum(queue.hits for queue in rmaq)
    return rmaq.hits


@dataclass
class TimelineSampler:
    """Collects :class:`TimelineSample` ticks across sub-channels.

    ``attach`` registers the sampler on one sub-channel controller's
    refresh scheduler; the runner supplies ``queue_depth`` so ticks can
    record how much work is pending in the event queue.
    """

    sample_every_refi: int = DEFAULT_SAMPLE_EVERY_REFI
    journal: object | None = None
    samples: list[TimelineSample] = field(default_factory=list)
    queue_depth: Callable[[], int] | None = None
    _cursors: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sample_every_refi < 1:
            raise ValueError("sample_every_refi must be positive")

    def attach(self, controller, policy=None) -> None:
        """Start sampling one sub-channel controller."""
        index = controller.subchannel.index
        cursor = _Cursor(controller, policy)
        self._cursors[index] = cursor
        controller.refresh.on_ref(
            lambda ref_index, time_ps, _index=index:
            self._on_ref(_index, ref_index, time_ps))

    def _on_ref(self, subchannel: int, ref_index: int,
                time_ps: int) -> None:
        if (ref_index + 1) % self.sample_every_refi:
            return
        self.tick(subchannel, ref_index, time_ps)

    def tick(self, subchannel: int, ref_index: int, time_ps: int) -> \
            TimelineSample:
        """Take one sample of ``subchannel`` now (also used by tests)."""
        cursor = self._cursors[subchannel]
        now = cursor.cumulative()
        delta = {key: now[key] - cursor.previous[key] for key in now}
        cursor.previous = now
        banks = cursor.controller.subchannel.banks
        accesses = delta["activations"] + delta["row_hits"]
        commands = delta["mitigation_commands"]
        sample = TimelineSample(
            subchannel=subchannel,
            tick=cursor.ticks,
            time_ps=time_ps,
            ref_index=ref_index,
            activations=delta["activations"],
            row_hits=delta["row_hits"],
            row_conflicts=delta["row_conflicts"],
            row_hit_rate=(delta["row_hits"] / accesses if accesses
                          else 0.0),
            samples=delta["samples"],
            mitigation_commands=commands,
            mitigated_rows=delta["mitigated_rows"],
            rlp=(delta["mitigated_rows"] / commands if commands else 0.0),
            selections=delta["selections"],
            rmaq_hits=delta["rmaq_hits"],
            rmaq_skips=delta["rmaq_skips"],
            open_banks=sum(1 for bank in banks
                           if bank.open_row is not None),
            valid_dars=cursor.controller.subchannel.valid_dar_count(),
            queue_depth=self.queue_depth() if self.queue_depth is not None
            else 0,
        )
        cursor.ticks += 1
        self.samples.append(sample)
        if self.journal is not None:
            self.journal.write("sample", **sample.to_record())
        return sample

    def for_subchannel(self, subchannel: int) -> list[TimelineSample]:
        """Samples of one sub-channel in tick order."""
        return [sample for sample in self.samples
                if sample.subchannel == subchannel]

    def detach_all(self) -> None:
        """Forget attached controllers (samples are retained)."""
        self._cursors.clear()
