"""Live sweep progress reporting (opt-in via ``--progress``).

The executor feeds one :class:`SweepProgress` with cell-level events —
submitted, cache hit, resumed, computed, retried, failed — and the
reporter renders a single self-overwriting status line on a TTY:

    [repro.exec] 14/24 cells  computed=8 hits=5 resumed=1 retried=2  eta 12s

ETA comes from an exponentially-weighted moving average of per-cell
wall seconds (computed cells only — hits are effectively free), times
the number of outstanding cells; it is deliberately a rough, cheap
figure.

Rendering is **TTY-aware**: when the stream is not a terminal (CI logs,
pipes) nothing is printed at all — instead every event mirrors into the
ambient obs metrics registry as ``exec.progress.*`` counters, so
non-interactive runs still expose progress through ``--metrics-out``.
Those counters are execution-side quantities and live in the ``exec``
section of the metrics dump, outside the deterministic ``metrics``
section (a warm-cache run legitimately has different hit counts).
"""

from __future__ import annotations

import sys

from repro.obs import runtime as obs_runtime

#: Completion event kinds (each advances the done count by one cell).
_DONE_KINDS = ("computed", "hit", "resumed")

#: All event kinds the reporter understands.
KINDS = _DONE_KINDS + ("retried", "failed")

#: EWMA smoothing factor for per-cell wall seconds.
EWMA_ALPHA = 0.3


class SweepProgress:
    """TTY-aware live progress over the cells of a sweep."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        isatty = getattr(self.stream, "isatty", None)
        self.interactive = bool(isatty()) if isatty is not None else False
        self.total = 0
        self.done = 0
        self.counts: dict[str, int] = {kind: 0 for kind in KINDS}
        self.ewma_s: float | None = None
        self._dirty = False
        self._last_width = 0

    # ------------------------------------------------------------------
    # Event feed (called by SweepExecutor)
    # ------------------------------------------------------------------
    def add_cells(self, count: int) -> None:
        """Announce ``count`` more cells entering the sweep."""
        self.total += count
        self._mirror("submitted", count)
        self._render()

    def record(self, kind: str, seconds: float | None = None) -> None:
        """Record one cell event; ``seconds`` feeds the ETA EWMA."""
        if kind not in KINDS:
            raise ValueError(f"unknown progress event kind: {kind!r}")
        self.counts[kind] += 1
        if kind in _DONE_KINDS:
            self.done += 1
        if seconds is not None:
            if self.ewma_s is None:
                self.ewma_s = seconds
            else:
                self.ewma_s += EWMA_ALPHA * (seconds - self.ewma_s)
        self._mirror(kind, 1)
        self._render()

    def finish(self) -> None:
        """Terminate a pending status line (idempotent)."""
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False

    # ------------------------------------------------------------------
    # Derived state / rendering
    # ------------------------------------------------------------------
    @property
    def eta_s(self) -> float | None:
        """Estimated seconds to completion (``None`` before any timing)."""
        if self.ewma_s is None:
            return None
        return self.ewma_s * max(0, self.total - self.done)

    def describe(self) -> str:
        """The current status line (without carriage control)."""
        parts = [f"[repro.exec] {self.done}/{self.total} cells"]
        shown = "  ".join(f"{kind}={count}"
                          for kind, count in self.counts.items() if count)
        if shown:
            parts.append(shown)
        eta = self.eta_s
        if eta is not None and self.done < self.total:
            parts.append(f"eta {eta:.0f}s")
        return "  ".join(parts)

    def _render(self) -> None:
        if not self.interactive:
            return
        line = self.describe()
        padding = " " * max(0, self._last_width - len(line))
        self.stream.write("\r" + line + padding)
        self.stream.flush()
        self._last_width = len(line)
        self._dirty = True

    def _mirror(self, kind: str, amount: int) -> None:
        telemetry = obs_runtime.active()
        if telemetry is not None:
            telemetry.registry.counter(f"exec.progress.{kind}").inc(amount)
