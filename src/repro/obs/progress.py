"""Live sweep progress reporting (opt-in via ``--progress``).

The executor feeds one :class:`SweepProgress` with cell-level events —
submitted, cache hit, resumed, computed, retried, failed — and the
reporter renders a single self-overwriting status line on a TTY:

    [repro.exec] 14/24 cells  computed=8 hits=5 resumed=1 retried=2  eta 12s

ETA comes from an exponentially-weighted moving average of per-cell
wall seconds (computed cells only — hits are effectively free), times
the number of outstanding cells; it is deliberately a rough, cheap
figure.

Rendering is **TTY-aware**.  On a terminal the line overwrites itself
with carriage returns; when the stream is not a terminal (CI logs,
pipes) the reporter instead prints plain full lines — one when cells
are announced, then at most one every :attr:`plain_interval_s` seconds,
then a final summary line from :meth:`finish` — so a captured log shows
the sweep advancing instead of nothing at all.  Every event also
mirrors into the ambient obs metrics registry as ``exec.progress.*``
counters, so non-interactive runs additionally expose progress through
``--metrics-out``.  Those counters are execution-side quantities and
live in the ``exec`` section of the metrics dump, outside the
deterministic ``metrics`` section (a warm-cache run legitimately has
different hit counts).
"""

from __future__ import annotations

import sys
import time

from repro.obs import runtime as obs_runtime

#: Completion event kinds (each advances the done count by one cell).
_DONE_KINDS = ("computed", "hit", "resumed")

#: All event kinds the reporter understands.
KINDS = _DONE_KINDS + ("retried", "failed")

#: EWMA smoothing factor for per-cell wall seconds.
EWMA_ALPHA = 0.3

#: Default seconds between plain progress lines on non-TTY streams.
DEFAULT_PLAIN_INTERVAL_S = 10.0


class SweepProgress:
    """TTY-aware live progress over the cells of a sweep."""

    def __init__(self, stream=None,
                 plain_interval_s: float = DEFAULT_PLAIN_INTERVAL_S) \
            -> None:
        self.stream = stream if stream is not None else sys.stderr
        isatty = getattr(self.stream, "isatty", None)
        self.interactive = bool(isatty()) if isatty is not None else False
        self.plain_interval_s = plain_interval_s
        self.total = 0
        self.done = 0
        self.counts: dict[str, int] = {kind: 0 for kind in KINDS}
        self.ewma_s: float | None = None
        self._dirty = False
        self._last_width = 0
        self._last_plain: float | None = None
        self._finished = False

    # ------------------------------------------------------------------
    # Event feed (called by SweepExecutor)
    # ------------------------------------------------------------------
    def add_cells(self, count: int) -> None:
        """Announce ``count`` more cells entering the sweep."""
        self.total += count
        self._finished = False
        self._mirror("submitted", count)
        if not self.interactive:
            # Always open a sweep with a line, whatever the throttle
            # says — a CI log should show the sweep starting.
            self._render_plain(force=True)
            return
        self._render()

    def record(self, kind: str, seconds: float | None = None) -> None:
        """Record one cell event; ``seconds`` feeds the ETA EWMA."""
        if kind not in KINDS:
            raise ValueError(f"unknown progress event kind: {kind!r}")
        self.counts[kind] += 1
        if kind in _DONE_KINDS:
            self.done += 1
        if seconds is not None:
            if self.ewma_s is None:
                self.ewma_s = seconds
            else:
                self.ewma_s += EWMA_ALPHA * (seconds - self.ewma_s)
        self._mirror(kind, 1)
        self._render()

    def finish(self) -> None:
        """Close out the sweep's reporting (idempotent).

        On a TTY this terminates the pending status line; on non-TTY
        streams it prints one final summary line, so even a sweep
        shorter than the plain-line interval leaves its outcome in the
        log.
        """
        if self.interactive:
            if self._dirty:
                self.stream.write("\n")
                self.stream.flush()
                self._dirty = False
            return
        if self._finished:
            return
        self._finished = True
        self.stream.write(self.describe() + "  done\n")
        self.stream.flush()

    # ------------------------------------------------------------------
    # Derived state / rendering
    # ------------------------------------------------------------------
    @property
    def eta_s(self) -> float | None:
        """Estimated seconds to completion (``None`` before any timing)."""
        if self.ewma_s is None:
            return None
        return self.ewma_s * max(0, self.total - self.done)

    def describe(self) -> str:
        """The current status line (without carriage control)."""
        parts = [f"[repro.exec] {self.done}/{self.total} cells"]
        shown = "  ".join(f"{kind}={count}"
                          for kind, count in self.counts.items() if count)
        if shown:
            parts.append(shown)
        eta = self.eta_s
        if eta is not None and self.done < self.total:
            parts.append(f"eta {eta:.0f}s")
        return "  ".join(parts)

    def _render(self) -> None:
        if not self.interactive:
            self._render_plain()
            return
        line = self.describe()
        padding = " " * max(0, self._last_width - len(line))
        self.stream.write("\r" + line + padding)
        self.stream.flush()
        self._last_width = len(line)
        self._dirty = True

    def _render_plain(self, force: bool = False) -> None:
        """Throttled plain-line rendering for non-TTY streams."""
        now = time.monotonic()
        if not force and self._last_plain is not None and \
                now - self._last_plain < self.plain_interval_s:
            return
        self._last_plain = now
        self.stream.write(self.describe() + "\n")
        self.stream.flush()

    def _mirror(self, kind: str, amount: int) -> None:
        telemetry = obs_runtime.active()
        if telemetry is not None:
            telemetry.registry.counter(f"exec.progress.{kind}").inc(amount)
